//! A tour of the telemetry substrate: exporters, the scrape loop, the
//! time-series store, rate queries and the feature vectors the scheduler
//! consumes — the plumbing between "a pod is busy downloading" and "the model
//! sees a congested node".
//!
//! ```text
//! cargo run --release --example telemetry_tour
//! ```

use netsched::core::features::FeatureSchema;
use netsched::core::request::JobRequest;
use netsched::experiments::{FabricTestbed, SimWorld};
use netsched::simcore::{SimDuration, SimTime};
use netsched::simnet::BackgroundLoadConfig;
use netsched::sparksim::WorkloadKind;
use netsched::telemetry::{SeriesKey, METRIC_NODE_TX_BYTES, METRIC_PING_RTT};

fn main() {
    let mut world = SimWorld::new(FabricTestbed::paper(), 7);

    // Put a heavy download loop on two nodes and let telemetry accumulate.
    world.place_background_load(
        2,
        &BackgroundLoadConfig {
            mean_gap: SimDuration::from_millis(100),
            ..Default::default()
        },
    );
    world.advance_by(SimDuration::from_secs(60));

    // --- Raw time-series queries, Prometheus-style. ---
    let store = world.metrics.store();
    println!(
        "stored series: {}, points: {}",
        store.series_count(),
        store.point_count()
    );
    let now = world.now();
    for node in world.cluster.node_names() {
        let tx_key = SeriesKey::per_node(METRIC_NODE_TX_BYTES, &node);
        let rate = store
            .rate(&tx_key, now, SimDuration::from_secs(30))
            .unwrap_or(0.0);
        println!(
            "  rate({METRIC_NODE_TX_BYTES}{{instance=\"{node}\"}}[30s]) = {:.2} MB/s",
            rate / 1e6
        );
    }
    let rtt_series = store.instant_by_name(METRIC_PING_RTT, now);
    println!("ping mesh series at t={now}: {} pairs", rtt_series.len());

    // --- The scheduler-facing snapshot and Table-1 feature vectors. ---
    let snapshot = world.snapshot();
    let schema = FeatureSchema::standard();
    let request = JobRequest::named("join-tour", WorkloadKind::Join, 250_000, 2);
    println!(
        "\nfeature vectors for {} ({} features):",
        request.name,
        schema.len()
    );
    for node in world.cluster.node_names() {
        let features = schema.construct(&snapshot, &node, &request);
        let cpu = features[schema.index_of("cpu_load").unwrap()];
        let rtt = features[schema.index_of("rtt_mean_s").unwrap()];
        let rx = features[schema.index_of("rx_rate_bps").unwrap()];
        println!(
            "  {node}: cpu_load={cpu:.2}, rtt_mean={:.1} ms, rx_rate={:.2} MB/s, full vector = {:?}",
            rtt * 1000.0,
            rx / 1e6,
            features.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }

    // --- Telemetry staleness: what an old snapshot would have looked like. ---
    let stale = netsched::telemetry::ClusterSnapshot::from_store(
        world.metrics.store(),
        SimTime::from_secs(10),
        SimDuration::from_secs(30),
    );
    println!(
        "\nsnapshot at t=10s saw {} nodes with receive traffic; at t={} it is {}",
        stale.iter_nodes().filter(|(_, t)| t.rx_rate > 0.0).count(),
        snapshot.time,
        snapshot
            .iter_nodes()
            .filter(|(_, t)| t.rx_rate > 0.0)
            .count()
    );
}
