//! Train the supervised scheduler end-to-end and use it for placement.
//!
//! This walks the paper's full loop in miniature:
//!
//! 1. collect training data by running jobs with varied target nodes under
//!    background contention (the Section 5.2 batch workflow),
//! 2. train the three model families and compare their held-out accuracy,
//! 3. plug the best model into the scheduler service and place a new job,
//!    comparing its choice against the default scheduler's.
//!
//! ```text
//! cargo run --release --example train_and_schedule
//! ```

use netsched::core::context::SchedulingContext;
use netsched::core::predictor::CompletionTimePredictor;
use netsched::core::request::JobRequest;
use netsched::core::schedulers::{JobScheduler, KubeDefaultScheduler, SupervisedScheduler};
use netsched::experiments::workflow::{ExperimentConfig, Workflow};
use netsched::experiments::FabricTestbed;
use netsched::mlcore::{evaluate_on, ModelConfig, ModelKind, TrainedModel};
use netsched::simcore::rng::Rng;
use netsched::sparksim::WorkloadKind;

fn main() {
    // --- 1. Collect a training dataset (scaled down from the paper's 3600 samples). ---
    let config = ExperimentConfig::quick(4, 3, 7); // 12 configs x 3 repeats x 6 nodes = 216 samples
    println!(
        "collecting {} scenarios ({} samples) of training data ...",
        config.scenario_count(),
        config.scenario_count() * 6
    );
    let dataset = Workflow::new(config).run();
    let mut rng = Rng::seed_from_u64(11);
    let (train_idx, test_idx) = dataset.split_scenarios(0.25, &mut rng);
    let train = dataset.logger_for(&train_idx).to_dataset();
    let test = dataset.logger_for(&test_idx).to_dataset();
    println!(
        "training rows: {}, held-out rows: {}",
        train.len(),
        test.len()
    );

    // --- 2. Train and compare the three model families. ---
    let model_config = ModelConfig::default();
    let mut best: Option<(ModelKind, TrainedModel, f64)> = None;
    for kind in ModelKind::ALL {
        let model = TrainedModel::train(kind, &model_config, &train, &mut rng);
        let metrics = evaluate_on(&model, &test);
        println!(
            "  {kind:<18} held-out MAE {:6.2}s  RMSE {:6.2}s  R² {:5.3}",
            metrics.mae, metrics.rmse, metrics.r2
        );
        if best
            .as_ref()
            .map(|(_, _, r2)| metrics.r2 > *r2)
            .unwrap_or(true)
        {
            best = Some((kind, model, metrics.r2));
        }
    }
    let (best_kind, best_model, best_r2) = best.expect("at least one model trained");
    println!("best model: {best_kind} (R² = {best_r2:.3})");

    // --- 3. Use the trained model for a new placement decision. ---
    let predictor = CompletionTimePredictor::new(dataset.schema.clone(), best_model)
        .expect("dataset schema matches its own training data");
    let mut supervised = SupervisedScheduler::new(predictor);
    let mut kube_default = KubeDefaultScheduler::new(3);

    // Take a held-out scenario's frozen system state as "now".
    let scenario = &dataset.scenarios[test_idx[0]];
    let request = JobRequest::named("sort-new", WorkloadKind::Sort, 500_000, 3);
    let cluster = FabricTestbed::paper().cluster;

    // One context serves the whole burst of decisions against this snapshot.
    let mut ctx = SchedulingContext::new(&scenario.snapshot, &cluster);
    let supervised_ranking = supervised.select(&request, &mut ctx);
    let default_ranking = kube_default.select(&request, &mut ctx);

    println!("\nscheduling a new job ({}):", request.name);
    println!("  supervised ({}) ranking:", supervised.name());
    for ranked in &supervised_ranking.ranked {
        println!(
            "    {:<8} predicted {:.1}s",
            cluster.node_name(ranked.node),
            ranked.predicted_seconds
        );
    }
    println!(
        "  supervised choice: {}   | default scheduler choice: {}",
        supervised_ranking.best_name(&cluster).unwrap_or("-"),
        default_ranking.best_name(&cluster).unwrap_or("-"),
    );
    println!(
        "  (actually fastest node in this scenario for its own job was {})",
        scenario.fastest_node()
    );
}
