//! Quickstart: build the paper's 6-node geo-distributed testbed, add some
//! background contention, run one Spark-like Sort job on a chosen node and
//! look at what the scheduler would have seen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netsched::core::builder::JobBuilder;
use netsched::core::request::JobRequest;
use netsched::experiments::{FabricTestbed, SimWorld};
use netsched::simcore::SimDuration;
use netsched::simnet::BackgroundLoadConfig;
use netsched::sparksim::WorkloadKind;

fn main() {
    // 1. The Figure-4 testbed: UCSD / FIU / SRI, two nodes each, 66/10/72 ms RTTs.
    let testbed = FabricTestbed::paper();
    println!("cluster nodes: {:?}", testbed.node_names());

    // 2. A simulated world with background contention (the paper's curl-loop pod).
    let mut world = SimWorld::new(testbed, 42);
    world.place_background_load(2, &BackgroundLoadConfig::default());
    world.advance_by(SimDuration::from_secs(15));
    println!("background load on: {:?}", world.background_hosts());

    // 3. The telemetry snapshot the scheduler would fetch at decision time.
    let snapshot = world.snapshot();
    println!("\nper-node telemetry at t = {}:", snapshot.time);
    for (node, telemetry) in snapshot.iter_nodes() {
        let (rtt_mean, rtt_max, _) = snapshot.rtt_stats_from(node);
        println!(
            "  {node}: cpu_load={:.2}, mem_avail={:.1} GiB, tx={:.2} MB/s, rx={:.2} MB/s, rtt mean/max={:.1}/{:.1} ms",
            telemetry.cpu_load,
            telemetry.memory_available_bytes / (1024.0 * 1024.0 * 1024.0),
            telemetry.tx_rate / 1e6,
            telemetry.rx_rate / 1e6,
            rtt_mean * 1000.0,
            rtt_max * 1000.0,
        );
    }

    // 4. Submit a shuffle-heavy Sort job with its driver pinned to node-2 and
    //    show the manifest the Job Builder would hand to Kubernetes.
    let request = JobRequest::named("sort-quickstart", WorkloadKind::Sort, 250_000, 2);
    let built = JobBuilder.build(&request, Some("node-2"));
    println!(
        "\ngenerated SparkApplication manifest:\n{}",
        built.manifest_yaml
    );

    // 5. Execute it and report the completion breakdown.
    let outcome = world
        .run_job(&request, "node-2")
        .expect("placement is feasible");
    println!(
        "driver ran on {}, executors on {:?}",
        outcome.driver_node, outcome.executor_nodes
    );
    println!(
        "job completed in {:.2}s (startup {:.2}s, shuffle {:.1} MB, {} spilled stages)",
        outcome.result.completion_seconds(),
        outcome.result.startup_seconds,
        outcome.result.shuffle_bytes / 1e6,
        outcome.result.spill_count
    );
    for stage in &outcome.result.stages {
        println!(
            "  stage {:<18} control {:.2}s | shuffle {:.2}s | compute {:.2}s",
            stage.name, stage.control_seconds, stage.shuffle_seconds, stage.compute_seconds
        );
    }
}
