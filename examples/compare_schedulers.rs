//! Compare every scheduling policy on freshly generated scenarios: the
//! Kubernetes default scheduler, a uniform-random picker, two telemetry
//! heuristics and the three supervised models — the Table 4 comparison plus
//! the extra baselines.
//!
//! ```text
//! cargo run --release --example compare_schedulers [configs_per_workload] [repeats]
//! ```

use netsched::core::context::SchedulingContext;
use netsched::core::predictor::CompletionTimePredictor;
use netsched::core::schedulers::{
    JobScheduler, KubeDefaultScheduler, LeastLoadedScheduler, LowestRttScheduler, RandomScheduler,
    SupervisedScheduler,
};
use netsched::experiments::evaluation::evaluate_table4;
use netsched::experiments::workflow::{ExperimentConfig, Workflow};
use netsched::experiments::FabricTestbed;
use netsched::mlcore::{ModelConfig, ModelKind, TrainedModel};
use netsched::simcore::rng::Rng;

fn main() {
    let per_workload: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let repeats: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let config = ExperimentConfig::quick(per_workload, repeats, 2025);
    println!(
        "generating {} scenarios ({} samples) ...",
        config.scenario_count(),
        config.scenario_count() * 6
    );
    let dataset = Workflow::new(config).run();

    // --- The paper's Table 4 (default scheduler + three supervised models). ---
    let report = evaluate_table4(&dataset, 0.25, &ModelConfig::default(), 13);
    println!("\nTable 4 reproduction:\n{}", report.to_markdown());

    // --- Extra baselines on the same held-out scenarios. ---
    let mut rng = Rng::seed_from_u64(17);
    let (train_idx, test_idx) = dataset.split_scenarios(0.25, &mut rng);
    let train = dataset.logger_for(&train_idx).to_dataset();
    let rf = TrainedModel::train(
        ModelKind::RandomForest,
        &ModelConfig::default(),
        &train,
        &mut rng,
    );
    let predictor = CompletionTimePredictor::new(dataset.schema.clone(), rf)
        .expect("dataset schema matches its own training data");
    let cluster = FabricTestbed::paper().cluster;

    let mut policies: Vec<Box<dyn JobScheduler>> = vec![
        Box::new(RandomScheduler::new(5)),
        Box::new(KubeDefaultScheduler::new(5)),
        Box::new(LeastLoadedScheduler),
        Box::new(LowestRttScheduler),
        Box::new(SupervisedScheduler::new(predictor)),
    ];

    println!("extended comparison (same held-out scenarios):\n");
    println!("| Policy | Top-1 | Top-2 |");
    println!("|---|---|---|");
    for policy in policies.iter_mut() {
        let mut top1 = 0usize;
        let mut top2 = 0usize;
        for &idx in &test_idx {
            let scenario = &dataset.scenarios[idx];
            let mut ctx = SchedulingContext::new(&scenario.snapshot, &cluster);
            let ranking = policy.select(&scenario.request(), &mut ctx);
            let fastest = scenario.fastest_node();
            if ranking.best_name(&cluster) == Some(fastest) {
                top1 += 1;
            }
            if ranking
                .top_k(2)
                .iter()
                .any(|&id| cluster.node_name(id) == fastest)
            {
                top2 += 1;
            }
        }
        let denom = test_idx.len().max(1) as f64;
        println!(
            "| {} | {:.3} | {:.3} |",
            policy.name(),
            top1 as f64 / denom,
            top2 as f64 / denom
        );
    }
}
