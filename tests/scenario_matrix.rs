//! Scenario-matrix integration tests: for a fixed seed the sweep's JSON
//! report is byte-identical across runs, parallel sweeps equal sequential
//! sweeps, and the per-cell reports keep the paper's shape (supervised
//! models ahead of the telemetry-blind default scheduler).
//!
//! The `fast-sweep` feature (used by the dedicated CI step) trims the matrix
//! to 4 cells so the whole file stays well under two minutes; without it the
//! 8-cell smoke matrix runs. The full ≥24-cell acceptance matrix lives in the
//! `scenario_sweep` binary and the `#[ignore]`d test at the bottom.

use netsched::experiments::evaluation::KUBE_DEFAULT_METHOD;
use netsched::experiments::scenarios::{run_sweep, ScenarioMatrix, SweepOptions, SweepReport};

fn matrix() -> ScenarioMatrix {
    let mut matrix = ScenarioMatrix::smoke();
    if cfg!(feature = "fast-sweep") {
        // 2 testbeds x 1 mix x 1 load x 2 seeds = 4 cells.
        matrix.mixes.truncate(1);
    }
    matrix
}

fn sweep(workers: usize) -> SweepReport {
    let options = SweepOptions {
        workers,
        ..SweepOptions::quick()
    };
    run_sweep(&matrix(), &options)
}

#[test]
fn sweep_is_deterministic_and_parallel_invariant() {
    let matrix = matrix();
    assert!(matrix.cell_count() <= 8, "integration matrix stays small");

    let sequential = sweep(1);
    let parallel = sweep(4);
    let parallel_again = sweep(4);

    // Parallelism never changes results, and a fixed seed reproduces the
    // report byte-for-byte.
    let sequential_json = sequential.to_json();
    assert_eq!(
        sequential_json,
        parallel.to_json(),
        "parallel sweep must equal sequential sweep"
    );
    assert_eq!(
        parallel.to_json(),
        parallel_again.to_json(),
        "fixed seed must reproduce the report byte-for-byte"
    );

    // The report round-trips through its own JSON.
    let restored = SweepReport::from_json(&sequential_json).expect("valid JSON");
    assert_eq!(restored, sequential);

    // Structural sanity of every cell.
    assert_eq!(sequential.cells.len(), matrix.cell_count());
    for cell in &sequential.cells {
        assert_eq!(cell.accuracy.len(), 4, "{:?}", cell.cell);
        assert_eq!(cell.speedups.len(), 4, "{:?}", cell.cell);
        assert!(cell.scenario_count > 0);
        assert_eq!(
            cell.sample_count,
            cell.scenario_count * cell.node_count,
            "{:?}: every scenario measures every candidate",
            cell.cell
        );
        assert_eq!(
            cell.train_scenarios + cell.test_scenarios,
            cell.scenario_count
        );
        let default_speedup = cell
            .speedups
            .iter()
            .find(|s| s.method == KUBE_DEFAULT_METHOD)
            .expect("default always evaluated");
        assert!((default_speedup.geomean_speedup - 1.0).abs() < 1e-12);
    }
    // The matrix actually spans more than one substrate.
    let topologies: std::collections::BTreeSet<&str> = sequential
        .cells
        .iter()
        .map(|c| c.cell.topology.as_str())
        .collect();
    assert!(topologies.len() >= 2, "{topologies:?}");
}

#[cfg(not(feature = "fast-sweep"))]
#[test]
fn smoke_sweep_preserves_paper_shape() {
    let report = sweep(netsched::simcore::parallel::default_workers());
    let cells = report.cells.len() as f64;

    // Aggregate shape: averaged over cells, the best supervised model's Top-1
    // clearly beats the telemetry-blind default scheduler's.
    let mean = |f: &dyn Fn(&netsched::experiments::CellReport) -> f64| -> f64 {
        report.cells.iter().map(f).sum::<f64>() / cells
    };
    let mean_default = mean(&|c| {
        c.accuracy_of(KUBE_DEFAULT_METHOD)
            .map(|r| r.top1)
            .unwrap_or(0.0)
    });
    let mean_best_supervised = mean(&|c| {
        c.accuracy
            .iter()
            .filter(|r| r.method != KUBE_DEFAULT_METHOD)
            .map(|r| r.top1)
            .fold(0.0, f64::max)
    });
    assert!(
        mean_best_supervised > mean_default,
        "best supervised {mean_best_supervised:.3} must beat default {mean_default:.3}"
    );

    // In a majority of cells some supervised model strictly wins on Top-1 ...
    let winning_cells = report
        .cells
        .iter()
        .filter(|c| {
            c.accuracy
                .iter()
                .any(|r| r.method != KUBE_DEFAULT_METHOD && c.beats_default_top1(&r.method))
        })
        .count();
    assert!(
        winning_cells * 2 > report.cells.len(),
        "supervised wins in only {winning_cells}/{} cells",
        report.cells.len()
    );

    // ... and picking nodes with the best supervised model yields jobs at
    // least as fast as the default's picks on geometric mean.
    let mean_best_speedup = mean(&|c| {
        c.speedups
            .iter()
            .filter(|s| s.method != KUBE_DEFAULT_METHOD)
            .map(|s| s.geomean_speedup)
            .fold(0.0, f64::max)
    });
    assert!(
        mean_best_speedup >= 1.0,
        "best supervised speedup {mean_best_speedup:.3}"
    );
}

/// The full ≥24-cell acceptance matrix (also produced by
/// `cargo run --release -p experiments --bin scenario_sweep`). Ignored by
/// default because it takes minutes in debug builds:
/// `cargo test --release --test scenario_matrix -- --ignored`.
#[test]
#[ignore = "minutes-long full matrix; run with --ignored or the scenario_sweep binary"]
fn full_paper_default_matrix_preserves_paper_shape() {
    let matrix = ScenarioMatrix::paper_default();
    assert!(matrix.cell_count() >= 24);
    let report = run_sweep(&matrix, &SweepOptions::default());
    for majority in &report.majorities {
        eprintln!(
            "{}: beats default in {}/{} cells",
            majority.method, majority.cells_beating_default_top1, majority.cells
        );
    }
    assert!(
        report.paper_shape_holds(),
        "every supervised model must beat the default's Top-1 in a majority of cells"
    );
}
