//! Runtime counterpart of the `hot-path-alloc` lint: a counting global
//! allocator proves that steady-state `schedule_batch` bursts perform **zero
//! heap allocations**.
//!
//! The static lint (`cargo run -p analysis -- check`) bans allocating tokens
//! inside the hot-path function manifest; this harness pins the same claim
//! dynamically, end to end: against an epoch-published snapshot with a
//! trained model, a warm `schedule_batch_into` burst must not allocate,
//! deallocate or reallocate at all — not in telemetry indexing, feasibility
//! filtering, feature construction, batch inference, ranking, or job/manifest
//! building.

use netsched::cluster::{ClusterState, Node, Resources};
use netsched::core::request::JobRequest;
use netsched::core::service::{SchedulerConfig, SchedulerService, SchedulingDecision};
use netsched::core::PruningPolicy;
use netsched::mlcore::ModelKind;
use netsched::simcore::rng::Rng;
use netsched::simcore::{SimDuration, SimTime};
use netsched::simnet::{gbps, mbps, Network, NodeId, TopologyBuilder};
use netsched::sparksim::WorkloadKind;
use netsched::telemetry::{ScrapeConfig, ScrapeManager};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Pass-through allocator that counts every heap operation while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

// ordering: counters are independent tallies with no cross-thread
// synchronization requirement; the test reads them on the same thread that
// armed them.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ARMED.load(Ordering::Relaxed) {
            DEALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn arm() {
    ALLOCS.store(0, Ordering::Relaxed);
    DEALLOCS.store(0, Ordering::Relaxed);
    REALLOCS.store(0, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

fn disarm() -> (u64, u64, u64) {
    ARMED.store(false, Ordering::Relaxed);
    (
        ALLOCS.load(Ordering::Relaxed),
        DEALLOCS.load(Ordering::Relaxed),
        REALLOCS.load(Ordering::Relaxed),
    )
}

/// A 4-node, 2-site world with a scraped telemetry round.
fn test_world() -> (ClusterState, Network, ScrapeManager) {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
    let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
    for i in 0..2 {
        b.add_node(format!("node-{}", i + 1), s0, gbps(1.0), gbps(1.0));
    }
    for i in 2..4 {
        b.add_node(format!("node-{}", i + 1), s1, gbps(1.0), gbps(1.0));
    }
    b.connect_sites(s0, s1, SimDuration::from_millis(30), mbps(500.0));
    let network = Network::new(b.build().unwrap());
    let mut cluster = ClusterState::new();
    for i in 0..4 {
        cluster.add_node(Node::new(
            format!("node-{}", i + 1),
            NodeId(i),
            Resources::from_cores_and_gib(6, 8),
            if i < 2 { "UCSD" } else { "FIU" },
        ));
    }
    let mut scrape = ScrapeManager::new(ScrapeConfig::default());
    scrape.scrape(&cluster, &network, SimTime::from_secs(1));
    (cluster, network, scrape)
}

fn request(i: usize) -> JobRequest {
    JobRequest::named(format!("sort-{i}"), WorkloadKind::Sort, 100_000, 2)
}

/// Train a service through its own bootstrap path (fallback decisions →
/// logged outcomes → retrain), so the steady-state burst runs the supervised
/// scheduler, not the fallback.
fn trained_service_with(
    cluster: &ClusterState,
    scrape: &ScrapeManager,
    config: SchedulerConfig,
) -> SchedulerService {
    let mut service = SchedulerService::new(
        SchedulerConfig {
            min_training_samples: 20,
            model_kind: ModelKind::Linear,
            ..config
        },
        7,
    );
    let mut rng = Rng::seed_from_u64(11);
    for i in 0..30 {
        let d = service.schedule(&request(i), scrape, cluster, SimTime::from_secs(2));
        let node = d.job.target_node.clone().unwrap();
        let load = d.snapshot.node(&node).map(|t| t.cpu_load).unwrap_or(0.0);
        service.record_outcome(&d.snapshot, &request(i), &node, 20.0 + 5.0 * load);
    }
    assert!(service.retrain(&mut rng));
    assert!(service.is_model_active());
    service
}

fn trained_service(cluster: &ClusterState, scrape: &ScrapeManager) -> SchedulerService {
    trained_service_with(cluster, scrape, SchedulerConfig::default())
}

#[test]
fn steady_state_schedule_batch_burst_is_allocation_free() {
    let (cluster, _network, mut scrape) = test_world();
    let published = scrape.published_handle();
    let mut service = trained_service(&cluster, &scrape);

    let requests: Vec<JobRequest> = (0..8).map(request).collect();
    let now = SimTime::from_secs(3);
    let mut decisions: Vec<SchedulingDecision> = Vec::new();

    // Warm-up bursts: adopt the published epoch, size every reused buffer
    // (context scratch, rankings, pod specs, manifest strings) to its
    // steady-state capacity.
    for _ in 0..3 {
        service.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }
    let warm: Vec<Option<String>> = decisions
        .iter()
        .map(|d| d.job.target_node.clone())
        .collect();

    // Steady state: with no new epoch published and stable request shapes,
    // whole bursts must not touch the heap at all.
    arm();
    for _ in 0..10 {
        service.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }
    let (allocs, deallocs, reallocs) = disarm();
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state schedule_batch bursts must be allocation-free \
         (allocs={allocs} deallocs={deallocs} reallocs={reallocs})"
    );

    // The allocation-free path still produces real decisions.
    assert_eq!(decisions.len(), requests.len());
    for decision in &decisions {
        assert!(decision.used_model);
        assert_eq!(decision.ranking.len(), 4);
        assert!(decision.job.target_node.is_some());
        assert!(decision.job.manifest_yaml.contains("SparkApplication"));
    }
    let after: Vec<Option<String>> = decisions
        .iter()
        .map(|d| d.job.target_node.clone())
        .collect();
    assert_eq!(warm, after, "steady-state bursts are deterministic");
}

#[test]
fn steady_state_pruned_bursts_are_allocation_free() {
    // Two-stage decision path with a candidate budget: the supervised burst
    // prunes through the model-aligned coarse scoreboard (board pool, bounded
    // heap, signature cells — all scratch-carried and epoch-recycled), the
    // fallback burst through the model-blind prefilter. Both must run
    // heap-free once warm.
    let (cluster, _network, mut scrape) = test_world();
    let published = scrape.published_handle();
    let mut service = trained_service_with(
        &cluster,
        &scrape,
        SchedulerConfig {
            prune_top_k: Some(2),
            ..Default::default()
        },
    );

    let requests: Vec<JobRequest> = (0..8).map(request).collect();
    let now = SimTime::from_secs(3);
    let mut decisions: Vec<SchedulingDecision> = Vec::new();
    for _ in 0..3 {
        service.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }

    arm();
    for _ in 0..10 {
        service.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }
    let (allocs, deallocs, reallocs) = disarm();
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state pruned supervised bursts must be allocation-free \
         (allocs={allocs} deallocs={deallocs} reallocs={reallocs})"
    );
    for decision in &decisions {
        assert!(decision.used_model);
        assert_eq!(
            decision.ranking.len(),
            2,
            "the budget binds: 2 of 4 feasible nodes get ranked"
        );
        assert!(decision.job.target_node.is_some());
    }

    // The model-blind prefilter policies share the same scratch machinery
    // through the fallback path.
    let mut fallback = SchedulerService::new(
        SchedulerConfig {
            prune_top_k: Some(2),
            pruning_policy: PruningPolicy::LeastAllocated,
            ..Default::default()
        },
        7,
    );
    for _ in 0..3 {
        fallback.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }
    arm();
    for _ in 0..10 {
        fallback.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }
    let (allocs, deallocs, reallocs) = disarm();
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state pruned fallback bursts must be allocation-free \
         (allocs={allocs} deallocs={deallocs} reallocs={reallocs})"
    );
    assert!(decisions
        .iter()
        .all(|d| !d.used_model && d.ranking.len() == 2));
}

#[test]
fn steady_state_fallback_burst_is_allocation_free() {
    // The pre-training fallback path (uniform-random feasible placement)
    // shares the same in-place machinery and must also run heap-free once
    // warm.
    let (cluster, _network, mut scrape) = test_world();
    let published = scrape.published_handle();
    let mut service = SchedulerService::new(SchedulerConfig::default(), 7);

    let requests: Vec<JobRequest> = (0..8).map(request).collect();
    let now = SimTime::from_secs(3);
    let mut decisions: Vec<SchedulingDecision> = Vec::new();
    for _ in 0..3 {
        service.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }

    arm();
    for _ in 0..10 {
        service.schedule_batch_into(&requests, &published, &cluster, now, &mut decisions);
    }
    let (allocs, deallocs, reallocs) = disarm();
    assert_eq!(
        (allocs, deallocs, reallocs),
        (0, 0, 0),
        "steady-state fallback bursts must be allocation-free \
         (allocs={allocs} deallocs={deallocs} reallocs={reallocs})"
    );
    assert!(decisions.iter().all(|d| !d.used_model));
}
