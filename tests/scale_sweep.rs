//! Scale-cell integration tests: the 1k–10k-node pruning-accuracy sweep is
//! deterministic for a fixed seed, an oversized budget (K ≥ n) reproduces the
//! unpruned decisions exactly for every policy, and candidate budgets nest —
//! the unpruned winner's survival can only improve as K grows (S_K ⊆ S_K').
//!
//! The `fast-sweep` feature (used by the dedicated CI step) trims the family
//! to one small world so the whole file stays around a second; without it two
//! worlds run. The full 1k/4k/10k family lives in the `scenario_scale`
//! binary and the `#[ignore]`d test at the bottom.

use netsched::core::PruningPolicy;
use netsched::experiments::scale::{
    run_scale_cell, run_scale_sweep, standard_ks, standard_node_counts, standard_policies,
    train_scale_predictor, ScaleSweepReport, ScaleWorld, ScaleWorldSpec,
};

/// Node counts for the non-ignored tests: big enough to span several racks
/// and pods, small enough for debug builds.
fn node_counts() -> Vec<usize> {
    if cfg!(feature = "fast-sweep") {
        vec![240]
    } else {
        vec![240, 600]
    }
}

/// Budgets including one far beyond any world size, so the K ≥ n column must
/// agree with the unpruned reference byte-for-byte.
fn ks() -> Vec<usize> {
    vec![4, 16, 64, 1_000_000]
}

#[test]
fn scale_sweep_is_deterministic_and_exact_at_oversized_k() {
    let policies = standard_policies();
    let first = run_scale_sweep(&node_counts(), &policies, &ks(), 8, 11);
    let again = run_scale_sweep(&node_counts(), &policies, &ks(), 8, 11);
    let json = first.to_json();
    assert_eq!(
        json,
        again.to_json(),
        "fixed seed must reproduce the scale report byte-for-byte"
    );
    let restored = ScaleSweepReport::from_json(&json).expect("valid JSON");
    assert_eq!(restored, first);

    assert_eq!(first.cells.len(), node_counts().len());
    for (cell, &nodes) in first.cells.iter().zip(&node_counts()) {
        assert_eq!(cell.world, format!("scale-clos-{nodes}"));
        assert_eq!(cell.nodes, nodes);
        // Background pods make the feasible set a strict subset of the table.
        assert!(cell.mean_feasible > 0.0 && cell.mean_feasible < nodes as f64);
        assert_eq!(cell.ks.len(), policies.len() * ks().len());

        for acc in &cell.ks {
            assert_eq!(
                acc.decisions, 8,
                "every request is evaluated at every (policy, K) cell"
            );
            // The supervised two-stage path prunes with a coarse scoreboard
            // of the model's own scores, keyed by the job's cell in the
            // model's split-threshold partition — equal cells walk identical
            // tree paths, so the board's top-K is exactly the first K
            // entries of the unpruned ranking: agreement is exact at every K.
            if acc.policy == PruningPolicy::ModelAligned {
                assert_eq!(
                    acc.top1_hits, acc.decisions,
                    "{}: model-aligned top-1 must match the unpruned rank at K={}",
                    cell.world, acc.k
                );
            }
        }
        // S_K ⊆ S_K' for K ≤ K': within a policy, survival of the unpruned
        // winner is monotone in the budget.
        for per_policy in cell.ks.chunks(ks().len()) {
            for pair in per_policy.windows(2) {
                assert_eq!(pair[0].policy, pair[1].policy, "policy-major layout");
                assert!(
                    pair[0].k < pair[1].k,
                    "budgets are swept in ascending order"
                );
                assert!(
                    pair[0].winner_in_pruned <= pair[1].winner_in_pruned,
                    "{}: winner survival must not drop as K grows ({:?})",
                    cell.world,
                    pair[0].policy
                );
            }
            // K ≥ n disables pruning entirely: the decisions are the
            // unpruned decisions, so both rates are exactly 1 — for every
            // policy, not just the model-aligned one.
            let oversized = per_policy.last().expect("at least one budget");
            assert!(oversized.k >= nodes);
            assert_eq!(
                oversized.top1_hit_rate(),
                1.0,
                "{} {:?}",
                cell.world,
                oversized.policy
            );
            assert_eq!(
                oversized.winner_survival_rate(),
                1.0,
                "{} {:?}",
                cell.world,
                oversized.policy
            );
        }
    }
}

#[cfg(not(feature = "fast-sweep"))]
#[test]
fn tight_budgets_still_prune_aggressively() {
    // With K = 4 out of hundreds of feasible nodes the pruned set really is
    // tiny, and the report reflects genuine disagreement room for the
    // model-blind policy (the rate is a measurement, not pinned to 1) while
    // staying internally consistent.
    let predictor = train_scale_predictor(11);
    let world = ScaleWorld::build(ScaleWorldSpec::with_nodes(240, 11 ^ 240));
    let cell = run_scale_cell(&world, &predictor, &[PruningPolicy::LinearBlend], &[4], 12);
    let acc = &cell.ks[0];
    assert_eq!(acc.decisions, 12);
    assert!(
        cell.mean_feasible > 4.0,
        "pruning must actually cut candidates"
    );
    assert!(acc.winner_in_pruned <= acc.decisions);
}

/// The full 1k/4k/10k family (also produced by
/// `cargo run --release -p experiments --bin scenario_scale`).
/// Ignored by default because 10k-node worlds take minutes in debug builds:
/// `cargo test --release --test scale_sweep -- --ignored`.
#[test]
#[ignore = "minutes-long 1k/4k/10k family; run with --ignored or the scenario_scale binary"]
fn full_scale_family_keeps_winner_survival_monotone() {
    let report = run_scale_sweep(
        &standard_node_counts(),
        &standard_policies(),
        &standard_ks(),
        24,
        11,
    );
    assert_eq!(report.cells.len(), 3);
    for cell in &report.cells {
        eprintln!("{}: mean feasible {:.0}", cell.world, cell.mean_feasible);
        for acc in &cell.ks {
            eprintln!(
                "  {:?} K={}: top1 {:.3}, survival {:.3}",
                acc.policy,
                acc.k,
                acc.top1_hit_rate(),
                acc.winner_survival_rate()
            );
        }
        for per_policy in cell.ks.chunks(standard_ks().len()) {
            for pair in per_policy.windows(2) {
                assert!(pair[0].winner_in_pruned <= pair[1].winner_in_pruned);
            }
        }
        // The supervised two-stage path stays exact at every budget, even at
        // 10k nodes where the model-blind policies' survival decays.
        for acc in &cell.ks {
            if acc.policy == PruningPolicy::ModelAligned {
                assert_eq!(
                    acc.top1_hits, acc.decisions,
                    "{}: model-aligned top-1 diverged at K={}",
                    cell.world, acc.k
                );
            }
        }
    }
}
