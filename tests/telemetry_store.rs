//! Differential property tests for the interned telemetry store.
//!
//! The store was rewritten around interned [`SeriesId`]s, per-name bucket
//! indexes and `partition_point` window slicing. These tests pin the rewrite
//! against a naive reference implementation (linear scans, owned vectors,
//! the documented append semantics) over random append/query sequences —
//! including out-of-order samples, duplicate timestamps and retention — and
//! pin the interned scrape→snapshot fast path against the generic
//! store-walking assembly.

use netsched::cluster::{ClusterState, Node, Resources};
use netsched::simcore::{SimDuration, SimTime};
use netsched::simnet::{gbps, mbps, Network, TopologyBuilder};
use netsched::telemetry::{
    ClusterSnapshot, MetricKind, Sample, ScrapeConfig, ScrapeManager, SeriesKey,
    ShardedTimeSeriesStore, TimeSeriesStore,
};
use netsched::SimNodeId;
use proptest::prelude::*;

/// One reference series: key, kind and time-ordered points.
type NaiveSeries = (SeriesKey, MetricKind, Vec<(SimTime, f64)>);

/// The documented store semantics, implemented the obvious slow way: owned
/// key/point vectors, full linear scans, a fresh `Vec` per windowed query.
#[derive(Default)]
struct NaiveStore {
    series: Vec<NaiveSeries>,
    retention: Option<SimDuration>,
    /// Newest timestamp ever accepted: the retention cutoff is monotone in
    /// this watermark (an out-of-order late sample must not compute a stale,
    /// earlier cutoff).
    max_ts: SimTime,
}

impl NaiveStore {
    fn with_retention(retention: Option<SimDuration>) -> Self {
        NaiveStore {
            series: Vec::new(),
            retention,
            max_ts: SimTime::ZERO,
        }
    }

    fn append(&mut self, key: &SeriesKey, kind: MetricKind, value: f64, t: SimTime) {
        let entry = match self.series.iter_mut().find(|(k, _, _)| k == key) {
            Some(entry) => entry,
            None => {
                self.series.push((key.clone(), kind, Vec::new()));
                self.series.last_mut().unwrap()
            }
        };
        if let Some(&(last_t, _)) = entry.2.last() {
            // Out-of-order and duplicate-timestamp samples are dropped.
            if t <= last_t {
                return;
            }
        }
        self.max_ts = self.max_ts.max(t);
        entry.2.push((t, value));
        if let Some(retention) = self.retention {
            let cutoff =
                SimTime::from_nanos(self.max_ts.as_nanos().saturating_sub(retention.as_nanos()));
            entry.2.retain(|&(pt, _)| pt >= cutoff);
        }
    }

    fn points(&self, key: &SeriesKey) -> &[(SimTime, f64)] {
        self.series
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, p)| p.as_slice())
            .unwrap_or(&[])
    }

    fn instant(&self, key: &SeriesKey, at: SimTime) -> Option<f64> {
        self.points(key)
            .iter()
            .rfind(|&&(t, _)| t <= at)
            .map(|&(_, v)| v)
    }

    fn range(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        self.points(key)
            .iter()
            .copied()
            .filter(|&(t, _)| t >= from && t <= to)
            .collect()
    }

    fn rate(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        let (_, kind, _) = self.series.iter().find(|(k, _, _)| k == key)?;
        if *kind != MetricKind::Counter {
            return None;
        }
        let from = SimTime::from_nanos(at.as_nanos().saturating_sub(window.as_nanos()));
        let pts = self.range(key, from, at);
        if pts.len() < 2 {
            return None;
        }
        let (t0, v0) = pts[0];
        let (t1, v1) = pts[pts.len() - 1];
        let dt = (t1 - t0).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        Some(((v1 - v0).max(0.0)) / dt)
    }

    fn avg_over(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        let from = SimTime::from_nanos(at.as_nanos().saturating_sub(window.as_nanos()));
        let pts = self.range(key, from, at);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64)
    }

    fn instant_by_name(&self, name: &str, at: SimTime) -> Vec<(SeriesKey, f64)> {
        self.series
            .iter()
            .filter(|(k, _, _)| k.name == name)
            .filter_map(|(k, _, _)| self.instant(k, at).map(|v| (k.clone(), v)))
            .collect()
    }

    fn point_count(&self) -> usize {
        self.series.iter().map(|(_, _, p)| p.len()).sum()
    }
}

/// The series universe the generator draws from: two counters, four gauges,
/// across two metric names and three instances.
fn universe() -> Vec<(SeriesKey, MetricKind)> {
    let mut keys = Vec::new();
    for instance in ["node-1", "node-2", "node-3"] {
        keys.push((
            SeriesKey::per_node("bytes_total", instance),
            MetricKind::Counter,
        ));
        keys.push((SeriesKey::per_node("load", instance), MetricKind::Gauge));
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random append/query sequences produce identical answers from the
    /// interned store and the naive reference, with and without retention.
    #[test]
    fn interned_store_matches_naive_reference(
        ops in prop::collection::vec((0usize..6, 0u64..90, 0.0f64..1e6), 1..140),
        queries in prop::collection::vec((0usize..6, 0u64..120, 1u64..80), 1..24),
        retention_secs in 0u64..100,
    ) {
        let keys = universe();
        let retention = if retention_secs < 20 {
            None
        } else {
            Some(SimDuration::from_secs(retention_secs))
        };
        let mut fast = match retention {
            Some(r) => TimeSeriesStore::with_retention(r),
            None => TimeSeriesStore::new(),
        };
        let mut naive = NaiveStore::with_retention(retention);

        for &(series, t, value) in &ops {
            let (key, kind) = &keys[series];
            let at = SimTime::from_secs(t);
            let sample = match kind {
                MetricKind::Counter => Sample::counter(key.clone(), value, at),
                MetricKind::Gauge => Sample::gauge(key.clone(), value, at),
            };
            fast.append(sample);
            naive.append(key, *kind, value, at);
        }

        prop_assert_eq!(fast.series_count(), naive.series.len());
        prop_assert_eq!(fast.point_count(), naive.point_count());

        for &(series, at, window) in &queries {
            let (key, _) = &keys[series];
            let at = SimTime::from_secs(at);
            let window = SimDuration::from_secs(window);
            prop_assert_eq!(fast.instant(key, at), naive.instant(key, at));
            prop_assert_eq!(fast.rate(key, at, window), naive.rate(key, at, window));
            prop_assert_eq!(fast.avg_over(key, at, window), naive.avg_over(key, at, window));
            let from = SimTime::from_secs(at.as_secs_f64() as u64 / 2);
            prop_assert_eq!(fast.range(key, from, at), &naive.range(key, from, at)[..]);
            prop_assert_eq!(fast.range_vec(key, from, at), naive.range(key, from, at));
        }

        // Per-name bucket queries agree with the naive full scan (same
        // key→value set; the interned store reports ids).
        for name in ["bytes_total", "load", "missing"] {
            let at = SimTime::from_secs(60);
            let mut fast_pairs: Vec<(SeriesKey, f64)> = fast
                .instant_by_name(name, at)
                .into_iter()
                .map(|(id, v)| (fast.key(id).clone(), v))
                .collect();
            let mut naive_pairs = naive.instant_by_name(name, at);
            fast_pairs.sort_by(|a, b| a.0.cmp(&b.0));
            naive_pairs.sort_by(|a, b| a.0.cmp(&b.0));
            prop_assert_eq!(fast_pairs, naive_pairs);
        }
    }

    /// The metric-name-sharded store answers every query API exactly like
    /// the flat store over the same random append sequence — including
    /// out-of-order samples, duplicate timestamps and retention pruning
    /// (whose cutoff is monotone in the global watermark, which the sharded
    /// store must forward to each shard).
    #[test]
    fn sharded_store_matches_flat_reference(
        ops in prop::collection::vec((0usize..6, 0u64..90, 0.0f64..1e6), 1..140),
        queries in prop::collection::vec((0usize..6, 0u64..120, 1u64..80), 1..24),
        retention_secs in 0u64..100,
        shard_count in 1usize..6,
    ) {
        let keys = universe();
        let retention = if retention_secs < 20 {
            None
        } else {
            Some(SimDuration::from_secs(retention_secs))
        };
        let mut flat = match retention {
            Some(r) => TimeSeriesStore::with_retention(r),
            None => TimeSeriesStore::new(),
        };
        let mut sharded = match retention {
            Some(r) => ShardedTimeSeriesStore::with_retention(shard_count, r),
            None => ShardedTimeSeriesStore::new(shard_count),
        };

        for &(series, t, value) in &ops {
            let (key, kind) = &keys[series];
            let at = SimTime::from_secs(t);
            let sample = match kind {
                MetricKind::Counter => Sample::counter(key.clone(), value, at),
                MetricKind::Gauge => Sample::gauge(key.clone(), value, at),
            };
            sharded.append(sample.clone());
            flat.append(sample);
        }

        prop_assert_eq!(sharded.series_count(), flat.series_count());
        prop_assert_eq!(sharded.point_count(), flat.point_count());
        prop_assert_eq!(sharded.max_timestamp(), flat.max_timestamp());
        {
            let sharded_keys = sharded.keys();
            let flat_keys: Vec<&SeriesKey> = flat.keys().collect();
            prop_assert_eq!(sharded_keys, flat_keys);
        }

        for &(series, at, window) in &queries {
            let (key, _) = &keys[series];
            let at = SimTime::from_secs(at);
            let window = SimDuration::from_secs(window);
            prop_assert_eq!(sharded.instant(key, at), flat.instant(key, at));
            prop_assert_eq!(sharded.rate(key, at, window), flat.rate(key, at, window));
            prop_assert_eq!(sharded.avg_over(key, at, window), flat.avg_over(key, at, window));
            let from = SimTime::from_secs(at.as_secs_f64() as u64 / 2);
            prop_assert_eq!(sharded.range(key, from, at), flat.range(key, from, at));
            // Pre-interned id queries agree with key queries across the
            // shard boundary.
            if let Some(id) = sharded.series_id(key) {
                prop_assert_eq!(sharded.instant_id(id, at), flat.instant(key, at));
                prop_assert_eq!(sharded.range_id(id, from, at), flat.range(key, from, at));
                prop_assert_eq!(sharded.key(id), key);
            }
        }

        // Per-name bucket queries agree (one shard bucket vs the flat one).
        for name in ["bytes_total", "load", "missing"] {
            let at = SimTime::from_secs(60);
            let mut sharded_pairs: Vec<(SeriesKey, f64)> = sharded
                .instant_by_name(name, at)
                .into_iter()
                .map(|(id, v)| (sharded.key(id).clone(), v))
                .collect();
            let mut flat_pairs: Vec<(SeriesKey, f64)> = flat
                .instant_by_name(name, at)
                .into_iter()
                .map(|(id, v)| (flat.key(id).clone(), v))
                .collect();
            sharded_pairs.sort_by(|a, b| a.0.cmp(&b.0));
            flat_pairs.sort_by(|a, b| a.0.cmp(&b.0));
            prop_assert_eq!(sharded_pairs, flat_pairs);
        }
    }

    /// The interned scrape→snapshot fast path (pre-interned SeriesIds, dense
    /// id-indexed assembly) produces exactly the snapshot the generic
    /// store-walking path builds, at arbitrary fetch times.
    #[test]
    fn interned_snapshot_path_matches_generic_assembly(
        scrape_steps in prop::collection::vec(1u64..12, 1..16),
        fetch_offsets in prop::collection::vec(0u64..70, 1..6),
        rate_window in 5u64..60,
    ) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("A", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("B", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-3", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(20), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        for (i, name) in ["node-1", "node-2", "node-3"].iter().enumerate() {
            cluster.add_node(Node::new(
                *name,
                SimNodeId(i),
                Resources::from_cores_and_gib(6, 8),
                if i < 2 { "A" } else { "B" },
            ));
        }

        let mut mgr = ScrapeManager::new(ScrapeConfig::default());
        let mut now = SimTime::ZERO;
        for &step in &scrape_steps {
            now += SimDuration::from_secs(step);
            mgr.scrape(&cluster, &network, now);
        }

        let window = SimDuration::from_secs(rate_window);
        let mut reused = ClusterSnapshot::default();
        for &offset in &fetch_offsets {
            let at = SimTime::from_secs(offset);
            let generic = ClusterSnapshot::from_store(mgr.store(), at, window);
            mgr.snapshot_into(at, window, &mut reused);
            prop_assert_eq!(&reused, &generic);
        }
    }
}
