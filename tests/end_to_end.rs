//! Workspace-level integration test: the full paper pipeline in miniature.
//!
//! Generates a small dataset with the Section 5.2 workflow, trains the three
//! supervised models, evaluates Table-4 style Top-1/Top-2 accuracy and checks
//! the qualitative claims of the paper hold end-to-end:
//!
//! * every supervised model beats the telemetry-blind default scheduler,
//! * the scheduler service can be bootstrapped, retrained and used online,
//! * decisions produce valid Kubernetes-style manifests pinned to the chosen node.

use netsched::core::request::JobRequest;
use netsched::core::service::{SchedulerConfig, SchedulerService};
use netsched::experiments::evaluation::evaluate_table4;
use netsched::experiments::workflow::{ExperimentConfig, Workflow};
use netsched::experiments::{FabricTestbed, SimWorld};
use netsched::mlcore::{GradientBoostingConfig, ModelConfig, ModelKind, RandomForestConfig};
use netsched::simcore::rng::Rng;
use netsched::simcore::SimDuration;
use netsched::simnet::BackgroundLoadConfig;
use netsched::sparksim::WorkloadKind;

fn fast_models() -> ModelConfig {
    ModelConfig {
        forest: RandomForestConfig {
            n_trees: 40,
            workers: 2,
            ..Default::default()
        },
        gbdt: GradientBoostingConfig {
            n_rounds: 100,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn table4_shape_reproduces_on_a_small_dataset() {
    // 3 configs/workload x 4 repeats = 36 scenarios (216 samples).
    let config = ExperimentConfig {
        workers: simcore::parallel::default_workers(),
        ..ExperimentConfig::quick(3, 4, 424242)
    };
    let dataset = Workflow::new(config).run();
    assert_eq!(dataset.sample_count(), dataset.scenario_count() * 6);

    let report = evaluate_table4(&dataset, 0.3, &fast_models(), 99);
    let default = report.row("Kubernetes Default").expect("baseline row");
    let forest = report.row("Random Forest").expect("forest row");
    let best_supervised_top1 = report
        .rows
        .iter()
        .filter(|r| r.method != "Kubernetes Default")
        .map(|r| r.top1)
        .fold(0.0, f64::max);
    let best_supervised_top2 = report
        .rows
        .iter()
        .filter(|r| r.method != "Kubernetes Default")
        .map(|r| r.top2)
        .fold(0.0, f64::max);

    // The blind baseline hovers around uniform choice over six nodes.
    assert!(default.top1 < 0.45, "default top1 {}", default.top1);
    // Learning from telemetry helps substantially (the paper's headline claim).
    assert!(
        best_supervised_top1 > default.top1,
        "supervised {best_supervised_top1} must beat default {}",
        default.top1
    );
    assert!(
        best_supervised_top2 > default.top2,
        "supervised top2 {best_supervised_top2} must beat default {}",
        default.top2
    );
    // Top-2 dominates Top-1 for every method, and the forest is competitive.
    for row in &report.rows {
        assert!(row.top2 + 1e-9 >= row.top1, "{}", row.method);
    }
    assert!(forest.top2 >= default.top2);
}

#[test]
fn scheduler_service_full_loop_learns_and_places() {
    // Bootstrap: run jobs with the service's fallback (random) placement,
    // record outcomes, retrain, then check the model is consulted.
    let mut world = SimWorld::new(FabricTestbed::paper(), 777);
    world.place_background_load(2, &BackgroundLoadConfig::default());
    world.advance_by(SimDuration::from_secs(10));

    let mut service = SchedulerService::new(
        SchedulerConfig {
            model_kind: ModelKind::RandomForest,
            min_training_samples: 24,
            ..Default::default()
        },
        5,
    );
    let mut rng = Rng::seed_from_u64(6);

    for i in 0..30 {
        let kind = WorkloadKind::PAPER_SET[i % 3];
        let request = JobRequest::named(format!("boot-{i}"), kind, 50_000 + (i as u64 * 10_000), 2);
        let decision = service.schedule(&request, &world.metrics, &world.cluster, world.now());
        assert!(!decision.used_model, "still bootstrapping");
        let target = decision.job.target_node.clone().expect("feasible node");
        let outcome = world.run_job(&request, &target).expect("bootstrap run");
        service.record_outcome(
            &outcome.pre_run_snapshot,
            &request,
            &target,
            outcome.result.completion_seconds(),
        );
        world.advance_by(SimDuration::from_secs(2));
    }
    assert_eq!(service.logged_executions(), 30);
    assert!(service.retrain(&mut rng), "enough samples to train");
    assert!(service.is_model_active());

    // A post-training decision consults the model and pins the driver.
    let request = JobRequest::named("online-sort", WorkloadKind::Sort, 250_000, 2);
    let decision = service.schedule(&request, &world.metrics, &world.cluster, world.now());
    assert!(decision.used_model);
    assert_eq!(decision.ranking.len(), 6);
    let target = decision
        .job
        .target_node
        .clone()
        .expect("model picked a node");
    assert!(decision.job.manifest_yaml.contains(&format!("- {target}")));
    // The pinned manifest is accepted by the world and the job completes.
    let outcome = world
        .run_job(&request, &target)
        .expect("placement is feasible");
    assert!(outcome.result.completion_seconds() > 0.0);
}

#[test]
fn supervised_choice_is_never_worse_on_average_than_random_choice() {
    // Average realized completion time of the model's choices should not
    // exceed the average over random choices on the same scenarios.
    let config = ExperimentConfig {
        workers: simcore::parallel::default_workers(),
        ..ExperimentConfig::quick(2, 3, 31337)
    };
    let dataset = Workflow::new(config).run();
    let mut rng = Rng::seed_from_u64(8);
    let (train_idx, test_idx) = dataset.split_scenarios(0.3, &mut rng);
    let train = dataset.logger_for(&train_idx).to_dataset();
    let model = netsched::mlcore::TrainedModel::train(
        ModelKind::RandomForest,
        &fast_models(),
        &train,
        &mut rng,
    );
    let predictor =
        netsched::core::predictor::CompletionTimePredictor::new(dataset.schema.clone(), model)
            .expect("dataset schema matches its own training data");

    let mut model_total = 0.0;
    let mut random_total = 0.0;
    let mut oracle_total = 0.0;
    for &idx in &test_idx {
        let scenario = &dataset.scenarios[idx];
        let request = scenario.request();
        let candidates = scenario.candidate_nodes();
        let predictions = predictor.predict_all(&scenario.snapshot, &candidates, &request);
        let choice_idx = predictions
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let completions = scenario.completions();
        model_total += completions[choice_idx];
        random_total += completions.iter().sum::<f64>() / completions.len() as f64;
        oracle_total += completions.iter().cloned().fold(f64::INFINITY, f64::min);
    }
    assert!(
        model_total <= random_total * 1.02,
        "model {model_total:.1}s vs random {random_total:.1}s"
    );
    assert!(oracle_total <= model_total + 1e-9);
}
