//! Property-based tests over the public API (proptest).
//!
//! These complement the unit-level proptests inside `simnet` by checking
//! cross-crate invariants: conservation of bytes in the fluid network, ranking
//! invariants of the decision module, schema/feature alignment and monotone
//! behaviour of the execution model.

use netsched::core::decision::DecisionModule;
use netsched::core::features::FeatureSchema;
use netsched::core::request::JobRequest;
use netsched::experiments::{FabricTestbed, SimWorld};
use netsched::simcore::{SimDuration, SimTime};
use netsched::simnet::flow::FlowKind;
use netsched::simnet::Network;
use netsched::sparksim::WorkloadKind;
use netsched::{ClusterNodeId, SimNodeId};
use proptest::prelude::*;

fn paper_network() -> Network {
    FabricTestbed::paper().network
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every byte a flow delivers shows up once in the source's tx counter and
    /// once in the destination's rx counter, and completed flows deliver
    /// exactly their size.
    #[test]
    fn network_conserves_bytes(
        flows in prop::collection::vec((0usize..6, 0usize..6, 1_000.0f64..50_000_000.0), 1..8),
        horizon_secs in 10u64..200,
    ) {
        let mut net = paper_network();
        let mut expected_total = 0.0;
        for &(src, dst, bytes) in &flows {
            net.start_flow(SimNodeId(src), SimNodeId(dst), bytes, FlowKind::Shuffle);
            if src != dst {
                expected_total += bytes;
            }
        }
        net.run_to_quiescence(SimDuration::from_secs(horizon_secs * 10));
        let total_tx: f64 = (0..6).map(|i| net.counters(SimNodeId(i)).tx_bytes).sum();
        let total_rx: f64 = (0..6).map(|i| net.counters(SimNodeId(i)).rx_bytes).sum();
        prop_assert!((total_tx - expected_total).abs() < 1.0, "tx {total_tx} vs expected {expected_total}");
        prop_assert!((total_rx - expected_total).abs() < 1.0, "rx {total_rx} vs expected {expected_total}");
        prop_assert_eq!(net.active_flow_count(), 0);
    }

    /// Advancing the network clock is monotone and counters never decrease.
    #[test]
    fn counters_are_monotone(
        steps in prop::collection::vec(1u64..30, 1..10),
    ) {
        let mut net = paper_network();
        net.start_flow(SimNodeId(0), SimNodeId(2), 1e9, FlowKind::Background);
        net.start_flow(SimNodeId(3), SimNodeId(1), 5e8, FlowKind::Background);
        let mut last_tx = 0.0;
        let mut now = SimTime::ZERO;
        for step in steps {
            now += SimDuration::from_secs(step);
            net.advance_to(now);
            let tx: f64 = (0..6).map(|i| net.counters(SimNodeId(i)).tx_bytes).sum();
            prop_assert!(tx + 1e-9 >= last_tx);
            prop_assert_eq!(net.now(), now);
            last_tx = tx;
        }
    }

    /// The decision module's ranking is a permutation of the candidates with
    /// non-decreasing predictions, regardless of the prediction values.
    #[test]
    fn ranking_is_a_sorted_permutation(predictions in prop::collection::vec(0.0f64..10_000.0, 1..12)) {
        let candidates: Vec<ClusterNodeId> =
            (0..predictions.len()).map(ClusterNodeId::from_index).collect();
        let ranking = DecisionModule.rank(&candidates, &predictions);
        prop_assert_eq!(ranking.len(), candidates.len());
        let mut returned: Vec<ClusterNodeId> = ranking.ranked.iter().map(|r| r.node).collect();
        returned.sort_unstable();
        prop_assert_eq!(returned, candidates.clone());
        for pair in ranking.ranked.windows(2) {
            prop_assert!(pair[0].predicted_seconds <= pair[1].predicted_seconds);
        }
        // The best node really does carry the minimum prediction.
        let min = predictions.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((ranking.best().unwrap().predicted_seconds - min).abs() < 1e-12);
    }

    /// Feature vectors always match the schema width, contain only finite
    /// values, and encode exactly one application indicator.
    #[test]
    fn feature_vectors_are_well_formed(
        records in 1_000u64..5_000_000,
        executors in 1u32..6,
        memory_gb in 1u64..8,
        workload_idx in 0usize..5,
        node_idx in 0usize..8,
    ) {
        let mut world = SimWorld::new(FabricTestbed::paper(), 3);
        world.advance_by(SimDuration::from_secs(6));
        let snapshot = world.snapshot();
        let schema = FeatureSchema::standard();
        let kind = WorkloadKind::ALL[workload_idx];
        let request = JobRequest::new(
            "prop-job",
            netsched::sparksim::WorkloadRequest::new(kind, records)
                .with_executors(executors)
                .with_executor_memory(memory_gb << 30),
        );
        // node_idx may point past the real cluster: unknown nodes still yield a valid vector.
        let node = format!("node-{}", node_idx + 1);
        let features = schema.construct(&snapshot, &node, &request);
        prop_assert_eq!(features.len(), schema.len());
        prop_assert!(features.iter().all(|v| v.is_finite()));
        let one_hot: f64 = WorkloadKind::ALL
            .iter()
            .map(|k| features[schema.index_of(&format!("app_{}", k.as_str())).unwrap()])
            .sum();
        prop_assert_eq!(one_hot, 1.0);
        prop_assert_eq!(features[schema.index_of("input_records").unwrap()], records as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Larger inputs never complete faster than smaller ones under identical
    /// conditions (monotonicity of the execution model).
    #[test]
    fn completion_time_is_monotone_in_input_size(base in 50_000u64..200_000, factor in 2u64..6) {
        let run = |records: u64| -> f64 {
            let mut world = SimWorld::new(FabricTestbed::paper(), 12345);
            world.advance_by(SimDuration::from_secs(5));
            let request = JobRequest::named("mono", WorkloadKind::Sort, records, 2);
            world.run_job(&request, "node-2").unwrap().result.completion_seconds()
        };
        let small = run(base);
        let large = run(base * factor);
        prop_assert!(large >= small, "large {large} < small {small}");
    }
}
