//! Differential property tests for the flat, batch-first model layer.
//!
//! The model stack was rewritten around struct-of-arrays [`FlatTree`]s and
//! batch inference (`predict_into` / trees-outer accumulation). These tests
//! pin the rewrite against the canonical nested-node reference: an enum walk
//! over [`TreeNode`]s — the representation trees serialize as — re-implemented
//! the obvious way. For random fitted trees, forests and GBDTs (including
//! degenerate stumps, single-leaf trees and empty batches) the flat scalar
//! walk, the batch kernel and the reference must agree **exactly** (bit
//! identity, not tolerance), and serde round-trips through the canonical form
//! must re-flatten to the same predictions.

use netsched::mlcore::{
    Dataset, DecisionTree, DecisionTreeConfig, FeatureMatrix, FlatTree, GradientBoosting,
    GradientBoostingConfig, ModelConfig, ModelKind, RandomForest, RandomForestConfig, Regressor,
    TrainedModel, TreeNode,
};
use netsched::simcore::rng::Rng;
use proptest::prelude::*;

/// The reference prediction: walk the canonical nested node list exactly the
/// way the historical enum representation did.
fn reference_walk(nodes: &[TreeNode], row: &[f64]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let mut idx = 0usize;
    loop {
        match &nodes[idx] {
            TreeNode::Leaf { prediction, .. } => return *prediction,
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
                ..
            } => {
                idx = if row[*feature] <= *threshold {
                    *left
                } else {
                    *right
                };
            }
        }
    }
}

/// Reference forest prediction with the exact float-operation order of
/// `RandomForest::predict_row`.
fn reference_forest(forest: &RandomForest, row: &[f64]) -> f64 {
    if forest.tree_count() == 0 {
        return 0.0;
    }
    forest
        .trees()
        .iter()
        .map(|t| reference_walk(&t.canonical_nodes(), row))
        .sum::<f64>()
        / forest.tree_count() as f64
}

/// Reference GBDT prediction with the exact float-operation order of
/// `GradientBoosting::predict_row`.
fn reference_gbdt(model: &GradientBoosting, row: &[f64]) -> f64 {
    let mut pred = model.base_prediction();
    for tree in model.trees() {
        pred += model.learning_rate() * reference_walk(&tree.canonical_nodes(), row);
    }
    pred
}

/// Build a dataset from a flat value stream: `width` feature columns, the
/// target derived from the same stream so it correlates with the features.
fn dataset_from(values: &[f64], width: usize) -> Dataset {
    let names = (0..width).map(|i| format!("f{i}")).collect();
    let mut data = Dataset::new(names);
    for chunk in values.chunks_exact(width + 1) {
        data.push_row(&chunk[..width], chunk[width]).unwrap();
    }
    data
}

/// Probe rows: every training row plus a few out-of-distribution ones.
fn probe_matrix(data: &Dataset) -> FeatureMatrix {
    let width = data.n_features();
    let mut probes = FeatureMatrix::new(width);
    for i in 0..data.len() {
        probes.push_row(data.row(i));
    }
    for v in [-1e9, 0.0, 0.5, 1e9] {
        let row = probes.add_row();
        row.fill(v);
    }
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat scalar walk, batch kernel and the canonical enum-walk reference
    /// agree exactly for random fitted trees, including depth-0/1 stumps.
    #[test]
    fn flat_tree_matches_enum_walk_reference(
        values in prop::collection::vec(0.0f64..100.0, 30..260),
        width in 1usize..5,
        max_depth in 0usize..9,
        min_samples_leaf in 1usize..5,
        subsample_features in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let data = dataset_from(&values, width);
        let mut tree = DecisionTree::new(DecisionTreeConfig {
            max_depth,
            min_samples_split: 2,
            min_samples_leaf,
            max_features: if subsample_features == 1 { Some(1) } else { None },
        });
        let mut rng = Rng::seed_from_u64(seed);
        tree.fit(&data, &mut rng);
        prop_assert!(tree.depth() <= max_depth);

        let nodes = tree.canonical_nodes();
        prop_assert_eq!(nodes.len(), tree.node_count());
        let probes = probe_matrix(&data);
        let mut batch = Vec::new();
        tree.predict_into(&probes, &mut batch);
        prop_assert_eq!(batch.len(), probes.n_rows());
        for (i, &batched) in batch.iter().enumerate() {
            let row = probes.row(i);
            let reference = reference_walk(&nodes, row);
            prop_assert_eq!(tree.predict_row(row), reference);
            prop_assert_eq!(batched, reference);
        }

        // The canonical form re-flattens to the identical flat tree, and an
        // empty batch stays empty.
        prop_assert_eq!(&FlatTree::from_nodes(&nodes).unwrap(), tree.flat());
        tree.predict_into(&FeatureMatrix::new(width), &mut batch);
        prop_assert!(batch.is_empty());
    }

    /// Forest and GBDT batch predictions equal their per-row paths and the
    /// enum-walk reference exactly, for random ensembles.
    #[test]
    fn ensembles_match_enum_walk_reference(
        values in prop::collection::vec(0.0f64..100.0, 60..240),
        width in 1usize..4,
        n_trees in 1usize..6,
        n_rounds in 1usize..10,
        seed in 0u64..1_000_000,
    ) {
        let data = dataset_from(&values, width);
        let probes = probe_matrix(&data);
        let mut batch = Vec::new();

        let mut forest = RandomForest::new(RandomForestConfig {
            n_trees,
            workers: 2,
            tree: DecisionTreeConfig {
                max_depth: 6,
                ..Default::default()
            },
            ..Default::default()
        });
        let mut rng = Rng::seed_from_u64(seed);
        forest.fit(&data, &mut rng);
        forest.predict_into(&probes, &mut batch);
        for (i, &batched) in batch.iter().enumerate() {
            let row = probes.row(i);
            let reference = reference_forest(&forest, row);
            prop_assert_eq!(forest.predict_row(row), reference);
            prop_assert_eq!(batched, reference);
        }

        let mut gbdt = GradientBoosting::new(GradientBoostingConfig {
            n_rounds,
            validation_fraction: if seed % 2 == 0 { 0.0 } else { 0.2 },
            ..Default::default()
        });
        gbdt.fit(&data, &mut rng);
        gbdt.predict_into(&probes, &mut batch);
        for (i, &batched) in batch.iter().enumerate() {
            let row = probes.row(i);
            let reference = reference_gbdt(&gbdt, row);
            prop_assert_eq!(gbdt.predict_row(row), reference);
            prop_assert_eq!(batched, reference);
        }

        // Empty batches stay empty for both ensembles.
        forest.predict_into(&FeatureMatrix::new(width), &mut batch);
        prop_assert!(batch.is_empty());
        gbdt.predict_into(&FeatureMatrix::new(width), &mut batch);
        prop_assert!(batch.is_empty());
    }

    /// Serde round-trips go through the canonical nested node form;
    /// re-flattening must preserve every prediction exactly, per family.
    #[test]
    fn serde_roundtrip_reflattens_to_identical_predictions(
        values in prop::collection::vec(0.0f64..100.0, 60..200),
        width in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let data = dataset_from(&values, width);
        let probes = probe_matrix(&data);
        let config = ModelConfig {
            forest: RandomForestConfig {
                n_trees: 4,
                workers: 2,
                tree: DecisionTreeConfig { max_depth: 5, ..Default::default() },
                ..Default::default()
            },
            gbdt: GradientBoostingConfig { n_rounds: 6, ..Default::default() },
            ..Default::default()
        };
        let mut rng = Rng::seed_from_u64(seed);
        for kind in ModelKind::ALL {
            let model = TrainedModel::train(kind, &config, &data, &mut rng);
            let restored = TrainedModel::from_json(&model.to_json()).unwrap();
            prop_assert_eq!(restored.kind(), kind);
            let mut original = Vec::new();
            let mut reloaded = Vec::new();
            model.predict_into(&probes, &mut original);
            restored.predict_into(&probes, &mut reloaded);
            prop_assert_eq!(&original, &reloaded);
            for (i, &expected) in original.iter().enumerate() {
                prop_assert_eq!(restored.predict_row(probes.row(i)), expected);
            }
        }
    }
}

/// A degenerate stump (depth 0) is a single leaf: constant prediction, and
/// the canonical form is one `Leaf` node.
#[test]
fn degenerate_stump_is_a_single_leaf() {
    let mut data = Dataset::new(vec!["x".into()]);
    for i in 0..10 {
        data.push_row(&[i as f64], i as f64 * 2.0).unwrap();
    }
    let mut tree = DecisionTree::new(DecisionTreeConfig {
        max_depth: 0,
        ..Default::default()
    });
    let mut rng = Rng::seed_from_u64(3);
    tree.fit(&data, &mut rng);
    assert_eq!(tree.depth(), 0);
    assert_eq!(tree.node_count(), 1);
    let nodes = tree.canonical_nodes();
    assert!(matches!(nodes[0], TreeNode::Leaf { .. }));
    // Mean of 0,2,..,18 = 9.
    assert_eq!(tree.predict_row(&[123.0]), 9.0);
    let mut batch = Vec::new();
    tree.predict_into(data.matrix(), &mut batch);
    assert!(batch.iter().all(|&p| p == 9.0));
}

/// NaN feature values take the `>` branch in the flat walk — exactly what
/// the historical enum walk's `<=` comparison did.
#[test]
fn nan_features_follow_the_enum_walk_direction() {
    let mut data = Dataset::new(vec!["x".into()]);
    for i in 0..10 {
        let x = i as f64;
        data.push_row(&[x], if x < 5.0 { 10.0 } else { 20.0 })
            .unwrap();
    }
    let mut tree = DecisionTree::default();
    let mut rng = Rng::seed_from_u64(1);
    tree.fit(&data, &mut rng);
    let nodes = tree.canonical_nodes();
    let nan_row = [f64::NAN];
    assert_eq!(tree.predict_row(&nan_row), reference_walk(&nodes, &nan_row));
    let mut probes = FeatureMatrix::new(1);
    probes.push_row(&nan_row);
    let mut batch = Vec::new();
    tree.predict_into(&probes, &mut batch);
    assert_eq!(batch[0], reference_walk(&nodes, &nan_row));
}
