//! Differential tests for the two-stage decision path: the indexed
//! feasibility filter, top-K candidate pruning and their interaction with
//! live concurrent telemetry ingest.
//!
//! * **Feasibility differential.** On randomized worlds (mixed capacities,
//!   cordons, taints, partial and full loads) the resource-sorted
//!   [`FeasibilityIndex`] and the [`SchedulingContext`] — fresh or reusing a
//!   previous burst's scratch — must agree *exactly* with the naive full
//!   scan through [`DefaultScheduler::filter`].
//! * **K = ∞ byte-identity.** With an unbounded (or merely oversized) budget,
//!   every one of the five policies must produce rankings byte-identical to
//!   the unpruned path under every pruning policy, RNG streams included.
//! * **Monotonicity.** The pruned candidate set is exactly the K best
//!   prefilter scores under the active policy, budgets nest (`S_K ⊆ S_K'`),
//!   and the supervised top-1 under K can only move toward the full-rank
//!   top-1 as K grows.
//! * **Stress.** Pruned decision bursts against a `published_handle()` reader
//!   while ingest commits epochs on another thread: every decision uses a
//!   whole committed epoch, even while cluster mutations force feasibility
//!   index rebuilds between bursts.

use netsched::cluster::{
    ClusterState, DefaultScheduler, FeasibilityIndex, FilterResult, Node, PodId, PodSpec,
    Resources, Taint, TaintEffect,
};
use netsched::core::context::SchedulingContext;
use netsched::core::features::FeatureSchema;
use netsched::core::predictor::CompletionTimePredictor;
use netsched::core::request::JobRequest;
use netsched::core::schedulers::{
    JobScheduler, KubeDefaultScheduler, LeastLoadedScheduler, LowestRttScheduler, RandomScheduler,
    SupervisedScheduler,
};
use netsched::core::service::{SchedulerConfig, SchedulerService};
use netsched::core::PruningPolicy;
use netsched::mlcore::{Dataset, ModelConfig, ModelKind, TrainedModel};
use netsched::simcore::rng::Rng;
use netsched::simcore::SimTime;
use netsched::telemetry::{ClusterSnapshot, NodeTelemetry};
use netsched::{ClusterNodeId, SimNodeId};
use proptest::prelude::*;

/// Every stage-one pruning policy.
const POLICIES: [PruningPolicy; 3] = [
    PruningPolicy::ModelAligned,
    PruningPolicy::LinearBlend,
    PruningPolicy::LeastAllocated,
];

/// A randomized world: nodes with mixed capacities, a slice cordoned or
/// tainted, loads ranging from idle to completely full, and telemetry for
/// most (not all) nodes plus a sparse RTT ring.
fn varied_world(nodes: usize, seed: u64) -> (ClusterState, ClusterSnapshot) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut cluster = ClusterState::new();
    for i in 0..nodes {
        let cores = 2 + rng.gen_range_usize(0, 7) as u64;
        let gib = 2 + rng.gen_range_usize(0, 15) as u64;
        let mut node = Node::new(
            format!("node-{}", i + 1),
            SimNodeId(i),
            Resources::from_cores_and_gib(cores, gib),
            if i % 2 == 0 { "EAST" } else { "WEST" },
        );
        match rng.gen_range_usize(0, 10) {
            0 => node.schedulable = false,
            1 => node.taints.push(Taint {
                key: "dedicated".into(),
                value: "infra".into(),
                effect: TaintEffect::NoSchedule,
            }),
            2 => node.taints.push(Taint {
                key: "flaky".into(),
                value: "true".into(),
                effect: TaintEffect::PreferNoSchedule,
            }),
            _ => {}
        }
        cluster.add_node(node);
    }
    for i in 0..nodes {
        let load = rng.gen_range_usize(0, 4);
        if load == 0 {
            continue;
        }
        let node = cluster
            .node_by_id_mut(ClusterNodeId::from_index(i))
            .expect("node exists");
        let free = node.available();
        let req = if load == 1 {
            free // fill completely
        } else {
            Resources {
                cpu_millis: free.cpu_millis / load as u64,
                memory_bytes: free.memory_bytes / load as u64,
            }
        };
        node.bind(PodId(i as u64), req);
    }

    let mut snapshot = ClusterSnapshot::at(SimTime::from_secs(30));
    for i in 0..nodes {
        // A slice of nodes was never scraped: prefilter and heuristics must
        // cope with missing telemetry.
        if rng.gen_range_usize(0, 8) == 0 {
            continue;
        }
        let node = &cluster.nodes()[i];
        snapshot.insert_node(
            &node.name,
            NodeTelemetry {
                cpu_load: node.cpu_load() + rng.uniform(0.0, 1.0),
                memory_available_bytes: node.memory_available(),
                tx_rate: rng.uniform(0.0, 1e7),
                rx_rate: rng.uniform(0.0, 1e7),
            },
        );
        for hop in [1usize, 3] {
            let peer = (i + hop) % nodes;
            if peer != i {
                snapshot.insert_rtt(
                    &format!("node-{}", i + 1),
                    &format!("node-{}", peer + 1),
                    rng.uniform(0.0002, 0.08),
                );
            }
        }
    }
    (cluster, snapshot)
}

fn driver_request(i: usize, cpu_millis: u64, mem_gib: u64) -> JobRequest {
    let kinds = netsched::sparksim::WorkloadKind::ALL;
    JobRequest::named(
        format!("prune-{i}"),
        kinds[i % kinds.len()],
        80_000 + 10_000 * i as u64,
        2,
    )
    .with_driver_resources(cpu_millis, mem_gib * 1024 * 1024 * 1024)
}

/// A deterministic Linear predictor (trained once, shared by every case).
fn predictor() -> CompletionTimePredictor {
    static CACHE: std::sync::OnceLock<CompletionTimePredictor> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| {
            let schema = FeatureSchema::standard();
            let mut data = Dataset::new(schema.names().to_vec());
            let mut rng = Rng::seed_from_u64(5);
            let job = driver_request(0, 500, 1);
            for load in 0..40 {
                let mut snap = ClusterSnapshot::at(SimTime::from_secs(10));
                snap.insert_node(
                    "node-1",
                    NodeTelemetry {
                        cpu_load: load as f64 / 5.0,
                        memory_available_bytes: 6e9,
                        tx_rate: 0.0,
                        rx_rate: 0.0,
                    },
                );
                let features = schema.construct(&snap, "node-1", &job);
                data.push(features, 10.0 + 4.0 * load as f64 / 5.0).unwrap();
            }
            let model =
                TrainedModel::train(ModelKind::Linear, &ModelConfig::default(), &data, &mut rng);
            CompletionTimePredictor::new(schema, model).expect("schema matches training data")
        })
        .clone()
}

/// The reference filter: scan every node with the real scheduler filter.
fn naive_feasible(cluster: &ClusterState, request: &JobRequest) -> Vec<ClusterNodeId> {
    let driver = request.to_job_spec().driver_pod(None);
    cluster
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, node)| DefaultScheduler::filter(&driver, node) == FilterResult::Feasible)
        .map(|(index, _)| ClusterNodeId::from_index(index))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The indexed feasibility set equals the naive full-scan filter exactly
    /// — same nodes, same (ascending-id) order — through the raw index, a
    /// fresh context and a context reusing the previous burst's scratch
    /// (whose warm index must re-validate, not drift).
    #[test]
    fn indexed_feasibility_equals_naive_full_scan(
        seed in 0u64..1_000_000,
        nodes in 1usize..48,
        cpu_choice in 0usize..7,
        mem_gib in 0u64..12,
    ) {
        let cpu_millis = [0u64, 250, 500, 1_000, 2_500, 4_000, 9_000][cpu_choice];
        let (mut cluster, snapshot) = varied_world(nodes, seed);
        let request = driver_request(0, cpu_millis, mem_gib);
        let expected = naive_feasible(&cluster, &request);

        let mut index = FeasibilityIndex::new();
        index.sync(&cluster);
        let driver = request.to_job_spec().driver_pod(None);
        prop_assert_eq!(index.query(&driver.requests), expected.clone());

        let mut standalone = SchedulingContext::new(&snapshot, &cluster);
        prop_assert_eq!(standalone.feasible_candidates(&request), &expected[..]);

        // Next burst reusing the scratch: same answer from the warm index.
        let scratch = standalone.into_scratch();
        let scratch = {
            let mut reused = SchedulingContext::with_scratch(&snapshot, &cluster, scratch);
            prop_assert_eq!(reused.feasible_candidates(&request), &expected[..]);
            reused.into_scratch()
        };

        // Post-bind update: mutate the cluster, re-derive the oracle, and the
        // reused context must track it through the generation bump.
        if let Some(&target) = expected.first() {
            let node = cluster.node_by_id_mut(target).expect("feasible node exists");
            let free = node.available();
            node.bind(PodId(90_000 + seed), free);
            let mut after = SchedulingContext::with_scratch(&snapshot, &cluster, scratch);
            let expected_after = naive_feasible(&cluster, &request);
            prop_assert_eq!(after.feasible_candidates(&request), &expected_after[..]);
        }
    }

    /// With the budget off or merely oversized, every policy's rankings are
    /// byte-identical to the unpruned path under every pruning policy —
    /// including the stateful (seeded) schedulers, whose RNG streams must
    /// advance the same way through the pruned code path.
    #[test]
    fn unbounded_budget_is_byte_identical_for_every_policy(
        seed in 0u64..1_000_000,
        nodes in 2usize..24,
        oversized_choice in 0usize..3,
    ) {
        let oversized = [64usize, 1_000, usize::MAX][oversized_choice];
        let (cluster, snapshot) = varied_world(nodes, seed);
        let requests: Vec<JobRequest> = (0..4)
            .map(|i| driver_request(i, 250 + 250 * i as u64, 1 + i as u64 % 3))
            .collect();

        type PolicyFactory = Box<dyn Fn() -> Box<dyn JobScheduler>>;
        let schedulers: Vec<(&str, PolicyFactory)> = vec![
            (
                "supervised",
                Box::new(|| Box::new(SupervisedScheduler::new(predictor())) as Box<dyn JobScheduler>),
            ),
            (
                "kube-default",
                Box::new(move || Box::new(KubeDefaultScheduler::new(seed)) as Box<dyn JobScheduler>),
            ),
            (
                "random",
                Box::new(move || Box::new(RandomScheduler::new(seed)) as Box<dyn JobScheduler>),
            ),
            (
                "least-loaded",
                Box::new(|| Box::new(LeastLoadedScheduler) as Box<dyn JobScheduler>),
            ),
            (
                "lowest-rtt",
                Box::new(|| Box::new(LowestRttScheduler) as Box<dyn JobScheduler>),
            ),
        ];
        for (name, make) in &schedulers {
            let mut unpruned_ctx = SchedulingContext::new(&snapshot, &cluster);
            let unpruned = make().select_batch(&requests, &mut unpruned_ctx);
            for policy in POLICIES {
                let mut pruned_ctx = SchedulingContext::new(&snapshot, &cluster);
                pruned_ctx.set_top_k(Some(oversized));
                pruned_ctx.set_pruning_policy(policy);
                let pruned = make().select_batch(&requests, &mut pruned_ctx);
                prop_assert!(
                    unpruned == pruned,
                    "{} diverged at K={} under {:?}",
                    name,
                    oversized,
                    policy
                );
            }
        }
    }

    /// The pruned candidate set is exactly the K best prefilter scores under
    /// the active policy, budgets nest, and the supervised top-1 under K
    /// climbs monotonically toward (and at K ≥ n reaches) the full-rank
    /// top-1.
    #[test]
    fn pruning_is_exact_nested_and_monotone(
        seed in 0u64..1_000_000,
        nodes in 2usize..40,
    ) {
        let (cluster, snapshot) = varied_world(nodes, seed);
        let predictor = predictor();
        let request = driver_request(1, 500, 1);

        for policy in POLICIES {
            let mut ctx = SchedulingContext::new(&snapshot, &cluster);
            ctx.set_pruning_policy(policy);
            ctx.set_top_k(None);
            let feasible: Vec<ClusterNodeId> = ctx.feasible_candidates(&request).to_vec();
            let full = ctx.rank_feasible_batch(&request, &predictor);
            prop_assert_eq!(full.len(), feasible.len());
            let position_of = |id: ClusterNodeId| -> usize {
                full.ranked
                    .iter()
                    .position(|r| r.node == id)
                    .expect("pruned winner always comes from the feasible set")
            };

            // Independently recompute what the top-K prefilter must keep: the
            // K smallest (score, id) pairs, reported in ascending-id order.
            let mut scored: Vec<(f64, ClusterNodeId)> = feasible
                .iter()
                .map(|&id| (ctx.prefilter_score(id), id))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

            let mut budgets = vec![1usize, 2, 3, 5, 8, 13, nodes, nodes + 7];
            budgets.sort_unstable();
            budgets.dedup();
            let mut previous: Option<(Vec<ClusterNodeId>, usize)> = None;
            for &k in &budgets {
                ctx.set_top_k(Some(k));
                let pruned: Vec<ClusterNodeId> = ctx.pruned_candidates(&request).to_vec();
                prop_assert_eq!(pruned.len(), k.min(feasible.len()));
                let mut expected: Vec<ClusterNodeId> =
                    scored.iter().take(k).map(|&(_, id)| id).collect();
                expected.sort_unstable();
                prop_assert_eq!(&pruned, &expected);

                let ranking = ctx.rank_feasible_batch(&request, &predictor);
                prop_assert_eq!(ranking.len(), pruned.len());
                let top1_position = ranking.ranked.first().map(|r| position_of(r.node));
                if let Some((smaller, smaller_position)) = &previous {
                    // S_K ⊆ S_K' ...
                    prop_assert!(
                        smaller.iter().all(|id| pruned.contains(id)),
                        "budgets must nest: K={} lost a smaller budget's candidate",
                        k
                    );
                    // ... so the winner over the larger set can only rank
                    // better.
                    if let Some(position) = top1_position {
                        prop_assert!(
                            position <= *smaller_position,
                            "top-1 moved away from the full-rank top-1 as K grew to {}",
                            k
                        );
                    }
                }
                if k >= feasible.len() && !feasible.is_empty() {
                    prop_assert_eq!(&ranking, &full);
                    prop_assert_eq!(top1_position, Some(0));
                }
                previous = top1_position.map(|p| (pruned, p));
            }
        }
    }
}

/// Pruned decision bursts against a published-epoch reader while ingest runs
/// on another thread, with cluster mutations between bursts forcing
/// feasibility index rebuilds mid-stream. Every decision must use a whole
/// committed epoch, epochs must advance monotonically, and the index must
/// rebuild exactly once per cluster mutation — never because an epoch
/// changed.
#[test]
fn pruned_bursts_under_live_ingest_use_whole_committed_epochs() {
    use netsched::simcore::SimDuration;
    use netsched::simnet::{gbps, mbps, Network, TopologyBuilder};
    use netsched::telemetry::{ConcurrentScrapeManager, IngestConfig, ScrapeConfig, ScrapeManager};

    let nodes = 8usize;
    let mut b = TopologyBuilder::new();
    let s0 = b.add_site("A", SimDuration::from_micros(200), gbps(10.0));
    let s1 = b.add_site("B", SimDuration::from_micros(200), gbps(10.0));
    for i in 0..nodes {
        b.add_node(
            format!("node-{}", i + 1),
            if i % 2 == 0 { s0 } else { s1 },
            gbps(1.0),
            gbps(1.0),
        );
    }
    b.connect_sites(s0, s1, SimDuration::from_millis(10), mbps(500.0));
    let network = Network::new(b.build().unwrap());
    let mut cluster = ClusterState::new();
    for i in 0..nodes {
        cluster.add_node(Node::new(
            format!("node-{}", i + 1),
            SimNodeId(i),
            Resources::from_cores_and_gib(6, 8),
            if i % 2 == 0 { "A" } else { "B" },
        ));
    }

    let config = ScrapeConfig::default();
    let times: Vec<SimTime> = (0..150u64).map(|i| SimTime::from_secs(1 + i * 5)).collect();

    // Reference: the sequential scraper's snapshot after every round, at that
    // round's own timestamp — the only states a whole-epoch reader may see.
    let mut expected: Vec<String> = Vec::with_capacity(times.len());
    let mut reference = ScrapeManager::new(config.clone());
    for (i, &t) in times.iter().enumerate() {
        reference.scrape(&cluster, &network, t);
        let mut snap = ClusterSnapshot::default();
        reference.snapshot_into(times[i], config.rate_window, &mut snap);
        expected.push(serde_json::to_string(&snap).unwrap());
    }

    let mut manager = ConcurrentScrapeManager::with_ingest(
        config,
        IngestConfig {
            shard_count: 4,
            eval_workers: 3,
            writer_workers: 2,
            queue_depth: 2,
            chunk_rounds: 1,
            sync_work_threshold: 0,
        },
    );
    // Commit the first round up front so every burst below is epoch-backed.
    manager.scrape(&cluster, &network, times[0]);
    let published = manager.published_handle();

    // The scheduler works on its own view of the cluster so bursts can bind
    // pods (forcing index rebuilds) while ingest holds the scraped one.
    let mut sched_cluster = cluster.clone();
    let mut service = SchedulerService::new(
        SchedulerConfig {
            prune_top_k: Some(3),
            ..Default::default()
        },
        7,
    );

    let ingest_times = &times[1..];
    let (cluster_ref, network_ref) = (&cluster, &network);
    let observed_times = std::thread::scope(|scope| {
        let ingest = scope.spawn(move || {
            manager.ingest(cluster_ref, network_ref, ingest_times);
            manager
        });
        let mut observed: Vec<SimTime> = Vec::new();
        let mut mutations = 0u64;
        let mut burst = 0usize;
        loop {
            let finished = ingest.is_finished();
            let requests: Vec<JobRequest> = (0..3)
                .map(|i| driver_request(burst * 3 + i, 500, 1))
                .collect();
            let decisions =
                service.schedule_batch(&requests, &published, &sched_cluster, SimTime::ZERO);
            for decision in &decisions {
                // Whole-epoch consistency: the adopted snapshot is
                // byte-identical to the sequential state after some committed
                // round — never a torn mix of rounds.
                let round = times
                    .iter()
                    .position(|&t| t == decision.snapshot.time)
                    .expect("decision snapshot stamped with a round time");
                assert_eq!(
                    serde_json::to_string(&*decision.snapshot).unwrap(),
                    expected[round],
                    "burst {burst} used a torn (non-epoch) snapshot"
                );
                if observed.last() != Some(&decision.snapshot.time) {
                    observed.push(decision.snapshot.time);
                }
                // The budget binds: 3 of 8 feasible nodes get ranked.
                assert_eq!(decision.ranking.len(), 3);
            }
            burst += 1;
            // Every few bursts, bind a pod: the generation bump must force
            // exactly one index rebuild on the next burst, mid-ingest.
            if burst.is_multiple_of(8) {
                let pod = sched_cluster.create_pod(
                    PodSpec::new(
                        format!("stress-{burst}"),
                        Resources::from_cores_and_gib(0, 0),
                    ),
                    SimTime::ZERO,
                );
                sched_cluster
                    .bind_pod(
                        pod,
                        &format!("node-{}", 1 + (burst / 8) % nodes),
                        SimTime::ZERO,
                    )
                    .expect("zero-request stress pod always fits");
                mutations += 1;
            }
            if finished {
                break;
            }
        }
        ingest.join().expect("ingest thread");
        // One initial build plus exactly one rebuild per cluster mutation —
        // epoch adoption alone must never rebuild the feasibility index.
        assert_eq!(service.feasibility_rebuilds(), 1 + mutations);
        observed
    });

    // Epochs advance monotonically and the post-ingest burst saw the final
    // committed round.
    assert!(
        observed_times.windows(2).all(|w| w[0] <= w[1]),
        "observed epoch times must be monotone: {observed_times:?}"
    );
    assert_eq!(*observed_times.last().unwrap(), *times.last().unwrap());
    assert!(!observed_times.is_empty());
}
