//! Scheduler parity, determinism and batch-equivalence guards.
//!
//! These tests pin the contracts the hot-path refactor relies on:
//!
//! * every policy ranks over the *identical* feasible candidate set (the
//!   default scheduler's filter), so Table-4-style comparisons are
//!   apples-to-apples;
//! * a fixed seed yields byte-identical rankings across two independent
//!   runs (determinism guard — serialized and compared as bytes);
//! * `select_batch` over N requests equals N sequential `select` calls for
//!   every policy.

use netsched::cluster::{ClusterState, NodeId};
use netsched::core::context::SchedulingContext;
use netsched::core::features::FeatureSchema;
use netsched::core::predictor::CompletionTimePredictor;
use netsched::core::request::JobRequest;
use netsched::core::schedulers::{
    JobScheduler, KubeDefaultScheduler, LeastLoadedScheduler, LowestRttScheduler, RandomScheduler,
    SupervisedScheduler,
};
use netsched::core::NodeRanking;
use netsched::experiments::{FabricTestbed, SimWorld};
use netsched::mlcore::{Dataset, ModelConfig, ModelKind, TrainedModel};
use netsched::simcore::rng::Rng;
use netsched::simcore::SimDuration;
use netsched::simnet::BackgroundLoadConfig;
use netsched::sparksim::WorkloadKind;
use netsched::telemetry::ClusterSnapshot;

/// A contended world frozen after warm-up: telemetry differs across nodes.
fn frozen_world() -> (ClusterState, ClusterSnapshot) {
    let mut world = SimWorld::new(FabricTestbed::paper(), 20250727);
    world.place_background_load(2, &BackgroundLoadConfig::default());
    world.advance_by(SimDuration::from_secs(12));
    let snapshot = world.snapshot();
    (world.cluster, snapshot)
}

/// Full-scan reference: names of every node that can host the request's
/// driver pod, via the real scheduler filter (the oracle the indexed
/// [`SchedulingContext::feasible_candidates`] path must agree with).
fn feasible_names(request: &JobRequest, cluster: &ClusterState) -> Vec<String> {
    use netsched::cluster::scheduler::{DefaultScheduler, FilterResult};
    let driver = request.to_job_spec().driver_pod(None);
    cluster
        .nodes()
        .iter()
        .filter(|node| DefaultScheduler::filter(&driver, node) == FilterResult::Feasible)
        .map(|node| node.name.clone())
        .collect()
}

/// A small predictor trained on synthetic load-sensitive data.
fn predictor(snapshot: &ClusterSnapshot) -> CompletionTimePredictor {
    let schema = FeatureSchema::standard();
    let mut data = Dataset::new(schema.names().to_vec());
    let mut rng = Rng::seed_from_u64(9);
    let job = JobRequest::named("train", WorkloadKind::Sort, 100_000, 2);
    for (i, name) in snapshot.node_names().iter().enumerate() {
        for rep in 0..8 {
            let features = schema.construct(snapshot, name, &job);
            let load = snapshot.node(name).map(|t| t.cpu_load).unwrap_or(0.0);
            data.push(features, 20.0 + 5.0 * load + (i + rep) as f64 * 0.1)
                .unwrap();
        }
    }
    let model = TrainedModel::train(ModelKind::Linear, &ModelConfig::default(), &data, &mut rng);
    CompletionTimePredictor::new(schema, model).expect("schema matches training data")
}

/// Fresh instances of all five policies, seeded identically.
fn policies(snapshot: &ClusterSnapshot, seed: u64) -> Vec<Box<dyn JobScheduler>> {
    vec![
        Box::new(SupervisedScheduler::new(predictor(snapshot))),
        Box::new(KubeDefaultScheduler::new(seed)),
        Box::new(RandomScheduler::new(seed)),
        Box::new(LeastLoadedScheduler),
        Box::new(LowestRttScheduler),
    ]
}

fn requests(n: usize) -> Vec<JobRequest> {
    (0..n)
        .map(|i| {
            JobRequest::named(
                format!("job-{i}"),
                WorkloadKind::PAPER_SET[i % 3],
                80_000 + i as u64 * 15_000,
                2,
            )
        })
        .collect()
}

#[test]
fn all_policies_rank_over_the_identical_feasible_set() {
    let (cluster, snapshot) = frozen_world();
    let request = requests(1).remove(0);

    // The shared candidate contract, by name and by id.
    let expected_names = feasible_names(&request, &cluster);
    assert_eq!(expected_names.len(), 6, "paper testbed: all six nodes fit");
    let mut ctx = SchedulingContext::new(&snapshot, &cluster);
    let expected_ids: Vec<NodeId> = ctx.feasible_candidates(&request).to_vec();
    let expected_set: std::collections::BTreeSet<NodeId> = expected_ids.iter().copied().collect();
    assert_eq!(
        expected_names,
        expected_ids
            .iter()
            .map(|&id| cluster.node_name(id).to_string())
            .collect::<Vec<_>>()
    );

    for mut policy in policies(&snapshot, 77) {
        let ranking = policy.select(&request, &mut ctx);
        let ranked_set: std::collections::BTreeSet<NodeId> =
            ranking.ranked.iter().map(|r| r.node).collect();
        assert_eq!(
            ranked_set,
            expected_set,
            "{} must rank exactly the feasible candidates",
            policy.name()
        );
        assert_eq!(ranking.len(), expected_ids.len(), "{}", policy.name());
    }
}

#[test]
fn fixed_seed_yields_byte_identical_rankings_across_runs() {
    let (cluster, snapshot) = frozen_world();
    let batch = requests(6);

    let run = || -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut ctx = SchedulingContext::new(&snapshot, &cluster);
        for mut policy in policies(&snapshot, 4242) {
            for request in &batch {
                let ranking = policy.select(request, &mut ctx);
                bytes.extend_from_slice(
                    serde_json::to_string(&ranking)
                        .expect("ranking serializes")
                        .as_bytes(),
                );
            }
        }
        bytes
    };

    assert_eq!(run(), run(), "same seeds, same inputs, same bytes");
}

#[test]
fn select_batch_equals_sequential_selects_for_all_five_policies() {
    let (cluster, snapshot) = frozen_world();
    let batch = requests(5);

    let mut batch_policies = policies(&snapshot, 31);
    let mut seq_policies = policies(&snapshot, 31);
    for (batch_policy, seq_policy) in batch_policies.iter_mut().zip(seq_policies.iter_mut()) {
        let mut ctx_batch = SchedulingContext::new(&snapshot, &cluster);
        let mut ctx_seq = SchedulingContext::new(&snapshot, &cluster);
        let batched = batch_policy.select_batch(&batch, &mut ctx_batch);
        let sequential: Vec<NodeRanking> = batch
            .iter()
            .map(|request| seq_policy.select(request, &mut ctx_seq))
            .collect();
        assert_eq!(
            batched,
            sequential,
            "{}: batch must equal sequential",
            batch_policy.name()
        );
    }
}
