//! Cross-crate substrate integration: cluster ↔ network ↔ telemetry ↔ workload
//! interactions that no single crate's unit tests can exercise alone.

use netsched::cluster::{PodSpec, Resources};
use netsched::core::features::{FeatureGroup, FeatureSchema};
use netsched::core::request::JobRequest;
use netsched::experiments::{FabricTestbed, SimWorld};
use netsched::simcore::SimDuration;
use netsched::simnet::BackgroundLoadConfig;
use netsched::sparksim::WorkloadKind;
use netsched::telemetry::{METRIC_NODE_RX_BYTES, METRIC_PING_RTT};

#[test]
fn background_contention_is_visible_through_the_whole_telemetry_path() {
    let mut world = SimWorld::new(FabricTestbed::paper(), 101);
    // Heavy contention on exactly one host.
    world.place_background_load(
        1,
        &BackgroundLoadConfig {
            mean_gap: SimDuration::from_millis(80),
            cpu_load: 2.0,
            ..Default::default()
        },
    );
    world.advance_by(SimDuration::from_secs(45));
    let host = world.background_hosts()[0].clone();
    let snapshot = world.snapshot();

    // 1. The loaded host shows more CPU pressure than every other node.
    let host_load = snapshot.node(&host).unwrap().cpu_load;
    for (name, telemetry) in snapshot.iter_nodes() {
        if name != host {
            assert!(
                host_load > telemetry.cpu_load,
                "{host} ({host_load}) should be busier than {name} ({})",
                telemetry.cpu_load
            );
        }
    }
    // 2. The download target receives traffic: rx counters and the snapshot's
    //    rx rate agree that traffic exists.
    let rx_series = world
        .metrics
        .store()
        .instant_by_name(METRIC_NODE_RX_BYTES, world.now());
    assert_eq!(rx_series.len(), 6);
    let total_rx: f64 = rx_series.iter().map(|(_, v)| *v).sum();
    assert!(
        total_rx > 50_000_000.0,
        "background downloads moved data: {total_rx}"
    );
    assert!(snapshot.iter_nodes().any(|(_, t)| t.rx_rate > 1e5));
    // 3. The ping mesh is fully populated (6 x 5 ordered pairs).
    let pings = world
        .metrics
        .store()
        .instant_by_name(METRIC_PING_RTT, world.now());
    assert_eq!(pings.len(), 30);
}

#[test]
fn cluster_allocations_feed_back_into_execution_speed() {
    // Pre-loading a node with pods (CPU allocation) slows a job whose
    // executors land there — the cluster state and the execution model agree.
    let request = JobRequest::named("sort-alloc", WorkloadKind::Sort, 300_000, 2);

    let run_with_hog = |hog: bool| -> f64 {
        let mut world = SimWorld::new(FabricTestbed::paper(), 2024);
        world.advance_by(SimDuration::from_secs(5));
        if hog {
            // Occupy most of node-1 and node-4 (the UCSD site) with busy pods.
            for (i, node) in ["node-1", "node-4"].iter().enumerate() {
                let pod = world.cluster.create_pod(
                    PodSpec::new(format!("hog-{i}"), Resources::from_cores_and_gib(5, 6)),
                    world.now(),
                );
                world.cluster.bind_pod(pod, node, world.now()).unwrap();
            }
        }
        world
            .run_job(&request, "node-1")
            .expect("driver fits in the remaining capacity")
            .result
            .completion_seconds()
    };

    let quiet = run_with_hog(false);
    let contended = run_with_hog(true);
    assert!(
        contended > quiet,
        "co-located allocations must slow the job: contended {contended} vs quiet {quiet}"
    );
}

#[test]
fn feature_vectors_differ_between_congested_and_idle_nodes() {
    let mut world = SimWorld::new(FabricTestbed::paper(), 55);
    world.place_background_load(
        1,
        &BackgroundLoadConfig {
            mean_gap: SimDuration::from_millis(100),
            ..Default::default()
        },
    );
    world.advance_by(SimDuration::from_secs(40));
    let host = world.background_hosts()[0].clone();
    let idle = world
        .cluster
        .node_names()
        .into_iter()
        .find(|n| *n != host)
        .unwrap();
    let snapshot = world.snapshot();
    let schema = FeatureSchema::standard();
    let request = JobRequest::named("probe", WorkloadKind::PageRank, 100_000, 2);
    let busy_features = schema.construct(&snapshot, &host, &request);
    let idle_features = schema.construct(&snapshot, &idle, &request);
    assert_ne!(busy_features, idle_features);
    let cpu = schema.index_of("cpu_load").unwrap();
    assert!(busy_features[cpu] > idle_features[cpu]);
    // Job features are identical across candidates (same request).
    let job_columns: Vec<usize> = schema
        .groups()
        .iter()
        .enumerate()
        .filter(|(_, g)| **g == FeatureGroup::Job)
        .map(|(i, _)| i)
        .collect();
    for &col in &job_columns {
        assert_eq!(busy_features[col], idle_features[col]);
    }
}

#[test]
fn workload_families_have_distinct_runtime_signatures() {
    // Same input size, same placement, idle cluster: the three paper workloads
    // must produce clearly different completion times and shuffle volumes.
    let mut completions = Vec::new();
    for kind in WorkloadKind::PAPER_SET {
        let mut world = SimWorld::new(FabricTestbed::paper(), 9);
        world.advance_by(SimDuration::from_secs(5));
        let request = JobRequest::named(format!("{kind}-sig"), kind, 400_000, 2);
        let outcome = world.run_job(&request, "node-2").unwrap();
        completions.push((
            kind,
            outcome.result.completion_seconds(),
            outcome.result.shuffle_bytes,
        ));
    }
    // All distinct (no two workloads collapse onto the same number).
    for i in 0..completions.len() {
        for j in (i + 1)..completions.len() {
            assert!(
                (completions[i].1 - completions[j].1).abs() > 0.05,
                "{:?} vs {:?}",
                completions[i],
                completions[j]
            );
        }
    }
    // Sort (full-input shuffle) and PageRank (iterative exchange) both move
    // more data over the network than Join, matching the Table 2 story.
    let shuffle_of =
        |kind: WorkloadKind| completions.iter().find(|(k, _, _)| *k == kind).unwrap().2;
    assert!(shuffle_of(WorkloadKind::Sort) > shuffle_of(WorkloadKind::Join));
    assert!(shuffle_of(WorkloadKind::PageRank) > shuffle_of(WorkloadKind::Join));
}

#[test]
fn manifests_round_trip_through_the_default_scheduler_filter() {
    // A manifest pinned to node-3 must be placeable on node-3 and nowhere else
    // according to the same filtering logic the default scheduler uses.
    use netsched::cluster::scheduler::FilterResult;
    use netsched::cluster::DefaultScheduler;
    let request = JobRequest::named("pin-check", WorkloadKind::Join, 100_000, 2);
    let built = netsched::core::builder::JobBuilder.build(&request, Some("node-3"));
    let cluster = FabricTestbed::paper().cluster;
    for node in cluster.nodes() {
        let verdict = DefaultScheduler::filter(&built.driver_pod, node);
        if node.name == "node-3" {
            assert_eq!(verdict, FilterResult::Feasible);
        } else {
            assert_eq!(verdict, FilterResult::AffinityMismatch, "{}", node.name);
        }
    }
    assert!(built.manifest_yaml.contains("- node-3"));
}
