//! Differential and stress tests for the sharded, concurrent telemetry
//! ingest pipeline.
//!
//! * **Equivalence.** For a fixed scrape schedule, the concurrent pipeline
//!   ([`ConcurrentScrapeManager::ingest`]: parallel exporter evaluation,
//!   per-shard writer workers behind bounded queues, in-order epoch commits)
//!   must produce **byte-identical snapshots** to the synchronous
//!   [`ScrapeManager`] driving the same exporters round by round —
//!   parallelism changes wall-clock, never results.
//! * **Whole-round visibility.** Readers snapshotting *while* ingest runs on
//!   another thread must only ever observe fully-committed scrape rounds:
//!   every observed snapshot equals the state after some prefix of the
//!   schedule, and successive observations advance monotonically.
//! * **Whole-epoch publishing.** [`PublishedSnapshot`] readers polling while
//!   ingest runs must only ever observe whole committed epochs: per-handle
//!   epoch numbers are monotone, and every published snapshot is
//!   byte-identical to the sequential scraper's snapshot for the same round.

use netsched::cluster::{ClusterState, Node, Resources};
use netsched::simcore::{SimDuration, SimTime};
use netsched::simnet::{gbps, mbps, Network, TopologyBuilder};
use netsched::telemetry::{
    ClusterSnapshot, ConcurrentScrapeManager, IngestConfig, ScrapeConfig, ScrapeManager,
    SnapshotSource,
};
use netsched::SimNodeId;

/// A two-site world with `nodes` node exporters (plus the full ping mesh).
fn setup(nodes: usize) -> (ClusterState, Network) {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_site("A", SimDuration::from_micros(200), gbps(10.0));
    let s1 = b.add_site("B", SimDuration::from_micros(200), gbps(10.0));
    for i in 0..nodes {
        b.add_node(
            format!("node-{}", i + 1),
            if i % 2 == 0 { s0 } else { s1 },
            gbps(1.0),
            gbps(1.0),
        );
    }
    b.connect_sites(s0, s1, SimDuration::from_millis(10), mbps(500.0));
    let network = Network::new(b.build().unwrap());
    let mut cluster = ClusterState::new();
    for i in 0..nodes {
        cluster.add_node(Node::new(
            format!("node-{}", i + 1),
            SimNodeId(i),
            Resources::from_cores_and_gib(6, 8),
            if i % 2 == 0 { "A" } else { "B" },
        ));
    }
    (cluster, network)
}

#[test]
fn concurrent_ingest_is_byte_identical_to_sequential_scrapes() {
    let (cluster, network) = setup(6);
    let times: Vec<SimTime> = (0..120u64).map(|i| SimTime::from_secs(i * 5)).collect();
    let config = ScrapeConfig {
        interval: SimDuration::from_secs(5),
        rate_window: SimDuration::from_secs(30),
        retention: Some(SimDuration::from_secs(300)),
    };

    let mut sequential = ScrapeManager::new(config.clone());
    for &t in &times {
        sequential.scrape(&cluster, &network, t);
    }

    // Several ingest tunings, including degenerate ones, all converge to the
    // same bytes: parallelism must never change results.
    for ingest_config in [
        IngestConfig::default(),
        IngestConfig {
            shard_count: 1,
            eval_workers: 1,
            writer_workers: 1,
            queue_depth: 1,
            chunk_rounds: 1,
            sync_work_threshold: 0,
        },
        IngestConfig {
            shard_count: 5,
            eval_workers: 6,
            writer_workers: 3,
            queue_depth: 2,
            chunk_rounds: 3,
            sync_work_threshold: 0,
        },
    ] {
        let mut concurrent = ConcurrentScrapeManager::with_ingest(config.clone(), ingest_config);
        concurrent.ingest(&cluster, &network, &times);
        assert_eq!(concurrent.scrape_count(), times.len() as u64);
        assert_eq!(concurrent.point_count(), sequential.store().point_count());
        assert_eq!(concurrent.series_count(), sequential.store().series_count());

        let window = SimDuration::from_secs(30);
        let mut sharded_snap = ClusterSnapshot::default();
        let mut flat_snap = ClusterSnapshot::default();
        // Fetch times probe fresh state, mid-history and pre-retention.
        for &at_secs in &[595u64, 400, 123, 10, 0] {
            let at = SimTime::from_secs(at_secs);
            SnapshotSource::snapshot_into(&concurrent, at, window, &mut sharded_snap);
            sequential.snapshot_into(at, window, &mut flat_snap);
            let sharded_bytes = serde_json::to_string(&sharded_snap).unwrap();
            let flat_bytes = serde_json::to_string(&flat_snap).unwrap();
            assert_eq!(
                sharded_bytes, flat_bytes,
                "snapshot at t = {at_secs}s must be byte-identical ({ingest_config:?})"
            );
        }
    }
}

#[test]
fn readers_only_observe_whole_scrape_rounds_during_ingest() {
    let (cluster, network) = setup(3);
    let times: Vec<SimTime> = (0..80u64).map(|i| SimTime::from_secs(i * 5)).collect();
    let at = *times.last().unwrap();
    let window = SimDuration::from_secs(30);
    let config = ScrapeConfig::default();

    // Expected states: the pre-scrape empty snapshot, then the state after
    // every prefix of committed rounds (computed sequentially up front).
    let mut expected: Vec<ClusterSnapshot> = vec![ClusterSnapshot::at(at)];
    let mut reference = ScrapeManager::new(config.clone());
    for &t in &times {
        reference.scrape(&cluster, &network, t);
        let mut snap = ClusterSnapshot::default();
        reference.snapshot_into(at, window, &mut snap);
        expected.push(snap);
    }

    let mut manager = ConcurrentScrapeManager::with_ingest(
        config,
        IngestConfig {
            shard_count: 4,
            eval_workers: 3,
            writer_workers: 2,
            queue_depth: 2,
            chunk_rounds: 1,
            sync_work_threshold: 0,
        },
    );
    let reader = manager.reader();

    let observed_indices = std::thread::scope(|scope| {
        let ingest = scope.spawn(|| {
            manager.ingest(&cluster, &network, &times);
            manager
        });
        let mut scratch = ClusterSnapshot::default();
        let mut observed = Vec::new();
        loop {
            let finished = ingest.is_finished();
            reader.snapshot_into(at, window, &mut scratch);
            let index = expected
                .iter()
                .position(|e| e == &scratch)
                .unwrap_or_else(|| panic!("reader observed a torn (non-round) snapshot"));
            observed.push(index);
            if finished {
                break;
            }
        }
        ingest.join().expect("ingest thread");
        observed
    });

    // Rounds commit in schedule order, so observations advance monotonically
    // and the final observation is the fully-ingested state.
    assert!(
        observed_indices.windows(2).all(|w| w[0] <= w[1]),
        "observed round indices must be monotone: {observed_indices:?}"
    );
    assert_eq!(*observed_indices.last().unwrap(), times.len());
}

#[test]
fn published_readers_only_observe_whole_committed_epochs() {
    let (cluster, network) = setup(3);
    let times: Vec<SimTime> = (0..80u64).map(|i| SimTime::from_secs(i * 5)).collect();
    let config = ScrapeConfig::default();
    let window = config.rate_window;

    // Every epoch the pipeline publishes is the state after some committed
    // prefix of rounds, snapshotted at that round's own timestamp. Compute
    // the reference for each prefix with the sequential scraper: published
    // epoch bytes must match exactly.
    let mut expected: Vec<String> = Vec::with_capacity(times.len());
    let mut reference = ScrapeManager::new(config.clone());
    for (i, &t) in times.iter().enumerate() {
        reference.scrape(&cluster, &network, t);
        let mut snap = ClusterSnapshot::default();
        reference.snapshot_into(times[i], window, &mut snap);
        expected.push(serde_json::to_string(&snap).unwrap());
    }

    let mut manager = ConcurrentScrapeManager::with_ingest(
        config,
        IngestConfig {
            shard_count: 4,
            eval_workers: 3,
            writer_workers: 2,
            queue_depth: 2,
            chunk_rounds: 1,
            sync_work_threshold: 0,
        },
    );
    // Taken before any scrape: nothing published yet, so early polls see
    // `None` rather than a torn or empty epoch.
    let published = manager.published_handle();
    assert!(published.latest().is_none());

    let done = std::sync::atomic::AtomicBool::new(false);
    let (cluster_ref, network_ref, times_ref, done_ref) = (&cluster, &network, &times, &done);
    let final_epoch = std::thread::scope(|scope| {
        let ingest = scope.spawn(move || {
            manager.ingest(cluster_ref, network_ref, times_ref);
            done_ref.store(true, std::sync::atomic::Ordering::Release);
            manager
        });
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let published = published.clone();
                let times = &times;
                let expected = &expected;
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    let mut distinct = 0usize;
                    loop {
                        let finished = done_ref.load(std::sync::atomic::Ordering::Acquire);
                        if let Some(observed) = published.latest() {
                            assert!(
                                observed.epoch >= last_epoch,
                                "epochs seen by one handle must be monotone \
                                 ({} after {last_epoch})",
                                observed.epoch
                            );
                            if observed.epoch > last_epoch {
                                last_epoch = observed.epoch;
                                distinct += 1;
                                let round = times
                                    .iter()
                                    .position(|&t| t == observed.snapshot.time)
                                    .expect("published snapshot stamped with a round time");
                                let bytes = serde_json::to_string(&*observed.snapshot).unwrap();
                                assert_eq!(
                                    bytes, expected[round],
                                    "epoch {} (round {round}) must be byte-identical \
                                     to the sequential snapshot of that round",
                                    observed.epoch
                                );
                            }
                        }
                        if finished {
                            break;
                        }
                    }
                    assert!(distinct >= 1, "reader never observed a committed epoch");
                    last_epoch
                })
            })
            .collect();
        let epochs: Vec<u64> = readers.into_iter().map(|r| r.join().unwrap()).collect();
        ingest.join().expect("ingest thread");
        epochs.into_iter().max().unwrap()
    });

    // The pipeline publishes the final round once the last chunk commits, so
    // every reader converges on it; this handle observes it too.
    let last = published.latest().expect("final epoch published");
    assert!(last.epoch >= final_epoch);
    assert_eq!(last.snapshot.time, SimTime::from_secs(79 * 5));
    assert_eq!(
        serde_json::to_string(&*last.snapshot).unwrap(),
        *expected.last().unwrap()
    );
}
