//! A minimal stand-in for `parking_lot` backed by `std::sync`. Provides the
//! poison-free `lock()` API the workspace uses; on a poisoned std mutex the
//! inner value is recovered, matching parking_lot's no-poisoning semantics.

/// Re-export of the std guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
