//! A minimal, self-contained stand-in for `serde_json`, paired with the
//! in-repo mini-serde. Renders [`serde::Value`] trees to JSON text and parses
//! JSON text back.
//!
//! Divergence from real `serde_json`: maps whose keys are not strings (e.g.
//! `BTreeMap<(String, String), f64>`) are rendered as arrays of `[key, value]`
//! pairs instead of erroring; the mini-serde's map deserializer accepts both
//! forms, so such maps round-trip.

use serde::{Deserialize, Serialize, Value};

/// JSON error (parse failure or type mismatch during deserialization).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            let all_string_keys = entries.iter().all(|(k, _)| matches!(k, Value::Str(_)));
            if all_string_keys {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(k, out);
                    out.push(':');
                    write_value(v, out);
                }
                out.push('}');
            } else {
                out.push('[');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_value(k, out);
                    out.push(',');
                    write_value(v, out);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // Mini-serde encodes non-finite floats as strings before this layer;
        // a raw non-finite here still needs valid JSON.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is the shortest representation that round-trips exactly.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON string into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<f64> = vec![1.0, 2.5, -3.125];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2.5,-3.125]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a\"b".to_string(), 1u64);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<String, u64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuple_keyed_maps_round_trip_as_pair_arrays() {
        let mut m = BTreeMap::new();
        m.insert(("node-1".to_string(), "node-2".to_string()), 0.066f64);
        let json = to_string(&m).unwrap();
        assert!(json.starts_with('['));
        let back: BTreeMap<(String, String), f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<Vec<f64>>("{").is_err());
        assert!(from_str::<Vec<f64>>("[1] junk").is_err());
    }
}
