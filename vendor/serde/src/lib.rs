//! A minimal, self-contained stand-in for `serde`, used because this build
//! environment has no network access to crates.io.
//!
//! Serialization goes through a self-describing [`Value`] tree:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds the
//! type from one. `#[derive(Serialize, Deserialize)]` is provided by the
//! sibling `serde_derive` crate and covers plain structs (named, tuple, unit)
//! and enums (unit, tuple and struct variants) without generics — exactly the
//! shapes this workspace uses. The `serde_json` vendor crate renders `Value`
//! trees to and from JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map. Keys are usually `Value::Str` but may be any value
    /// (e.g. tuple keys of a `BTreeMap<(String, String), f64>`).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// View as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// View as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// View as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as a number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Create an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to a self-describing value.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a self-describing value.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a struct field by name in a serialized map (derive helper).
pub fn get_field<'a>(map: &'a [(Value, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $ty),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($ty)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        (*self as f64).serialize_value()
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|n| n as f32)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else if self.is_nan() {
            Value::Str("NaN".to_string())
        } else if *self > 0.0 {
            Value::Str("inf".to_string())
        } else {
            Value::Str("-inf".to_string())
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence for array"))?;
        if items.len() != N {
            return Err(Error::custom("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::deserialize_value(item)?;
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        map_entries(v)?
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        map_entries(v)?
            .map(|(k, v)| Ok((K::deserialize_value(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

/// Iterate the `(key, value)` entries of a serialized map. Accepts both the
/// `Map` form and the `Seq`-of-pairs form `serde_json` emits for maps with
/// non-string keys.
fn map_entries(v: &Value) -> Result<Box<dyn Iterator<Item = (&Value, &Value)> + '_>, Error> {
    match v {
        Value::Map(entries) => Ok(Box::new(entries.iter().map(|(k, v)| (k, v)))),
        Value::Seq(items) => {
            for item in items {
                match item.as_seq() {
                    Some(pair) if pair.len() == 2 => {}
                    _ => return Err(Error::custom("expected [key, value] pair")),
                }
            }
            Ok(Box::new(items.iter().map(|item| {
                let pair = item.as_seq().expect("checked above");
                (&pair[0], &pair[1])
            })))
        }
        _ => Err(Error::custom("expected map")),
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected sequence for set")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_seq().ok_or_else(|| Error::custom("expected sequence for tuple"))?;
                let mut iter = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::deserialize_value(
                            iter.next().ok_or_else(|| Error::custom("tuple too short"))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            u64::deserialize_value(&42u64.serialize_value()).unwrap(),
            42
        );
        assert_eq!(
            f64::deserialize_value(&1.5f64.serialize_value()).unwrap(),
            1.5
        );
        assert!(f64::deserialize_value(&f64::NAN.serialize_value())
            .unwrap()
            .is_nan());
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let mut map = BTreeMap::new();
        map.insert(("a".to_string(), "b".to_string()), 1.5f64);
        let v = map.serialize_value();
        let back: BTreeMap<(String, String), f64> = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, map);

        let opt: Option<u32> = None;
        assert_eq!(
            <Option<u32>>::deserialize_value(&opt.serialize_value()).unwrap(),
            None
        );
    }
}
