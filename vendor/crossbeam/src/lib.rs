//! A minimal stand-in for `crossbeam`'s scoped threads and bounded channels:
//! scoped threads over `std::thread::scope` (stable since Rust 1.63), MPMC
//! channels over `Mutex` + `Condvar`.

/// Scoped thread spawning with the `crossbeam::thread` calling convention.
pub mod thread {
    use std::any::Any;

    /// Handle passed to scoped closures; mirrors `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this scope. The closure receives the
        /// scope handle again (crossbeam convention) so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Panics in spawned threads surface as `Err`, matching
    /// crossbeam's signature. (std::thread::scope resumes unwinding on child
    /// panics, so in practice a child panic propagates as a panic here; the
    /// Result shape is kept for call-site compatibility.)
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Bounded multi-producer multi-consumer channels with the
/// `crossbeam-channel` calling convention (`bounded`, blocking `send`/`recv`
/// returning `Err` on disconnection).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    struct State<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a bounded channel. Clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel. Clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create a bounded channel holding at most `capacity` in-flight
    /// messages. `send` blocks while the channel is full — the backpressure
    /// that keeps a fast producer from outrunning its consumers.
    ///
    /// **Divergence from real crossbeam:** `bounded(0)` is clamped to a
    /// capacity of 1 rather than implementing rendezvous semantics (where
    /// `send` would block until a receiver takes the message). Callers must
    /// not rely on `send` returning only after a paired `recv`.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Opportunistic attempts before parking on the condvar: parking a
    /// thread and waking it again costs on the order of 10 µs, while an
    /// active peer typically produces/consumes within a microsecond — a
    /// short spin keeps pipelined stages out of the kernel.
    const SPIN_ATTEMPTS: usize = 96;

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `msg`. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            for spin in 0..SPIN_ATTEMPTS {
                let mut state = self.shared.state.lock().expect("channel lock");
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < state.capacity {
                    state.queue.push_back(msg);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                drop(state);
                if spin % 16 == 15 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < state.capacity {
                    state.queue.push_back(msg);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message is available and dequeue it. Fails only when
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            for spin in 0..SPIN_ATTEMPTS {
                let mut state = self.shared.state.lock().expect("channel lock");
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                drop(state);
                if spin % 16 == 15 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn bounded_channel_delivers_in_order_across_threads() {
        let (tx, rx) = super::channel::bounded::<usize>(2);
        let received = super::thread::scope(|scope| {
            let consumer = scope.spawn(move |_| {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            consumer.join().unwrap()
        })
        .unwrap();
        assert_eq!(received, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn channel_reports_disconnects() {
        let (tx, rx) = super::channel::bounded::<u8>(1);
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(super::channel::RecvError));

        let (tx, rx) = super::channel::bounded::<u8>(1);
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert_eq!(tx.send(9), Err(super::channel::SendError(9)));
    }
}
