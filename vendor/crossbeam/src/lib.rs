//! A minimal stand-in for `crossbeam`'s scoped threads, implemented over
//! `std::thread::scope` (stable since Rust 1.63).

/// Scoped thread spawning with the `crossbeam::thread` calling convention.
pub mod thread {
    use std::any::Any;

    /// Handle passed to scoped closures; mirrors `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to this scope. The closure receives the
        /// scope handle again (crossbeam convention) so nested spawns work.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Panics in spawned threads surface as `Err`, matching
    /// crossbeam's signature. (std::thread::scope resumes unwinding on child
    /// panics, so in practice a child panic propagates as a panic here; the
    /// Result shape is kept for call-site compatibility.)
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_before_return() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
