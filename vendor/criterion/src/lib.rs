//! A minimal stand-in for `criterion`, offline. It keeps the criterion
//! calling convention (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`) and measures wall-clock
//! time per iteration with warmup + multiple sampling rounds, printing
//! `name: median ns/iter (min .. max)` to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    /// Number of timed sampling rounds per benchmark.
    pub sample_count: usize,
    /// Target wall-clock time per sampling round.
    pub round_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 10,
            round_target: Duration::from_millis(100),
        }
    }
}

/// Identifier for a parameterized benchmark, rendered as `name/param`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Create an id from a parameter value only.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{param}"))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    results_ns: Vec<f64>,
}

impl Bencher<'_> {
    /// Time `f`, storing per-iteration durations over several rounds.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup + calibration: how many iterations fit in the round target?
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        let iters_per_round = if first.is_zero() {
            1000
        } else {
            (self.criterion.round_target.as_secs_f64() / first.as_secs_f64()).clamp(1.0, 100_000.0)
                as usize
        };
        for _ in 0..self.criterion.sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_round {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.results_ns
                .push(elapsed.as_nanos() as f64 / iters_per_round as f64);
        }
    }
}

fn report(name: &str, mut results_ns: Vec<f64>) {
    if results_ns.is_empty() {
        println!("{name}: no measurements");
        return;
    }
    results_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = results_ns[results_ns.len() / 2];
    let min = results_ns[0];
    let max = results_ns[results_ns.len() - 1];
    println!("{name}: {median:.0} ns/iter (min {min:.0} .. max {max:.0})");
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            criterion: self,
            results_ns: Vec::new(),
        };
        f(&mut bencher);
        report(name, bencher.results_ns);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the number of sampling rounds (accepted for criterion
    /// compatibility; clamped to at least 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = n.clamp(2, 100);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            criterion: self.criterion,
            results_ns: Vec::new(),
        };
        f(&mut bencher);
        report(&full, bencher.results_ns);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op; kept for criterion compatibility).
    pub fn finish(&mut self) {}
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
