//! A minimal stand-in for `proptest`, offline. Supports the subset this
//! workspace uses: the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range
//! strategies over integers and floats, tuple strategies,
//! `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name and case index), so failures are reproducible run-to-run.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic RNG used to generate test cases.
pub mod test_runner {
    /// splitmix64-based generator, seeded per (test name, case index).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically for one case of one named test.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            seed ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            TestRng(seed)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{test_runner::TestRng, Strategy};

        /// Strategy producing `Vec`s of an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `vec(element, min..max)`: a vector with length drawn from the
        /// range and elements from the element strategy.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property; failure reports the case and stops the test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
}

/// Define property tests, proptest-style.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            @impl $cfg;
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            @impl $crate::ProptestConfig::default();
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
    (
        @impl $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), case, message);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -1.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec((0usize..4, 0.0f64..1.0), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|(a, _)| *a > 3).count(), 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::for_case("t", 1).next_u64();
        let b = TestRng::for_case("t", 1).next_u64();
        assert_eq!(a, b);
    }
}
