//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline mini-serde. No `syn`/`quote`: the item is parsed directly from the
//! `proc_macro` token stream. Supported shapes (everything this workspace
//! derives on): non-generic structs with named fields, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip any `#[...]` attribute groups starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip type tokens until a top-level comma (tracking `<...>` depth), leaving
/// `i` just past the comma (or at the end).
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            let c = p.as_char();
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' {
                angle_depth -= 1;
            } else if c == ',' && angle_depth == 0 {
                *i += 1;
                return;
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type_until_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g);
                i += 1;
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde_derive: generic type `{name}` is not supported by the offline mini-serde"
            );
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
                other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]`
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                                 ::serde::Serialize::serialize_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::serialize_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Map(vec![\
                                 (::serde::Value::Str(::std::string::String::from(\"{vname}\")), {payload})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![\
                                 (::serde::Value::Str(::std::string::String::from(\"{vname}\")), \
                                 ::serde::Value::Map(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 ::serde::get_field(map, \"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let map = v.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join("\n")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?,"))
                        .collect();
                    format!(
                        "let items = v.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected seq for struct {name}\"))?;\n\
                         if items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"wrong arity for struct {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(" ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize_value(payload)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_value(&items[{i}])?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected seq for {name}::{vname}\"))?;\n\
                                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong arity for {name}::{vname}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}},",
                                items.join(" ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         ::serde::get_field(inner, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let inner = payload.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}},",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str().unwrap_or_default() {{\n\
                                     {data}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"expected string or single-entry map for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
