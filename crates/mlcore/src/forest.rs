//! Random forests.
//!
//! Bootstrap-aggregated CART trees with per-split feature subsampling. Trees
//! are trained in parallel (one deterministic RNG stream per tree, ordered
//! collection) so the fitted forest is identical regardless of the number of
//! worker threads.

use crate::data::{Dataset, FeatureMatrix};
use crate::tree::{DecisionTree, DecisionTreeConfig, FlatTree};
use serde::{Deserialize, Serialize};
use simcore::parallel::parallel_map;
use simcore::rng::Rng;

/// Random forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: DecisionTreeConfig,
    /// Fraction of features considered per split (`sqrt(p)` when `None`).
    pub feature_fraction: Option<f64>,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_fraction: f64,
    /// Worker threads used for training (1 = sequential).
    pub workers: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 200,
            tree: DecisionTreeConfig {
                max_depth: 20,
                min_samples_split: 2,
                min_samples_leaf: 1,
                max_features: None,
            },
            // Telemetry datasets have a handful of strong job-size columns and
            // many weaker node-level columns; a generous per-split feature
            // fraction and deep trees let the forest keep discriminating
            // between candidate nodes after the job-size variance is explained.
            feature_fraction: Some(0.7),
            sample_fraction: 1.0,
            workers: simcore::parallel::default_workers(),
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
    n_features: usize,
    fitted: bool,
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(RandomForestConfig::default())
    }
}

impl RandomForest {
    /// Create an unfitted forest.
    pub fn new(config: RandomForestConfig) -> Self {
        RandomForest {
            config,
            trees: Vec::new(),
            n_features: 0,
            fitted: false,
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Number of trees in the fitted forest.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Number of feature columns the forest was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The fitted trees (flat form each; used by differential tests).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Fit the forest. `rng` provides the master seed; each tree derives an
    /// independent stream keyed by its index so the result is reproducible
    /// and independent of the worker count.
    pub fn fit(&mut self, data: &Dataset, rng: &mut Rng) {
        self.n_features = data.n_features();
        if data.is_empty() {
            self.trees.clear();
            self.fitted = true;
            return;
        }
        let n = data.len();
        let sample_size =
            ((n as f64) * self.config.sample_fraction.clamp(0.05, 1.0)).round() as usize;
        let sample_size = sample_size.max(1);
        let max_features = match self.config.feature_fraction {
            Some(frac) => {
                ((self.n_features as f64 * frac).round() as usize).clamp(1, self.n_features)
            }
            None => ((self.n_features as f64).sqrt().round() as usize).clamp(1, self.n_features),
        };
        let tree_config = DecisionTreeConfig {
            max_features: Some(max_features),
            ..self.config.tree
        };
        // A base RNG from the caller's stream; each tree gets `base.stream(i)`.
        let base = rng.split();
        let n_trees = self.config.n_trees.max(1);
        let workers = self.config.workers.max(1);
        self.trees = parallel_map(n_trees, workers, |tree_idx| {
            let mut tree_rng = base.stream(tree_idx as u64);
            // Bootstrap sample (with replacement).
            let indices: Vec<usize> = (0..sample_size)
                .map(|_| tree_rng.gen_range_usize(0, n))
                .collect();
            let mut tree = DecisionTree::new(tree_config);
            tree.fit_on_matrix(data.matrix(), data.targets(), &indices, &mut tree_rng);
            tree
        });
        self.fitted = true;
    }

    /// Predict one row: the mean of the trees' predictions.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict every row of a feature matrix into a reused output buffer.
    ///
    /// Batch accumulation with interleaved row walks: a decision-sized batch
    /// (≤ [`FlatTree::BLOCK`] rows — the scheduler's candidate set) fetches
    /// its row slices once and streams every tree through them, so the
    /// ensemble's node arrays are read exactly once per decision with up to
    /// a block's worth of dependent-load chains in flight; larger matrices
    /// run trees-outer over interleaved blocks. Additions happen in the same
    /// tree order as [`RandomForest::predict_row`], so results are
    /// bit-identical.
    pub fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(x.n_rows(), 0.0);
        if self.trees.is_empty() {
            return;
        }
        FlatTree::accumulate_ensemble(self.trees.iter().map(|t| (t.flat(), 1.0)), x, out);
        let scale = self.trees.len() as f64;
        for v in out.iter_mut() {
            *v /= scale;
        }
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(data.matrix(), &mut out);
        out
    }

    /// Mean impurity-based feature importance across trees (normalized).
    pub fn feature_importance(&self) -> Vec<f64> {
        if self.trees.is_empty() {
            return vec![0.0; self.n_features];
        }
        let mut total = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (acc, v) in total.iter_mut().zip(tree.feature_importance()) {
                *acc += v;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RegressionMetrics;

    fn friedman_like(n: usize, seed: u64) -> Dataset {
        // A nonlinear benchmark-style response with interactions and noise.
        let mut rng = Rng::seed_from_u64(seed);
        let names = (0..5).map(|i| format!("x{i}")).collect();
        let mut d = Dataset::new(names);
        for _ in 0..n {
            let x: Vec<f64> = (0..5).map(|_| rng.uniform(0.0, 1.0)).collect();
            let y = 10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                + 20.0 * (x[2] - 0.5).powi(2)
                + 10.0 * x[3]
                + 5.0 * x[4]
                + rng.normal(0.0, 0.3);
            d.push(x, y).unwrap();
        }
        d
    }

    fn small_config(n_trees: usize, workers: usize) -> RandomForestConfig {
        RandomForestConfig {
            n_trees,
            workers,
            ..Default::default()
        }
    }

    #[test]
    fn learns_nonlinear_response() {
        let data = friedman_like(800, 1);
        let mut rng = Rng::seed_from_u64(2);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        let mut forest = RandomForest::new(small_config(60, 4));
        assert!(!forest.is_fitted());
        forest.fit(&train, &mut rng);
        assert!(forest.is_fitted());
        assert_eq!(forest.tree_count(), 60);
        let m = RegressionMetrics::compute(&forest.predict(&test), test.targets());
        assert!(m.r2 > 0.85, "r2 {}", m.r2);
    }

    #[test]
    fn forest_beats_single_tree_on_held_out_data() {
        let data = friedman_like(600, 3);
        let mut rng = Rng::seed_from_u64(4);
        let (train, test) = data.train_test_split(0.3, &mut rng);
        let mut tree = DecisionTree::default();
        tree.fit(&train, &mut rng);
        let tree_m = RegressionMetrics::compute(&tree.predict(&test), test.targets());
        let mut forest = RandomForest::new(small_config(80, 4));
        forest.fit(&train, &mut rng);
        let forest_m = RegressionMetrics::compute(&forest.predict(&test), test.targets());
        assert!(
            forest_m.rmse <= tree_m.rmse,
            "forest rmse {} should not exceed single-tree rmse {}",
            forest_m.rmse,
            tree_m.rmse
        );
    }

    #[test]
    fn parallel_and_sequential_training_agree() {
        let data = friedman_like(300, 5);
        let mut rng_a = Rng::seed_from_u64(7);
        let mut rng_b = Rng::seed_from_u64(7);
        let mut sequential = RandomForest::new(small_config(16, 1));
        let mut parallel = RandomForest::new(small_config(16, 8));
        sequential.fit(&data, &mut rng_a);
        parallel.fit(&data, &mut rng_b);
        let probe = data.row(0);
        assert_eq!(sequential.predict_row(probe), parallel.predict_row(probe));
        assert_eq!(sequential.predict(&data), parallel.predict(&data));
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_per_row() {
        let data = friedman_like(250, 21);
        let mut rng = Rng::seed_from_u64(22);
        let mut forest = RandomForest::new(small_config(24, 4));
        forest.fit(&data, &mut rng);
        let mut batch = Vec::new();
        forest.predict_into(data.matrix(), &mut batch);
        assert_eq!(batch.len(), data.len());
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, forest.predict_row(data.row(i)), "row {i}");
        }
        // Empty batch clears the output.
        forest.predict_into(&crate::data::FeatureMatrix::new(5), &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn empty_and_unfitted_predict_zero() {
        let unfitted = RandomForest::default();
        assert_eq!(unfitted.predict_row(&[1.0, 2.0]), 0.0);
        let mut forest = RandomForest::new(small_config(4, 1));
        let empty = Dataset::new(vec!["x".into()]);
        let mut rng = Rng::seed_from_u64(1);
        forest.fit(&empty, &mut rng);
        assert!(forest.is_fitted());
        assert_eq!(forest.predict_row(&[1.0]), 0.0);
        assert_eq!(forest.feature_importance(), vec![0.0]);
    }

    #[test]
    fn importance_highlights_informative_features() {
        // Only x0 and x3 matter strongly in this response.
        let mut rng = Rng::seed_from_u64(11);
        let mut d = Dataset::new(vec![
            "a".into(),
            "noise1".into(),
            "noise2".into(),
            "b".into(),
        ]);
        for _ in 0..500 {
            let a = rng.uniform(0.0, 1.0);
            let n1 = rng.uniform(0.0, 1.0);
            let n2 = rng.uniform(0.0, 1.0);
            let b = rng.uniform(0.0, 1.0);
            d.push(vec![a, n1, n2, b], 30.0 * a + 10.0 * b).unwrap();
        }
        let mut forest = RandomForest::new(small_config(40, 4));
        forest.fit(&d, &mut rng);
        let imp = forest.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "{imp:?}");
        assert!(imp[3] > imp[1] && imp[3] > imp[2], "{imp:?}");
        assert!(imp[0] > imp[3], "the stronger signal dominates: {imp:?}");
    }

    #[test]
    fn sample_fraction_and_feature_fraction_are_clamped() {
        let data = friedman_like(100, 13);
        let mut rng = Rng::seed_from_u64(14);
        let mut forest = RandomForest::new(RandomForestConfig {
            n_trees: 5,
            sample_fraction: 0.0,         // clamps to 0.05
            feature_fraction: Some(10.0), // clamps to all features
            workers: 2,
            ..Default::default()
        });
        forest.fit(&data, &mut rng);
        assert_eq!(forest.tree_count(), 5);
        // Still produces finite predictions.
        assert!(forest.predict_row(data.row(0)).is_finite());
    }
}
