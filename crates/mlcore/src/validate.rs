//! Model validation: held-out evaluation and k-fold cross-validation.

use crate::data::{Dataset, SplitIndices};
use crate::metrics::RegressionMetrics;
use crate::model::{ModelConfig, ModelKind, Regressor, TrainedModel};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Evaluate an already fitted model on a dataset.
pub fn evaluate_on<R: Regressor + ?Sized>(model: &R, data: &Dataset) -> RegressionMetrics {
    RegressionMetrics::compute(&model.predict(data), data.targets())
}

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidationReport {
    /// Which model family was evaluated.
    pub kind: ModelKind,
    /// Per-fold metrics (on each fold's held-out portion).
    pub fold_metrics: Vec<RegressionMetrics>,
}

impl CrossValidationReport {
    /// Mean MAE across folds.
    pub fn mean_mae(&self) -> f64 {
        mean(self.fold_metrics.iter().map(|m| m.mae))
    }

    /// Mean RMSE across folds.
    pub fn mean_rmse(&self) -> f64 {
        mean(self.fold_metrics.iter().map(|m| m.rmse))
    }

    /// Mean R² across folds.
    pub fn mean_r2(&self) -> f64 {
        mean(self.fold_metrics.iter().map(|m| m.r2))
    }

    /// Mean MAPE across folds.
    pub fn mean_mape(&self) -> f64 {
        mean(self.fold_metrics.iter().map(|m| m.mape))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Run k-fold cross-validation of one model family.
pub fn cross_validate(
    kind: ModelKind,
    config: &ModelConfig,
    data: &Dataset,
    k: usize,
    rng: &mut Rng,
) -> CrossValidationReport {
    let folds = SplitIndices::k_folds(data.len(), k, rng);
    let fold_metrics = folds
        .iter()
        .map(|fold| {
            let train = data.subset(&fold.train);
            let test = data.subset(&fold.test);
            let model = TrainedModel::train(kind, config, &train, rng);
            evaluate_on(&model, &test)
        })
        .collect();
    CrossValidationReport { kind, fold_metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;
    use crate::gbdt::GradientBoostingConfig;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x1".into(), "x2".into()]);
        for _ in 0..n {
            let x1 = rng.uniform(0.0, 5.0);
            let x2 = rng.uniform(0.0, 5.0);
            d.push(vec![x1, x2], 3.0 * x1 - x2 + rng.normal(0.0, 0.1))
                .unwrap();
        }
        d
    }

    fn fast_config() -> ModelConfig {
        ModelConfig {
            forest: RandomForestConfig {
                n_trees: 20,
                workers: 2,
                ..Default::default()
            },
            gbdt: GradientBoostingConfig {
                n_rounds: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn cross_validation_produces_k_folds_of_metrics() {
        let data = dataset(300, 1);
        let mut rng = Rng::seed_from_u64(2);
        let report = cross_validate(ModelKind::Linear, &fast_config(), &data, 5, &mut rng);
        assert_eq!(report.kind, ModelKind::Linear);
        assert_eq!(report.fold_metrics.len(), 5);
        assert!(report.mean_r2() > 0.95, "r2 {}", report.mean_r2());
        assert!(report.mean_rmse() < 0.5);
        assert!(report.mean_mae() <= report.mean_rmse());
        assert!(report.mean_mape() >= 0.0);
    }

    #[test]
    fn all_model_kinds_cross_validate() {
        let data = dataset(200, 3);
        let mut rng = Rng::seed_from_u64(4);
        for kind in ModelKind::ALL {
            let report = cross_validate(kind, &fast_config(), &data, 3, &mut rng);
            assert_eq!(report.fold_metrics.len(), 3);
            assert!(report.mean_r2() > 0.7, "{kind} r2 {}", report.mean_r2());
        }
    }

    #[test]
    fn evaluate_on_matches_direct_computation() {
        let data = dataset(150, 5);
        let mut rng = Rng::seed_from_u64(6);
        let model = TrainedModel::train(ModelKind::Linear, &fast_config(), &data, &mut rng);
        let via_helper = evaluate_on(&model, &data);
        let direct = RegressionMetrics::compute(&model.predict(&data), data.targets());
        assert_eq!(via_helper, direct);
    }

    #[test]
    fn empty_report_means_are_zero() {
        let report = CrossValidationReport {
            kind: ModelKind::Linear,
            fold_metrics: vec![],
        };
        assert_eq!(report.mean_mae(), 0.0);
        assert_eq!(report.mean_rmse(), 0.0);
        assert_eq!(report.mean_r2(), 0.0);
    }
}
