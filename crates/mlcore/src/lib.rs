//! # mlcore — from-scratch supervised learning for tabular telemetry data
//!
//! The paper trains three regression models on ~3600 rows of telemetry + job
//! configuration features to predict job completion time: **linear
//! regression**, **random forest** and **gradient-boosted decision trees
//! (XGBoost)**. This crate implements all three (and the infrastructure
//! around them) with no external ML dependency:
//!
//! * [`data`] — the [`data::Dataset`] container over a contiguous row-major
//!   [`data::FeatureMatrix`], train/test splitting, k-fold indices and
//!   feature standardization.
//! * [`metrics`] — MAE, RMSE, R², MAPE and ranking helpers.
//! * [`linear`] — ordinary least squares / ridge regression solved by normal
//!   equations with Gaussian elimination and optional standardization.
//! * [`tree`] — CART regression trees (variance-reduction splits, depth and
//!   leaf-size controls, optional per-split feature subsampling), stored as
//!   flat struct-of-arrays [`tree::FlatTree`]s with batch-prediction kernels.
//! * [`forest`] — random forests: bootstrap aggregation of CART trees with
//!   feature subsampling, trained in parallel with deterministic per-tree
//!   seeds, plus impurity-based feature importance.
//! * [`gbdt`] — gradient-boosted trees with squared loss, shrinkage, row
//!   subsampling and early stopping — the role XGBoost plays in the paper.
//! * [`model`] — the [`model::Regressor`] trait, a serializable
//!   [`model::TrainedModel`] wrapper and a [`model::ModelKind`] factory so the
//!   scheduler can swap model families via configuration.
//! * [`validate`] — train/test evaluation and k-fold cross-validation.
//! * [`importance`] — permutation feature importance (model-agnostic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod forest;
pub mod gbdt;
pub mod importance;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod tree;
pub mod validate;

pub use data::{Dataset, FeatureMatrix, Scaler, SplitIndices};
pub use forest::{RandomForest, RandomForestConfig};
pub use gbdt::{GradientBoosting, GradientBoostingConfig};
pub use importance::permutation_importance;
pub use linear::{LinearRegression, LinearRegressionConfig};
pub use metrics::RegressionMetrics;
pub use model::{ModelConfig, ModelKind, Regressor, TrainedModel};
pub use tree::{DecisionTree, DecisionTreeConfig, FlatTree, TreeNode};
pub use validate::{cross_validate, evaluate_on, CrossValidationReport};
