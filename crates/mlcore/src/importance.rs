//! Model-agnostic permutation feature importance.
//!
//! For each feature column, shuffle it across the evaluation set and measure
//! how much the model's error grows. Features the model relies on produce a
//! large increase; irrelevant features produce none. The paper highlights
//! interpretable feature importance as one benefit of tree ensembles; this
//! gives the same signal for *any* [`Regressor`].

use crate::data::Dataset;
use crate::metrics::RegressionMetrics;
use crate::model::Regressor;
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature name.
    pub feature: String,
    /// Increase in RMSE when the feature is permuted (averaged over repeats).
    pub rmse_increase: f64,
}

/// Compute permutation importance of every feature of `data` for `model`.
///
/// `repeats` controls how many independent permutations are averaged per
/// feature. The result is sorted by decreasing importance.
pub fn permutation_importance<R: Regressor + ?Sized>(
    model: &R,
    data: &Dataset,
    repeats: usize,
    rng: &mut Rng,
) -> Vec<FeatureImportance> {
    if data.is_empty() {
        return Vec::new();
    }
    let baseline = RegressionMetrics::compute(&model.predict(data), data.targets()).rmse;
    let repeats = repeats.max(1);
    // One mutable copy of the feature matrix, reused across every
    // (column, repeat): the permuted column is written in place, the batch
    // prediction streams the contiguous rows, and the column is restored
    // afterwards — no per-row clone anywhere.
    let mut scratch = data.matrix().clone();
    let mut predictions: Vec<f64> = Vec::with_capacity(data.len());
    let mut permuted_values: Vec<f64> = Vec::with_capacity(data.len());
    let mut results: Vec<FeatureImportance> = data
        .feature_names()
        .iter()
        .enumerate()
        .map(|(col, name)| {
            let mut total_increase = 0.0;
            for _ in 0..repeats {
                // Permute the column.
                permuted_values.clear();
                permuted_values.extend((0..data.len()).map(|r| data.matrix().get(r, col)));
                rng.shuffle(&mut permuted_values);
                for (r, &v) in permuted_values.iter().enumerate() {
                    scratch.set(r, col, v);
                }
                model.predict_into(&scratch, &mut predictions);
                let rmse = RegressionMetrics::compute(&predictions, data.targets()).rmse;
                total_increase += (rmse - baseline).max(0.0);
            }
            // Restore the column before moving on.
            for r in 0..data.len() {
                scratch.set(r, col, data.matrix().get(r, col));
            }
            FeatureImportance {
                feature: name.clone(),
                rmse_increase: total_increase / repeats as f64,
            }
        })
        .collect();
    results.sort_by(|a, b| {
        b.rmse_increase
            .partial_cmp(&a.rmse_increase)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.feature.cmp(&b.feature))
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};
    use crate::linear::LinearRegression;

    fn dataset(seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["signal".into(), "weak".into(), "noise".into()]);
        for _ in 0..400 {
            let s = rng.uniform(0.0, 10.0);
            let w = rng.uniform(0.0, 10.0);
            let n = rng.uniform(0.0, 10.0);
            d.push(vec![s, w, n], 10.0 * s + 1.0 * w + rng.normal(0.0, 0.1))
                .unwrap();
        }
        d
    }

    #[test]
    fn linear_model_importance_ranks_signal_first() {
        let data = dataset(1);
        let mut model = LinearRegression::default();
        model.fit(&data).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        let imp = permutation_importance(&model, &data, 3, &mut rng);
        assert_eq!(imp.len(), 3);
        assert_eq!(imp[0].feature, "signal");
        assert_eq!(imp[1].feature, "weak");
        assert_eq!(imp[2].feature, "noise");
        assert!(imp[0].rmse_increase > imp[1].rmse_increase);
        assert!(imp[2].rmse_increase < 0.5);
    }

    #[test]
    fn forest_importance_also_identifies_signal() {
        let data = dataset(3);
        let mut rng = Rng::seed_from_u64(4);
        let mut forest = RandomForest::new(RandomForestConfig {
            n_trees: 30,
            workers: 2,
            ..Default::default()
        });
        forest.fit(&data, &mut rng);
        let imp = permutation_importance(&forest, &data, 2, &mut rng);
        assert_eq!(imp[0].feature, "signal");
    }

    #[test]
    fn empty_dataset_gives_no_importance() {
        let model = LinearRegression::default();
        let mut rng = Rng::seed_from_u64(5);
        let imp = permutation_importance(&model, &Dataset::new(vec!["x".into()]), 3, &mut rng);
        assert!(imp.is_empty());
    }

    #[test]
    fn importance_is_deterministic_per_seed() {
        let data = dataset(6);
        let mut model = LinearRegression::default();
        model.fit(&data).unwrap();
        let mut rng_a = Rng::seed_from_u64(7);
        let mut rng_b = Rng::seed_from_u64(7);
        let a = permutation_importance(&model, &data, 2, &mut rng_a);
        let b = permutation_importance(&model, &data, 2, &mut rng_b);
        assert_eq!(a, b);
    }
}
