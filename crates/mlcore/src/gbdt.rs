//! Gradient-boosted decision trees (squared loss).
//!
//! This plays the role XGBoost plays in the paper: an additive ensemble of
//! shallow CART trees fitted to the residuals of the running prediction, with
//! shrinkage (learning rate), row subsampling and optional early stopping on a
//! validation fraction. With squared loss the negative gradient *is* the
//! residual, so each boosting round fits a regression tree to the residuals.

use crate::data::{Dataset, FeatureMatrix};
use crate::tree::{DecisionTree, DecisionTreeConfig, FlatTree};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Gradient boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingConfig {
    /// Maximum number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree growth limits (kept shallow).
    pub tree: DecisionTreeConfig,
    /// Fraction of rows sampled (without replacement) per round.
    pub subsample: f64,
    /// Fraction of rows held out for early stopping (0 disables it).
    pub validation_fraction: f64,
    /// Stop when the validation RMSE has not improved for this many rounds.
    pub early_stopping_rounds: usize,
}

impl Default for GradientBoostingConfig {
    fn default() -> Self {
        GradientBoostingConfig {
            n_rounds: 300,
            learning_rate: 0.1,
            tree: DecisionTreeConfig {
                max_depth: 4,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None,
            },
            subsample: 0.8,
            validation_fraction: 0.1,
            early_stopping_rounds: 25,
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    config: GradientBoostingConfig,
    base_prediction: f64,
    trees: Vec<DecisionTree>,
    n_features: usize,
    fitted: bool,
}

impl Default for GradientBoosting {
    fn default() -> Self {
        Self::new(GradientBoostingConfig::default())
    }
}

impl GradientBoosting {
    /// Create an unfitted model.
    pub fn new(config: GradientBoostingConfig) -> Self {
        GradientBoosting {
            config,
            base_prediction: 0.0,
            trees: Vec::new(),
            n_features: 0,
            fitted: false,
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Number of boosting rounds actually used (after early stopping).
    pub fn rounds_used(&self) -> usize {
        self.trees.len()
    }

    /// Number of feature columns the ensemble was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The fitted per-round trees (used by differential tests).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The constant base prediction (training-target mean).
    pub fn base_prediction(&self) -> f64 {
        self.base_prediction
    }

    /// The shrinkage each tree's contribution is scaled by.
    pub fn learning_rate(&self) -> f64 {
        self.config.learning_rate
    }

    /// Fit the ensemble.
    pub fn fit(&mut self, data: &Dataset, rng: &mut Rng) {
        self.trees.clear();
        self.n_features = data.n_features();
        if data.is_empty() {
            self.base_prediction = 0.0;
            self.fitted = true;
            return;
        }

        // Optional validation holdout for early stopping.
        let use_validation = self.config.validation_fraction > 0.0
            && data.len() >= 20
            && self.config.early_stopping_rounds > 0;
        let (train, valid) = if use_validation {
            let (t, v) = data.train_test_split(self.config.validation_fraction, rng);
            (t, Some(v))
        } else {
            (data.clone(), None)
        };

        self.base_prediction = train.target_mean();
        let n = train.len();
        let mut predictions = vec![self.base_prediction; n];
        let mut valid_predictions: Vec<f64> = valid
            .as_ref()
            .map(|v| vec![self.base_prediction; v.len()])
            .unwrap_or_default();
        let mut best_valid_rmse = f64::INFINITY;
        let mut rounds_since_improvement = 0usize;

        // Round-reused scratch: residual targets plus batch-prediction
        // buffers. Each round refits the *same* contiguous feature matrix
        // against fresh residuals — no per-round row-of-Vecs copy.
        let mut residuals = vec![0.0; n];
        let mut tree_predictions: Vec<f64> = Vec::with_capacity(n);
        let mut valid_tree_predictions: Vec<f64> = Vec::new();
        for _ in 0..self.config.n_rounds.max(1) {
            // Residuals = negative gradient of squared loss.
            for (residual, (&y, &p)) in residuals
                .iter_mut()
                .zip(train.targets().iter().zip(&predictions))
            {
                *residual = y - p;
            }
            // Row subsample without replacement.
            let sample_size = ((n as f64) * self.config.subsample.clamp(0.1, 1.0)).round() as usize;
            let sample: Vec<usize> = rng.sample_indices(n, sample_size.max(1));

            let mut tree = DecisionTree::new(self.config.tree);
            tree.fit_on_matrix(train.matrix(), &residuals, &sample, rng);

            // Update running predictions (batch walk, trees-outer).
            let lr = self.config.learning_rate;
            tree.predict_into(train.matrix(), &mut tree_predictions);
            for (p, &t) in predictions.iter_mut().zip(&tree_predictions) {
                *p += lr * t;
            }
            if let Some(valid) = &valid {
                tree.predict_into(valid.matrix(), &mut valid_tree_predictions);
                for (p, &t) in valid_predictions.iter_mut().zip(&valid_tree_predictions) {
                    *p += lr * t;
                }
            }
            self.trees.push(tree);

            // Early stopping on validation RMSE.
            if let Some(valid) = &valid {
                let rmse = {
                    let mut sq = 0.0;
                    for (p, &y) in valid_predictions.iter().zip(valid.targets()) {
                        sq += (p - y) * (p - y);
                    }
                    (sq / valid.len() as f64).sqrt()
                };
                if rmse + 1e-9 < best_valid_rmse {
                    best_valid_rmse = rmse;
                    rounds_since_improvement = 0;
                } else {
                    rounds_since_improvement += 1;
                    if rounds_since_improvement >= self.config.early_stopping_rounds {
                        break;
                    }
                }
            }
        }
        self.fitted = true;
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut pred = self.base_prediction;
        for tree in &self.trees {
            pred += self.config.learning_rate * tree.predict_row(row);
        }
        pred
    }

    /// Predict every row of a feature matrix into a reused output buffer.
    ///
    /// Batch accumulation in the same round order as
    /// [`GradientBoosting::predict_row`], so results are bit-identical:
    /// decision-sized batches (≤ [`FlatTree::BLOCK`] rows) fetch their row
    /// slices once and stream every round's tree through them with
    /// interleaved walks; larger matrices run trees-outer over blocks.
    pub fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(x.n_rows(), self.base_prediction);
        FlatTree::accumulate_ensemble(
            self.trees
                .iter()
                .map(|t| (t.flat(), self.config.learning_rate)),
            x,
            out,
        );
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(data.matrix(), &mut out);
        out
    }

    /// Aggregate impurity-based feature importance across rounds (normalized).
    pub fn feature_importance(&self) -> Vec<f64> {
        let Some(first) = self.trees.first() else {
            return Vec::new();
        };
        let width = first.feature_importance().len();
        let mut total = vec![0.0; width];
        for tree in &self.trees {
            for (acc, v) in total.iter_mut().zip(tree.feature_importance()) {
                *acc += v;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;
    use crate::metrics::RegressionMetrics;

    fn nonlinear(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x1".into(), "x2".into(), "x3".into()]);
        for _ in 0..n {
            let x1 = rng.uniform(0.0, 1.0);
            let x2 = rng.uniform(0.0, 1.0);
            let x3 = rng.uniform(0.0, 1.0);
            let y =
                10.0 * (x1 * x2).sqrt() + if x3 > 0.5 { 20.0 } else { 0.0 } + rng.normal(0.0, 0.3);
            d.push(vec![x1, x2, x3], y).unwrap();
        }
        d
    }

    fn fast_config() -> GradientBoostingConfig {
        GradientBoostingConfig {
            n_rounds: 120,
            ..Default::default()
        }
    }

    #[test]
    fn learns_nonlinear_response_well() {
        let data = nonlinear(800, 1);
        let mut rng = Rng::seed_from_u64(2);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        let mut model = GradientBoosting::new(fast_config());
        assert!(!model.is_fitted());
        model.fit(&train, &mut rng);
        assert!(model.is_fitted());
        assert!(model.rounds_used() > 0);
        let m = RegressionMetrics::compute(&model.predict(&test), test.targets());
        assert!(m.r2 > 0.9, "r2 {}", m.r2);
    }

    #[test]
    fn outperforms_linear_regression_on_nonlinear_data() {
        let data = nonlinear(800, 3);
        let mut rng = Rng::seed_from_u64(4);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        let mut linear = LinearRegression::default();
        linear.fit(&train).unwrap();
        let linear_m = RegressionMetrics::compute(&linear.predict(&test), test.targets());
        let mut gbdt = GradientBoosting::new(fast_config());
        gbdt.fit(&train, &mut rng);
        let gbdt_m = RegressionMetrics::compute(&gbdt.predict(&test), test.targets());
        assert!(
            gbdt_m.rmse < linear_m.rmse,
            "gbdt rmse {} should beat linear {}",
            gbdt_m.rmse,
            linear_m.rmse
        );
    }

    #[test]
    fn early_stopping_limits_rounds() {
        // Pure-noise targets: validation error cannot improve, so boosting
        // must stop long before the configured round count.
        let mut rng = Rng::seed_from_u64(5);
        let mut d = Dataset::new(vec!["x".into()]);
        for _ in 0..300 {
            d.push(vec![rng.uniform(0.0, 1.0)], rng.normal(0.0, 1.0))
                .unwrap();
        }
        let mut model = GradientBoosting::new(GradientBoostingConfig {
            n_rounds: 500,
            early_stopping_rounds: 10,
            ..Default::default()
        });
        model.fit(&d, &mut rng);
        assert!(model.rounds_used() < 200, "rounds {}", model.rounds_used());
    }

    #[test]
    fn disabled_early_stopping_uses_all_rounds() {
        let data = nonlinear(100, 6);
        let mut rng = Rng::seed_from_u64(7);
        let mut model = GradientBoosting::new(GradientBoostingConfig {
            n_rounds: 30,
            validation_fraction: 0.0,
            ..Default::default()
        });
        model.fit(&data, &mut rng);
        assert_eq!(model.rounds_used(), 30);
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_per_row() {
        let data = nonlinear(300, 15);
        let mut rng = Rng::seed_from_u64(16);
        let mut model = GradientBoosting::new(fast_config());
        model.fit(&data, &mut rng);
        let mut batch = Vec::new();
        model.predict_into(data.matrix(), &mut batch);
        assert_eq!(batch.len(), data.len());
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, model.predict_row(data.row(i)), "row {i}");
        }
        // Empty batch clears the output.
        model.predict_into(&FeatureMatrix::new(3), &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn empty_dataset_predicts_zero() {
        let mut model = GradientBoosting::default();
        let mut rng = Rng::seed_from_u64(8);
        model.fit(&Dataset::new(vec!["x".into()]), &mut rng);
        assert!(model.is_fitted());
        assert_eq!(model.predict_row(&[1.0]), 0.0);
        assert_eq!(model.rounds_used(), 0);
        assert!(model.feature_importance().is_empty());
    }

    #[test]
    fn small_dataset_skips_validation_split() {
        let data = nonlinear(10, 9);
        let mut rng = Rng::seed_from_u64(10);
        let mut model = GradientBoosting::new(GradientBoostingConfig {
            n_rounds: 20,
            ..Default::default()
        });
        model.fit(&data, &mut rng);
        assert_eq!(
            model.rounds_used(),
            20,
            "too few rows for a validation split"
        );
        let m = RegressionMetrics::compute(&model.predict(&data), data.targets());
        assert!(m.r2 > 0.8);
    }

    #[test]
    fn importance_sums_to_one_and_flags_signal() {
        let mut rng = Rng::seed_from_u64(11);
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for _ in 0..400 {
            let s = rng.uniform(0.0, 1.0);
            let n = rng.uniform(0.0, 1.0);
            d.push(vec![s, n], (s * 10.0).powi(2)).unwrap();
        }
        let mut model = GradientBoosting::new(fast_config());
        model.fit(&d, &mut rng);
        let imp = model.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.9, "{imp:?}");
    }

    #[test]
    fn deterministic_given_same_seed() {
        let data = nonlinear(200, 12);
        let mut m1 = GradientBoosting::new(GradientBoostingConfig {
            n_rounds: 25,
            ..Default::default()
        });
        let mut m2 = m1.clone();
        let mut r1 = Rng::seed_from_u64(42);
        let mut r2 = Rng::seed_from_u64(42);
        m1.fit(&data, &mut r1);
        m2.fit(&data, &mut r2);
        assert_eq!(m1.predict(&data), m2.predict(&data));
    }
}
