//! The unified model interface the scheduler plugs into.
//!
//! The paper evaluates three model families. [`ModelKind`] names them,
//! [`TrainedModel`] wraps a fitted instance behind a single enum (so it can be
//! serialized to disk and reloaded by a long-running scheduler process), and
//! [`Regressor`] is the minimal object-safe interface the decision module
//! needs: predict a completion time for one feature vector.

use crate::data::{Dataset, FeatureMatrix};
use crate::forest::{RandomForest, RandomForestConfig};
use crate::gbdt::{GradientBoosting, GradientBoostingConfig};
use crate::linear::{LinearRegression, LinearRegressionConfig};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use std::fmt;
use std::str::FromStr;

/// A fitted regression model usable for prediction. Batch-first: the
/// scheduler hands a whole candidate batch through
/// [`Regressor::predict_into`] in one call; [`Regressor::predict_row`]
/// remains for single-sample callers.
pub trait Regressor {
    /// Predict the target for one feature row.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predict every row of a feature matrix into a reused output buffer
    /// (cleared and refilled). The default walks rows one at a time; the
    /// model families override it with their cache-friendly batch kernels.
    fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.extend(x.rows().map(|row| self.predict_row(row)));
    }

    /// Predict the targets for every row of a dataset.
    fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(data.matrix(), &mut out);
        out
    }

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

impl Regressor for LinearRegression {
    fn predict_row(&self, row: &[f64]) -> f64 {
        LinearRegression::predict_row(self, row)
    }
    fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        LinearRegression::predict_into(self, x, out)
    }
    fn name(&self) -> &'static str {
        "linear-regression"
    }
}

impl Regressor for RandomForest {
    fn predict_row(&self, row: &[f64]) -> f64 {
        RandomForest::predict_row(self, row)
    }
    fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        RandomForest::predict_into(self, x, out)
    }
    fn name(&self) -> &'static str {
        "random-forest"
    }
}

impl Regressor for GradientBoosting {
    fn predict_row(&self, row: &[f64]) -> f64 {
        GradientBoosting::predict_row(self, row)
    }
    fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        GradientBoosting::predict_into(self, x, out)
    }
    fn name(&self) -> &'static str {
        "gradient-boosting"
    }
}

/// The model families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Ordinary least squares / ridge linear regression.
    Linear,
    /// Random forest.
    RandomForest,
    /// Gradient-boosted trees (the XGBoost stand-in).
    GradientBoosting,
}

impl ModelKind {
    /// All model kinds, in the order the paper reports them.
    pub const ALL: [ModelKind; 3] = [
        ModelKind::Linear,
        ModelKind::GradientBoosting,
        ModelKind::RandomForest,
    ];

    /// Display name matching the paper's Table 4 rows.
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelKind::Linear => "Linear Regression",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::GradientBoosting => "XGBoost",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for ModelKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
            "linear" | "linearregression" | "lr" | "ols" | "ridge" => Ok(ModelKind::Linear),
            "randomforest" | "rf" | "forest" => Ok(ModelKind::RandomForest),
            "gradientboosting" | "gbdt" | "xgboost" | "xgb" | "boosting" => {
                Ok(ModelKind::GradientBoosting)
            }
            other => Err(format!("unknown model kind: {other}")),
        }
    }
}

/// Hyperparameters for every model family (only the selected family's entry
/// is used at fit time).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Linear regression settings.
    pub linear: LinearRegressionConfig,
    /// Random forest settings.
    pub forest: RandomForestConfig,
    /// Gradient boosting settings.
    pub gbdt: GradientBoostingConfig,
}

/// A fitted model of any family, with the feature schema it was trained on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TrainedModel {
    /// A fitted linear regression.
    Linear(LinearRegression),
    /// A fitted random forest.
    RandomForest(RandomForest),
    /// A fitted gradient-boosting ensemble.
    GradientBoosting(GradientBoosting),
}

impl TrainedModel {
    /// Train a model of the requested family on `data`.
    pub fn train(
        kind: ModelKind,
        config: &ModelConfig,
        data: &Dataset,
        rng: &mut Rng,
    ) -> TrainedModel {
        match kind {
            ModelKind::Linear => {
                let mut model = LinearRegression::new(config.linear);
                // An empty dataset is the only error path; fall back to the
                // unfitted model (predicts 0) rather than poisoning callers.
                let _ = model.fit(data);
                TrainedModel::Linear(model)
            }
            ModelKind::RandomForest => {
                let mut model = RandomForest::new(config.forest);
                model.fit(data, rng);
                TrainedModel::RandomForest(model)
            }
            ModelKind::GradientBoosting => {
                let mut model = GradientBoosting::new(config.gbdt);
                model.fit(data, rng);
                TrainedModel::GradientBoosting(model)
            }
        }
    }

    /// Which family this model belongs to.
    pub fn kind(&self) -> ModelKind {
        match self {
            TrainedModel::Linear(_) => ModelKind::Linear,
            TrainedModel::RandomForest(_) => ModelKind::RandomForest,
            TrainedModel::GradientBoosting(_) => ModelKind::GradientBoosting,
        }
    }

    /// Number of feature columns the model requires, or `None` when the
    /// model was never (successfully) fitted. Boundary code uses this to
    /// reject feature schemas whose width does not match the model. For the
    /// ensembles this is the max over the member trees' own widths (each
    /// validated against its splits on deserialize), so a tampered archive
    /// cannot under-declare the ensemble width and panic the walk later.
    pub fn n_features(&self) -> Option<usize> {
        match self {
            TrainedModel::Linear(m) => m.is_fitted().then(|| m.weights().len()),
            TrainedModel::RandomForest(m) => m.is_fitted().then(|| {
                m.trees()
                    .iter()
                    .map(|t| t.n_features())
                    .fold(m.n_features(), usize::max)
            }),
            TrainedModel::GradientBoosting(m) => m.is_fitted().then(|| {
                m.trees()
                    .iter()
                    .map(|t| t.n_features())
                    .fold(m.n_features(), usize::max)
            }),
        }
    }

    /// Sorted, deduplicated split thresholds per feature column across every
    /// tree in the model — its axis-aligned partition of feature space. Two
    /// rows whose values fall in the same inter-threshold cell on every
    /// column take identical paths through every tree and receive identical
    /// predictions; a linear model splits nowhere, so every column's list is
    /// empty (one cell: predictions differ only by the row's linear term).
    /// Columns beyond any split's feature index come back empty.
    pub fn split_grid(&self, n_features: usize) -> Vec<Vec<f64>> {
        let mut grid = vec![Vec::new(); n_features];
        let trees = match self {
            TrainedModel::Linear(_) => &[],
            TrainedModel::RandomForest(m) => m.trees(),
            TrainedModel::GradientBoosting(m) => m.trees(),
        };
        for tree in trees {
            for (feature, threshold) in tree.flat().splits() {
                if let Some(column) = grid.get_mut(feature) {
                    column.push(threshold);
                }
            }
        }
        for column in &mut grid {
            column.sort_by(f64::total_cmp);
            column.dedup();
        }
        grid
    }

    /// Serialize to a JSON string (for saving a trained scheduler model).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<TrainedModel, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl Regressor for TrainedModel {
    fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            TrainedModel::Linear(m) => m.predict_row(row),
            TrainedModel::RandomForest(m) => m.predict_row(row),
            TrainedModel::GradientBoosting(m) => m.predict_row(row),
        }
    }

    fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        match self {
            TrainedModel::Linear(m) => m.predict_into(x, out),
            TrainedModel::RandomForest(m) => m.predict_into(x, out),
            TrainedModel::GradientBoosting(m) => m.predict_into(x, out),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            TrainedModel::Linear(_) => "linear-regression",
            TrainedModel::RandomForest(_) => "random-forest",
            TrainedModel::GradientBoosting(_) => "gradient-boosting",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RegressionMetrics;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x1".into(), "x2".into()]);
        for _ in 0..n {
            let x1 = rng.uniform(0.0, 5.0);
            let x2 = rng.uniform(0.0, 5.0);
            d.push(vec![x1, x2], 2.0 * x1 + x2 * x2 + rng.normal(0.0, 0.2))
                .unwrap();
        }
        d
    }

    fn small_config() -> ModelConfig {
        ModelConfig {
            forest: RandomForestConfig {
                n_trees: 25,
                workers: 2,
                ..Default::default()
            },
            gbdt: GradientBoostingConfig {
                n_rounds: 60,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn kind_parsing_and_display() {
        assert_eq!("rf".parse::<ModelKind>().unwrap(), ModelKind::RandomForest);
        assert_eq!(
            "XGBoost".parse::<ModelKind>().unwrap(),
            ModelKind::GradientBoosting
        );
        assert_eq!(
            "linear regression".parse::<ModelKind>().unwrap(),
            ModelKind::Linear
        );
        assert!("svm".parse::<ModelKind>().is_err());
        assert_eq!(format!("{}", ModelKind::RandomForest), "Random Forest");
        assert_eq!(ModelKind::GradientBoosting.display_name(), "XGBoost");
        assert_eq!(ModelKind::ALL.len(), 3);
    }

    #[test]
    fn all_families_train_and_predict() {
        let data = dataset(400, 1);
        let mut rng = Rng::seed_from_u64(2);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        for kind in ModelKind::ALL {
            let model = TrainedModel::train(kind, &small_config(), &train, &mut rng);
            assert_eq!(model.kind(), kind);
            let m = RegressionMetrics::compute(&model.predict(&test), test.targets());
            assert!(m.r2 > 0.7, "{kind}: r2 {}", m.r2);
            assert!(!model.name().is_empty());
        }
    }

    #[test]
    fn tree_models_beat_linear_on_nonlinear_target() {
        let data = dataset(600, 3);
        let mut rng = Rng::seed_from_u64(4);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        let config = small_config();
        let linear = TrainedModel::train(ModelKind::Linear, &config, &train, &mut rng);
        let forest = TrainedModel::train(ModelKind::RandomForest, &config, &train, &mut rng);
        let lm = RegressionMetrics::compute(&linear.predict(&test), test.targets());
        let fm = RegressionMetrics::compute(&forest.predict(&test), test.targets());
        assert!(
            fm.rmse < lm.rmse,
            "forest {} vs linear {}",
            fm.rmse,
            lm.rmse
        );
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let data = dataset(200, 5);
        let mut rng = Rng::seed_from_u64(6);
        for kind in ModelKind::ALL {
            let model = TrainedModel::train(kind, &small_config(), &data, &mut rng);
            let json = model.to_json();
            let restored = TrainedModel::from_json(&json).unwrap();
            assert_eq!(restored.kind(), kind);
            assert_eq!(restored.n_features(), Some(2));
            for i in 0..20 {
                let row = data.row(i);
                assert!(
                    (model.predict_row(row) - restored.predict_row(row)).abs() < 1e-12,
                    "{kind} roundtrip mismatch"
                );
            }
            // The re-flattened batch path agrees exactly with the original.
            assert_eq!(restored.predict(&data), model.predict(&data));
        }
        assert!(TrainedModel::from_json("not json").is_err());
    }

    #[test]
    fn training_on_empty_data_is_safe() {
        let empty = Dataset::new(vec!["x".into()]);
        let mut rng = Rng::seed_from_u64(7);
        for kind in ModelKind::ALL {
            let model = TrainedModel::train(kind, &small_config(), &empty, &mut rng);
            assert_eq!(model.predict_row(&[1.0]), 0.0);
        }
    }

    #[test]
    fn regressor_trait_object_usable() {
        let data = dataset(100, 8);
        let mut rng = Rng::seed_from_u64(9);
        let model = TrainedModel::train(ModelKind::Linear, &small_config(), &data, &mut rng);
        let boxed: Box<dyn Regressor> = Box::new(model);
        assert!(boxed.predict_row(&[1.0, 1.0]).is_finite());
        assert_eq!(boxed.predict(&data).len(), data.len());
    }
}
