//! Tabular dataset container, splitting and standardization.

use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use std::fmt;

/// A tabular regression dataset: named feature columns, one row per sample,
/// one target per row.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

/// Errors raised by dataset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A row's length does not match the number of feature columns.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Length of the offending row.
        got: usize,
    },
    /// The dataset has no rows but the operation needs at least one.
    Empty,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch { expected, got } => {
                write!(f, "row has {got} features, expected {expected}")
            }
            DataError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for DataError {}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a sample.
    pub fn push(&mut self, features: Vec<f64>, target: f64) -> Result<(), DataError> {
        if features.len() != self.n_features() {
            return Err(DataError::DimensionMismatch {
                expected: self.n_features(),
                got: features.len(),
            });
        }
        self.rows.push(features);
        self.targets.push(target);
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// One row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// One target.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Build a new dataset containing only the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone());
        out.rows.reserve(indices.len());
        out.targets.reserve(indices.len());
        for &i in indices {
            out.rows.push(self.rows[i].clone());
            out.targets.push(self.targets[i]);
        }
        out
    }

    /// Split into `(train, test)` with `test_fraction` of rows (rounded) going
    /// to the test set, shuffled by `rng`.
    pub fn train_test_split(&self, test_fraction: f64, rng: &mut Rng) -> (Dataset, Dataset) {
        let idx = SplitIndices::train_test(self.len(), test_fraction, rng);
        (self.subset(&idx.train), self.subset(&idx.test))
    }

    /// Mean of each feature column.
    pub fn feature_means(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        let mut means = vec![0.0; self.n_features()];
        for row in &self.rows {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Mean of the target column.
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

/// Train/test or fold index sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitIndices {
    /// Row indices of the training partition.
    pub train: Vec<usize>,
    /// Row indices of the held-out partition.
    pub test: Vec<usize>,
}

impl SplitIndices {
    /// Random train/test split of `n` rows.
    pub fn train_test(n: usize, test_fraction: f64, rng: &mut Rng) -> SplitIndices {
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let test_len = ((n as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
        let test_len = test_len.min(n);
        SplitIndices {
            test: order[..test_len].to_vec(),
            train: order[test_len..].to_vec(),
        }
    }

    /// `k` cross-validation folds over `n` rows (each fold is a test set; its
    /// complement is the training set).
    pub fn k_folds(n: usize, k: usize, rng: &mut Rng) -> Vec<SplitIndices> {
        let k = k.max(2).min(n.max(2));
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, idx) in order.into_iter().enumerate() {
            folds[i % k].push(idx);
        }
        (0..k)
            .map(|fold| {
                let test = folds[fold].clone();
                let train = folds
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != fold)
                    .flat_map(|(_, f)| f.iter().copied())
                    .collect();
                SplitIndices { train, test }
            })
            .collect()
    }
}

/// Per-feature standardization (z-score) fitted on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fit a scaler to a dataset's feature columns.
    pub fn fit(data: &Dataset) -> Scaler {
        let n = data.len().max(1) as f64;
        let means = data.feature_means();
        let mut vars = vec![0.0; data.n_features()];
        for row in data.rows() {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Scaler { means, stds }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Transform a copy of the row.
    pub fn transformed(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.transform_row(&mut out);
        out
    }

    /// Transform a whole dataset (features only; targets are untouched).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.feature_names().to_vec());
        for (row, &y) in data.rows().iter().zip(data.targets()) {
            out.push(self.transformed(row), y).expect("same width");
        }
        out
    }

    /// Per-feature means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations captured at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(vec![i as f64, (i * 2) as f64], i as f64 * 3.0)
                .unwrap();
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(3), &[3.0, 6.0]);
        assert_eq!(d.target(3), 9.0);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("z"), None);
        assert_eq!(d.feature_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn push_rejects_wrong_width() {
        let mut d = toy();
        assert_eq!(
            d.push(vec![1.0], 0.0),
            Err(DataError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(format!("{}", DataError::Empty).contains("empty"));
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 5, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(1), &[5.0, 10.0]);
        assert_eq!(s.target(2), 27.0);
    }

    #[test]
    fn means_are_correct() {
        let d = toy();
        let means = d.feature_means();
        assert!((means[0] - 4.5).abs() < 1e-12);
        assert!((means[1] - 9.0).abs() < 1e-12);
        assert!((d.target_mean() - 13.5).abs() < 1e-12);
        assert_eq!(Dataset::new(vec!["x".into()]).target_mean(), 0.0);
    }

    #[test]
    fn train_test_split_covers_all_rows() {
        let d = toy();
        let mut rng = Rng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 3);
        // Deterministic per seed.
        let mut rng2 = Rng::seed_from_u64(1);
        let (train2, test2) = d.train_test_split(0.3, &mut rng2);
        assert_eq!(train.rows(), train2.rows());
        assert_eq!(test.targets(), test2.targets());
    }

    #[test]
    fn split_indices_extremes() {
        let mut rng = Rng::seed_from_u64(4);
        let all_test = SplitIndices::train_test(10, 1.0, &mut rng);
        assert_eq!(all_test.test.len(), 10);
        assert!(all_test.train.is_empty());
        let none_test = SplitIndices::train_test(10, 0.0, &mut rng);
        assert!(none_test.test.is_empty());
        assert_eq!(none_test.train.len(), 10);
        // Out-of-range fractions clamp.
        let clamped = SplitIndices::train_test(10, 7.0, &mut rng);
        assert_eq!(clamped.test.len(), 10);
    }

    #[test]
    fn k_folds_partition_rows() {
        let mut rng = Rng::seed_from_u64(2);
        let folds = SplitIndices::k_folds(25, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|f| f.test.iter().copied()).collect();
        all_test.sort_unstable();
        assert_eq!(
            all_test,
            (0..25).collect::<Vec<usize>>(),
            "test folds partition the data"
        );
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), 25);
            // Train and test are disjoint.
            for t in &fold.test {
                assert!(!fold.train.contains(t));
            }
        }
        // k below 2 clamps to 2.
        let two = SplitIndices::k_folds(10, 1, &mut rng);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn scaler_standardizes_columns() {
        let d = toy();
        let scaler = Scaler::fit(&d);
        let scaled = scaler.transform_dataset(&d);
        let means = scaled.feature_means();
        assert!(means.iter().all(|m| m.abs() < 1e-9));
        // Variance ~ 1 for each column.
        for col in 0..2 {
            let var: f64 = scaled.rows().iter().map(|r| r[col] * r[col]).sum::<f64>() / 10.0;
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
        // Targets untouched.
        assert_eq!(scaled.targets(), d.targets());
        assert_eq!(scaler.means().len(), 2);
        assert_eq!(scaler.stds().len(), 2);
    }

    #[test]
    fn scaler_handles_constant_columns() {
        let mut d = Dataset::new(vec!["c".into()]);
        for _ in 0..5 {
            d.push(vec![7.0], 1.0).unwrap();
        }
        let scaler = Scaler::fit(&d);
        let row = scaler.transformed(&[7.0]);
        assert_eq!(row, vec![0.0]);
        // Constant column gets unit std to avoid division by zero.
        assert_eq!(scaler.stds(), &[1.0]);
    }
}
