//! Tabular dataset container, splitting and standardization.
//!
//! Feature rows live in a [`FeatureMatrix`]: one contiguous row-major
//! `Vec<f64>` with a fixed stride, so training loops, batch inference and
//! metric computation stream cache-line-sequential memory instead of chasing
//! one heap allocation per row. Row views are borrowed slices; nothing on the
//! prediction path clones a row.

use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use std::fmt;

/// A dense row-major matrix of feature values: `n_rows × n_features` in one
/// contiguous allocation. The row count is tracked explicitly so zero-width
/// schemas (ablations that drop every feature group) still count rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    values: Vec<f64>,
    n_features: usize,
    n_rows: usize,
}

impl FeatureMatrix {
    /// Create an empty matrix with the given stride (features per row).
    pub fn new(n_features: usize) -> Self {
        FeatureMatrix {
            values: Vec::new(),
            n_features,
            n_rows: 0,
        }
    }

    /// Create an empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(n_features: usize, rows: usize) -> Self {
        FeatureMatrix {
            values: Vec::with_capacity(n_features * rows),
            n_features,
            n_rows: 0,
        }
    }

    /// Number of feature columns (the row stride).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Drop all rows, keeping the allocation and stride.
    pub fn clear(&mut self) {
        self.values.clear();
        self.n_rows = 0;
    }

    /// Drop all rows and switch to a new stride (scratch-buffer reuse across
    /// schemas).
    pub fn reset(&mut self, n_features: usize) {
        self.values.clear();
        self.n_features = n_features;
        self.n_rows = 0;
    }

    /// Append one row (must match the stride).
    ///
    /// # Panics
    /// Panics when `row.len() != n_features`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.n_features,
            "row width must match the matrix stride"
        );
        self.values.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Append a zero-filled row and return a mutable view of it, so callers
    /// can construct features in place without a temporary `Vec`.
    pub fn add_row(&mut self) -> &mut [f64] {
        let start = self.values.len();
        self.values.resize(start + self.n_features, 0.0);
        self.n_rows += 1;
        &mut self.values[start..]
    }

    /// Borrow one row.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of {} rows", self.n_rows);
        let start = i * self.n_features;
        &self.values[start..start + self.n_features]
    }

    /// Mutably borrow one row.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.n_rows, "row {i} out of {} rows", self.n_rows);
        let start = i * self.n_features;
        &mut self.values[start..start + self.n_features]
    }

    /// One cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[row * self.n_features + col]
    }

    /// Overwrite one cell.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.values[row * self.n_features + col] = value;
    }

    /// Iterate over the rows as borrowed slices.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        (0..self.n_rows).map(move |i| self.row(i))
    }

    /// The backing contiguous value buffer (row-major).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A tabular regression dataset: named feature columns, one contiguous
/// row-major [`FeatureMatrix`] of samples, one target per row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    feature_names: Vec<String>,
    x: FeatureMatrix,
    targets: Vec<f64>,
}

/// Datasets serialize in the canonical nested form (`feature_names`, a
/// row-per-sample `rows` list, `targets`) — the on-disk shape is independent
/// of the flat in-memory layout, and deserialization re-flattens through
/// [`Dataset::push_row`] so the stride invariant is re-established by
/// construction.
impl Serialize for Dataset {
    fn serialize_value(&self) -> serde::Value {
        let rows: Vec<Vec<f64>> = self.x.rows().map(|r| r.to_vec()).collect();
        serde::Value::Map(vec![
            (
                serde::Value::Str("feature_names".to_string()),
                self.feature_names.serialize_value(),
            ),
            (
                serde::Value::Str("rows".to_string()),
                rows.serialize_value(),
            ),
            (
                serde::Value::Str("targets".to_string()),
                self.targets.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for Dataset {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for Dataset"))?;
        let feature_names: Vec<String> =
            Deserialize::deserialize_value(serde::get_field(map, "feature_names")?)?;
        let rows: Vec<Vec<f64>> = Deserialize::deserialize_value(serde::get_field(map, "rows")?)?;
        let targets: Vec<f64> = Deserialize::deserialize_value(serde::get_field(map, "targets")?)?;
        if rows.len() != targets.len() {
            return Err(serde::Error::custom("rows and targets must align"));
        }
        let mut data = Dataset::new(feature_names);
        for (row, &y) in rows.iter().zip(&targets) {
            data.push_row(row, y)
                .map_err(|e| serde::Error::custom(e.to_string()))?;
        }
        Ok(data)
    }
}

/// Errors raised by dataset operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A row's length does not match the number of feature columns.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Length of the offending row.
        got: usize,
    },
    /// The dataset has no rows but the operation needs at least one.
    Empty,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch { expected, got } => {
                write!(f, "row has {got} features, expected {expected}")
            }
            DataError::Empty => write!(f, "dataset is empty"),
        }
    }
}

impl std::error::Error for DataError {}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        let x = FeatureMatrix::new(feature_names.len());
        Dataset {
            feature_names,
            x,
            targets: Vec::new(),
        }
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.n_rows()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append a sample from a borrowed slice (no intermediate allocation).
    pub fn push_row(&mut self, features: &[f64], target: f64) -> Result<(), DataError> {
        if features.len() != self.n_features() {
            return Err(DataError::DimensionMismatch {
                expected: self.n_features(),
                got: features.len(),
            });
        }
        self.x.push_row(features);
        self.targets.push(target);
        Ok(())
    }

    /// Append a sample (owned-`Vec` convenience over [`Dataset::push_row`]).
    pub fn push(&mut self, features: Vec<f64>, target: f64) -> Result<(), DataError> {
        self.push_row(&features, target)
    }

    /// The contiguous feature matrix.
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.x
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// One row.
    pub fn row(&self, i: usize) -> &[f64] {
        self.x.row(i)
    }

    /// One target.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// Build a new dataset containing only the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset {
            feature_names: self.feature_names.clone(),
            x: FeatureMatrix::with_capacity(self.n_features(), indices.len()),
            targets: Vec::with_capacity(indices.len()),
        };
        for &i in indices {
            out.x.push_row(self.x.row(i));
            out.targets.push(self.targets[i]);
        }
        out
    }

    /// Split into `(train, test)` with `test_fraction` of rows (rounded) going
    /// to the test set, shuffled by `rng`.
    pub fn train_test_split(&self, test_fraction: f64, rng: &mut Rng) -> (Dataset, Dataset) {
        let idx = SplitIndices::train_test(self.len(), test_fraction, rng);
        (self.subset(&idx.train), self.subset(&idx.test))
    }

    /// Mean of each feature column.
    pub fn feature_means(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        let mut means = vec![0.0; self.n_features()];
        for row in self.x.rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Mean of the target column.
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f64>() / self.targets.len() as f64
        }
    }
}

/// Train/test or fold index sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitIndices {
    /// Row indices of the training partition.
    pub train: Vec<usize>,
    /// Row indices of the held-out partition.
    pub test: Vec<usize>,
}

impl SplitIndices {
    /// Random train/test split of `n` rows.
    pub fn train_test(n: usize, test_fraction: f64, rng: &mut Rng) -> SplitIndices {
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let test_len = ((n as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
        let test_len = test_len.min(n);
        SplitIndices {
            test: order[..test_len].to_vec(),
            train: order[test_len..].to_vec(),
        }
    }

    /// `k` cross-validation folds over `n` rows (each fold is a test set; its
    /// complement is the training set).
    pub fn k_folds(n: usize, k: usize, rng: &mut Rng) -> Vec<SplitIndices> {
        let k = k.max(2).min(n.max(2));
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, idx) in order.into_iter().enumerate() {
            folds[i % k].push(idx);
        }
        (0..k)
            .map(|fold| {
                let test = folds[fold].clone();
                let train = folds
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != fold)
                    .flat_map(|(_, f)| f.iter().copied())
                    .collect();
                SplitIndices { train, test }
            })
            .collect()
    }
}

/// Per-feature standardization (z-score) fitted on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fit a scaler to a dataset's feature columns.
    pub fn fit(data: &Dataset) -> Scaler {
        let n = data.len().max(1) as f64;
        let means = data.feature_means();
        let mut vars = vec![0.0; data.n_features()];
        for row in data.matrix().rows() {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Scaler { means, stds }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Transform a copy of the row.
    pub fn transformed(&self, row: &[f64]) -> Vec<f64> {
        let mut out = row.to_vec();
        self.transform_row(&mut out);
        out
    }

    /// Transform a whole matrix into a standardized copy.
    pub fn transform_matrix(&self, x: &FeatureMatrix) -> FeatureMatrix {
        let mut out = x.clone();
        for i in 0..out.n_rows() {
            self.transform_row(out.row_mut(i));
        }
        out
    }

    /// Transform a whole dataset (features only; targets are untouched).
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(data.feature_names().to_vec());
        let mut scratch = vec![0.0; data.n_features()];
        for (row, &y) in data.matrix().rows().zip(data.targets()) {
            scratch.copy_from_slice(row);
            self.transform_row(&mut scratch);
            out.push_row(&scratch, y).expect("same width");
        }
        out
    }

    /// Per-feature means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations captured at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..10 {
            d.push(vec![i as f64, (i * 2) as f64], i as f64 * 3.0)
                .unwrap();
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(3), &[3.0, 6.0]);
        assert_eq!(d.target(3), 9.0);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("z"), None);
        assert_eq!(d.feature_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn matrix_is_contiguous_row_major() {
        let d = toy();
        let x = d.matrix();
        assert_eq!(x.n_rows(), 10);
        assert_eq!(x.n_features(), 2);
        assert_eq!(x.values().len(), 20);
        assert_eq!(&x.values()[6..8], d.row(3));
        assert_eq!(x.get(3, 1), 6.0);
        assert_eq!(x.rows().len(), 10);
        let collected: Vec<&[f64]> = x.rows().collect();
        assert_eq!(collected[2], &[2.0, 4.0]);
    }

    #[test]
    fn matrix_add_row_constructs_in_place() {
        let mut x = FeatureMatrix::with_capacity(3, 2);
        assert!(x.is_empty());
        let row = x.add_row();
        assert_eq!(row, &[0.0, 0.0, 0.0]);
        row[1] = 5.0;
        assert_eq!(x.row(0), &[0.0, 5.0, 0.0]);
        x.push_row(&[1.0, 2.0, 3.0]);
        assert_eq!(x.n_rows(), 2);
        x.row_mut(1)[0] = 9.0;
        assert_eq!(x.get(1, 0), 9.0);
        x.set(1, 0, 7.0);
        assert_eq!(x.get(1, 0), 7.0);
        x.clear();
        assert_eq!(x.n_rows(), 0);
        assert_eq!(x.n_features(), 3);
        x.reset(1);
        assert_eq!(x.n_features(), 1);
    }

    #[test]
    fn zero_width_matrix_still_counts_rows() {
        let mut x = FeatureMatrix::new(0);
        x.push_row(&[]);
        let _ = x.add_row();
        assert_eq!(x.n_rows(), 2);
        assert_eq!(x.row(1), &[] as &[f64]);
        assert_eq!(x.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn matrix_rejects_wrong_width_rows() {
        let mut x = FeatureMatrix::new(2);
        x.push_row(&[1.0]);
    }

    #[test]
    fn push_rejects_wrong_width() {
        let mut d = toy();
        assert_eq!(
            d.push(vec![1.0], 0.0),
            Err(DataError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(format!("{}", DataError::Empty).contains("empty"));
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 5, 9]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(1), &[5.0, 10.0]);
        assert_eq!(s.target(2), 27.0);
    }

    #[test]
    fn means_are_correct() {
        let d = toy();
        let means = d.feature_means();
        assert!((means[0] - 4.5).abs() < 1e-12);
        assert!((means[1] - 9.0).abs() < 1e-12);
        assert!((d.target_mean() - 13.5).abs() < 1e-12);
        assert_eq!(Dataset::new(vec!["x".into()]).target_mean(), 0.0);
    }

    #[test]
    fn train_test_split_covers_all_rows() {
        let d = toy();
        let mut rng = Rng::seed_from_u64(1);
        let (train, test) = d.train_test_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 3);
        // Deterministic per seed.
        let mut rng2 = Rng::seed_from_u64(1);
        let (train2, test2) = d.train_test_split(0.3, &mut rng2);
        assert_eq!(train.matrix(), train2.matrix());
        assert_eq!(test.targets(), test2.targets());
    }

    #[test]
    fn dataset_serde_roundtrips_nested_rows() {
        let d = toy();
        let restored = Dataset::deserialize_value(&d.serialize_value()).unwrap();
        assert_eq!(restored, d);
        // The serialized form is the canonical nested one.
        let v = d.serialize_value();
        let map = v.as_map().unwrap();
        let rows = serde::get_field(map, "rows").unwrap().as_seq().unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].as_seq().unwrap().len(), 2);
    }

    #[test]
    fn split_indices_extremes() {
        let mut rng = Rng::seed_from_u64(4);
        let all_test = SplitIndices::train_test(10, 1.0, &mut rng);
        assert_eq!(all_test.test.len(), 10);
        assert!(all_test.train.is_empty());
        let none_test = SplitIndices::train_test(10, 0.0, &mut rng);
        assert!(none_test.test.is_empty());
        assert_eq!(none_test.train.len(), 10);
        // Out-of-range fractions clamp.
        let clamped = SplitIndices::train_test(10, 7.0, &mut rng);
        assert_eq!(clamped.test.len(), 10);
    }

    #[test]
    fn k_folds_partition_rows() {
        let mut rng = Rng::seed_from_u64(2);
        let folds = SplitIndices::k_folds(25, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|f| f.test.iter().copied()).collect();
        all_test.sort_unstable();
        assert_eq!(
            all_test,
            (0..25).collect::<Vec<usize>>(),
            "test folds partition the data"
        );
        for fold in &folds {
            assert_eq!(fold.train.len() + fold.test.len(), 25);
            // Train and test are disjoint.
            for t in &fold.test {
                assert!(!fold.train.contains(t));
            }
        }
        // k below 2 clamps to 2.
        let two = SplitIndices::k_folds(10, 1, &mut rng);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn scaler_standardizes_columns() {
        let d = toy();
        let scaler = Scaler::fit(&d);
        let scaled = scaler.transform_dataset(&d);
        let means = scaled.feature_means();
        assert!(means.iter().all(|m| m.abs() < 1e-9));
        // Variance ~ 1 for each column.
        for col in 0..2 {
            let var: f64 = scaled.matrix().rows().map(|r| r[col] * r[col]).sum::<f64>() / 10.0;
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
        // Targets untouched.
        assert_eq!(scaled.targets(), d.targets());
        assert_eq!(scaler.means().len(), 2);
        assert_eq!(scaler.stds().len(), 2);
        // The matrix-level transform agrees with the dataset-level one.
        assert_eq!(&scaler.transform_matrix(d.matrix()), scaled.matrix());
    }

    #[test]
    fn scaler_handles_constant_columns() {
        let mut d = Dataset::new(vec!["c".into()]);
        for _ in 0..5 {
            d.push(vec![7.0], 1.0).unwrap();
        }
        let scaler = Scaler::fit(&d);
        let row = scaler.transformed(&[7.0]);
        assert_eq!(row, vec![0.0]);
        // Constant column gets unit std to avoid division by zero.
        assert_eq!(scaler.stds(), &[1.0]);
    }
}
