//! CART regression trees.
//!
//! Splits minimize the weighted variance of the two children (equivalently,
//! maximize variance reduction). Candidate thresholds are midpoints between
//! consecutive distinct feature values of the sorted node samples. Trees
//! support depth / leaf-size limits and per-split feature subsampling (used by
//! the random forest).

use crate::data::Dataset;
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples required in each child.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all features).
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

/// A tree node: either an internal split or a leaf prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        prediction: f64,
        samples: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
        samples: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    /// Sum of variance reduction attributed to each feature (impurity importance).
    feature_importance: Vec<f64>,
    fitted: bool,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new(DecisionTreeConfig::default())
    }
}

struct BuildCtx<'a> {
    rows: &'a [Vec<f64>],
    targets: &'a [f64],
    config: DecisionTreeConfig,
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
            feature_importance: Vec::new(),
            fitted: false,
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Impurity-based feature importance (normalized to sum to 1 when any
    /// split exists).
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.feature_importance.iter().sum();
        if total <= 0.0 {
            return self.feature_importance.clone();
        }
        self.feature_importance.iter().map(|v| v / total).collect()
    }

    /// Fit on all rows of `data`.
    pub fn fit(&mut self, data: &Dataset, rng: &mut Rng) {
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_on_indices(data, &indices, rng);
    }

    /// Fit on a subset of row indices (used by bootstrap aggregation).
    pub fn fit_on_indices(&mut self, data: &Dataset, indices: &[usize], rng: &mut Rng) {
        self.n_features = data.n_features();
        self.nodes.clear();
        self.feature_importance = vec![0.0; self.n_features];
        if indices.is_empty() || data.is_empty() {
            self.nodes.push(Node::Leaf {
                prediction: data.target_mean(),
                samples: 0,
            });
            self.fitted = true;
            return;
        }
        let ctx = BuildCtx {
            rows: data.rows(),
            targets: data.targets(),
            config: self.config,
        };
        let mut idx = indices.to_vec();
        self.build_node(&ctx, &mut idx, 0, rng);
        self.fitted = true;
    }

    /// Recursively build a node over `indices`, returning its index in `self.nodes`.
    fn build_node(
        &mut self,
        ctx: &BuildCtx<'_>,
        indices: &mut [usize],
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let n = indices.len();
        let (sum, sum_sq) = indices.iter().fold((0.0, 0.0), |(s, ss), &i| {
            let y = ctx.targets[i];
            (s + y, ss + y * y)
        });
        let mean = sum / n as f64;
        let variance = (sum_sq / n as f64 - mean * mean).max(0.0);

        let make_leaf = |nodes: &mut Vec<Node>| {
            let idx = nodes.len();
            nodes.push(Node::Leaf {
                prediction: mean,
                samples: n,
            });
            idx
        };

        if depth >= ctx.config.max_depth || n < ctx.config.min_samples_split || variance < 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        // Candidate features for this split.
        let feature_candidates: Vec<usize> = match ctx.config.max_features {
            Some(k) if k < self.n_features => rng.sample_indices(self.n_features, k.max(1)),
            _ => (0..self.n_features).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let parent_score = variance * n as f64;
        for &feature in &feature_candidates {
            // Sort indices by this feature.
            indices.sort_by(|&a, &b| {
                ctx.rows[a][feature]
                    .partial_cmp(&ctx.rows[b][feature])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Prefix sums for O(n) split scan.
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split_at in 1..n {
                let i = indices[split_at - 1];
                let y = ctx.targets[i];
                left_sum += y;
                left_sq += y * y;
                // Only split between distinct feature values.
                let prev = ctx.rows[indices[split_at - 1]][feature];
                let next = ctx.rows[indices[split_at]][feature];
                if next <= prev {
                    continue;
                }
                let left_n = split_at;
                let right_n = n - split_at;
                if left_n < ctx.config.min_samples_leaf || right_n < ctx.config.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let right_sq = sum_sq - left_sq;
                let left_var =
                    (left_sq / left_n as f64 - (left_sum / left_n as f64).powi(2)).max(0.0);
                let right_var =
                    (right_sq / right_n as f64 - (right_sum / right_n as f64).powi(2)).max(0.0);
                let weighted = left_var * left_n as f64 + right_var * right_n as f64;
                let reduction = parent_score - weighted;
                if reduction > 1e-12 && best.map(|(_, _, b)| reduction > b).unwrap_or(true) {
                    best = Some((feature, (prev + next) / 2.0, reduction));
                }
            }
        }

        let Some((feature, threshold, reduction)) = best else {
            return make_leaf(&mut self.nodes);
        };
        self.feature_importance[feature] += reduction;

        // Partition indices in place around the chosen split.
        indices.sort_by(|&a, &b| {
            ctx.rows[a][feature]
                .partial_cmp(&ctx.rows[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let split_at = indices
            .iter()
            .position(|&i| ctx.rows[i][feature] > threshold)
            .unwrap_or(indices.len());
        // Reserve this node's slot before building children so the root ends
        // up at index 0.
        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf {
            prediction: mean,
            samples: n,
        });
        let (left_idx_slice, right_idx_slice) = indices.split_at_mut(split_at);
        let left = self.build_node(ctx, left_idx_slice, depth + 1, rng);
        let right = self.build_node(ctx, right_idx_slice, depth + 1, rng);
        self.nodes[node_idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
            samples: n,
        };
        node_idx
    }

    /// Predict the target for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut idx = 0;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { prediction, .. } => return *prediction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        data.rows().iter().map(|r| self.predict_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RegressionMetrics;

    fn step_dataset() -> Dataset {
        // y = 10 when x < 5, else 20 — a single split should fit perfectly.
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            let x = i as f64;
            d.push(vec![x], if x < 5.0 { 10.0 } else { 20.0 }).unwrap();
        }
        d
    }

    fn nonlinear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x1".into(), "x2".into()]);
        for _ in 0..n {
            let x1 = rng.uniform(0.0, 10.0);
            let x2 = rng.uniform(0.0, 10.0);
            // Interaction + threshold effects: trees should beat linear models here.
            let y = if x1 > 5.0 { 50.0 } else { 0.0 } + x1 * x2 + rng.normal(0.0, 0.5);
            d.push(vec![x1, x2], y).unwrap();
        }
        d
    }

    #[test]
    fn fits_step_function_exactly() {
        let data = step_dataset();
        let mut tree = DecisionTree::default();
        assert!(!tree.is_fitted());
        let mut rng = Rng::seed_from_u64(1);
        tree.fit(&data, &mut rng);
        assert!(tree.is_fitted());
        assert_eq!(tree.predict_row(&[2.0]), 10.0);
        assert_eq!(tree.predict_row(&[7.0]), 20.0);
        assert!(tree.node_count() >= 3);
        assert!(tree.depth() >= 1);
        // Only one feature: it gets all importance.
        assert_eq!(tree.feature_importance(), vec![1.0]);
    }

    #[test]
    fn captures_nonlinear_interactions() {
        let data = nonlinear_dataset(600, 2);
        let mut rng = Rng::seed_from_u64(3);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        let mut tree = DecisionTree::default();
        tree.fit(&train, &mut rng);
        let m = RegressionMetrics::compute(&tree.predict(&test), test.targets());
        assert!(m.r2 > 0.85, "r2 {}", m.r2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = nonlinear_dataset(300, 4);
        let mut rng = Rng::seed_from_u64(5);
        let mut stump = DecisionTree::new(DecisionTreeConfig {
            max_depth: 1,
            ..Default::default()
        });
        stump.fit(&data, &mut rng);
        assert!(stump.depth() <= 1);
        assert!(stump.node_count() <= 3);
        let mut deep = DecisionTree::new(DecisionTreeConfig {
            max_depth: 8,
            ..Default::default()
        });
        deep.fit(&data, &mut rng);
        assert!(deep.depth() <= 8);
        assert!(deep.depth() > 1);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let data = nonlinear_dataset(100, 6);
        let mut rng = Rng::seed_from_u64(7);
        let mut tree = DecisionTree::new(DecisionTreeConfig {
            min_samples_leaf: 20,
            ..Default::default()
        });
        tree.fit(&data, &mut rng);
        // With >= 20 samples per leaf on 100 samples the tree must be small.
        assert!(tree.node_count() <= 9, "node_count {}", tree.node_count());
    }

    #[test]
    fn constant_targets_become_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            d.push(vec![i as f64], 5.0).unwrap();
        }
        let mut rng = Rng::seed_from_u64(8);
        let mut tree = DecisionTree::default();
        tree.fit(&d, &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_row(&[100.0]), 5.0);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn empty_fit_yields_safe_leaf() {
        let d = Dataset::new(vec!["x".into()]);
        let mut rng = Rng::seed_from_u64(9);
        let mut tree = DecisionTree::default();
        tree.fit(&d, &mut rng);
        assert!(tree.is_fitted());
        assert_eq!(tree.predict_row(&[1.0]), 0.0);
        // Unfitted tree also predicts 0.
        let unfitted = DecisionTree::default();
        assert_eq!(unfitted.predict_row(&[1.0]), 0.0);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let data = nonlinear_dataset(400, 10);
        let mut rng = Rng::seed_from_u64(11);
        let mut tree = DecisionTree::new(DecisionTreeConfig {
            max_features: Some(1),
            ..Default::default()
        });
        tree.fit(&data, &mut rng);
        let m = RegressionMetrics::compute(&tree.predict(&data), data.targets());
        assert!(
            m.r2 > 0.5,
            "even with per-split subsampling the tree learns, r2 {}",
            m.r2
        );
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // y depends only on x1; x2 is noise.
        let mut rng = Rng::seed_from_u64(12);
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for _ in 0..300 {
            let x1 = rng.uniform(0.0, 10.0);
            let x2 = rng.uniform(0.0, 10.0);
            d.push(vec![x1, x2], x1 * 3.0).unwrap();
        }
        let mut tree = DecisionTree::default();
        tree.fit(&d, &mut rng);
        let imp = tree.feature_importance();
        assert!(imp[0] > 0.95, "signal importance {imp:?}");
        assert!(imp[1] < 0.05);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let data = nonlinear_dataset(200, 13);
        let mut t1 = DecisionTree::new(DecisionTreeConfig {
            max_features: Some(1),
            ..Default::default()
        });
        let mut t2 = t1.clone();
        let mut r1 = Rng::seed_from_u64(99);
        let mut r2 = Rng::seed_from_u64(99);
        t1.fit(&data, &mut r1);
        t2.fit(&data, &mut r2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn predict_handles_short_rows_gracefully() {
        let data = step_dataset();
        let mut rng = Rng::seed_from_u64(14);
        let mut tree = DecisionTree::default();
        tree.fit(&data, &mut rng);
        // Missing feature values are treated as 0.0 (go left).
        let pred = tree.predict_row(&[]);
        assert_eq!(pred, 10.0);
    }
}
