//! CART regression trees over flat, struct-of-arrays storage.
//!
//! Splits minimize the weighted variance of the two children (equivalently,
//! maximize variance reduction). Candidate thresholds are midpoints between
//! consecutive distinct feature values of the sorted node samples. Trees
//! support depth / leaf-size limits and per-split feature subsampling (used by
//! the random forest).
//!
//! A fitted tree is stored as a [`FlatTree`]: index-parallel `feature` /
//! `threshold` / child-index arrays with leaves encoded by the index tag of
//! their child pair (a self-loop) instead of an enum discriminant.
//! Prediction walks flat arrays with no pointer-chasing or per-node branch
//! on a discriminant; the batch kernels ([`FlatTree::accumulate_block`] /
//! [`FlatTree::accumulate_ensemble`]) run a branchless fixed-depth walk over
//! interleaved row blocks so a whole candidate batch streams through each
//! tree's nodes while they are hot in cache (the trees-outer loop the forest
//! and GBDT use). Serialization keeps the canonical nested node form
//! ([`TreeNode`], validated on load) and re-flattens on deserialize.

use crate::data::{Dataset, FeatureMatrix};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples required in each child.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all features).
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

/// The canonical nested node form trees serialize as (and the reference
/// representation differential tests walk): either an internal split or a
/// leaf prediction, children addressed by index into the node list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A terminal prediction.
    Leaf {
        /// Mean target of the samples that reached this leaf.
        prediction: f64,
        /// Number of training samples that reached this leaf.
        samples: usize,
    },
    /// An internal split on `feature <= threshold`.
    Split {
        /// Feature column index.
        feature: usize,
        /// Split threshold (midpoint between distinct values).
        threshold: f64,
        /// Index of the `<=` child in the node list.
        left: usize,
        /// Index of the `>` child in the node list.
        right: usize,
        /// Number of training samples that reached this split.
        samples: usize,
    },
}

/// A fitted regression tree in struct-of-arrays form.
///
/// All nodes live in index-parallel arrays: node `i` tests
/// `row[feature[i]] <= threshold[i]` and continues at `children[i][0]`
/// (`<=`) or `children[i][1]` (`>`). Leaves are encoded by the index tag of
/// their child pair — a node whose children point back to itself — instead
/// of an enum discriminant, so the batch walk needs no per-step "is this a
/// leaf?" branch: a cursor that reaches a leaf simply self-loops (the leaf
/// carries `feature = 0`, `threshold = +∞`, so the comparison stays
/// in-bounds and always picks the self edge) while the other rows of its
/// block finish, and the walk runs a fixed `depth` passes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatTree {
    /// Index of the root node.
    root: u32,
    feature: Vec<u32>,
    threshold: Vec<f64>,
    /// Child index pair per node: `[<=, >]`; leaves self-loop.
    children: Vec<[u32; 2]>,
    /// Leaf prediction per node (0 for splits).
    value: Vec<f64>,
    /// Training samples that reached each node (canonical-form round-trip).
    samples: Vec<u32>,
    /// Leaf flag per node (drives the scalar walk and the canonical form).
    leaf: Vec<bool>,
    /// Maximum node depth: the pass count of the branchless batch walk.
    depth: u32,
}

impl FlatTree {
    /// Deepest tree the fixed-pass (branchless) batch walk handles; a
    /// pathologically deeper chain falls back to the early-exit walk so the
    /// pass count cannot degenerate to the sample count.
    const MAX_FIXED_PASSES: u32 = 64;

    /// True when the tree holds no nodes at all (never fitted).
    pub fn is_empty(&self) -> bool {
        self.feature.is_empty()
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.feature.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf.iter().filter(|&&l| l).count()
    }

    /// Append a leaf (self-looping children), returning its index.
    fn push_leaf(&mut self, prediction: f64, samples: usize) -> u32 {
        let idx = self.feature.len() as u32;
        self.feature.push(0);
        self.threshold.push(f64::INFINITY);
        self.children.push([idx, idx]);
        self.value.push(prediction);
        self.samples.push(samples as u32);
        self.leaf.push(true);
        idx
    }

    /// Reserve a split slot (feature/threshold/children patched later),
    /// returning its index.
    fn push_split_slot(&mut self, samples: usize) -> u32 {
        let idx = self.feature.len() as u32;
        self.feature.push(0);
        self.threshold.push(0.0);
        self.children.push([0, 0]);
        self.value.push(0.0);
        self.samples.push(samples as u32);
        self.leaf.push(false);
        idx
    }

    /// Recompute the cached max depth after the structure is in place
    /// (iterative, so pathologically deep chains cannot overflow the stack).
    fn finalize_depth(&mut self) {
        if self.is_empty() {
            self.depth = 0;
            return;
        }
        let mut max = 0u32;
        let mut stack: Vec<(u32, u32)> = vec![(self.root, 0)];
        while let Some((cursor, depth)) = stack.pop() {
            let i = cursor as usize;
            if self.leaf[i] {
                max = max.max(depth);
                continue;
            }
            let [l, r] = self.children[i];
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
        self.depth = max;
    }

    /// One walk step's child index: 0 for `value <= threshold`, 1 otherwise.
    /// The negated `<=` (rather than `>`) is load-bearing: a NaN feature
    /// value fails `<=` and must go right, exactly as the historical enum
    /// walk's `if v <= t { left } else { right }` did.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline(always)]
    fn step(&self, i: usize, row: &[f64]) -> u32 {
        let dir = usize::from(!(row[self.feature[i] as usize] <= self.threshold[i]));
        self.children[i][dir]
    }

    /// Predict the target for one full-width row.
    ///
    /// Rows must carry every feature the tree was trained on; a short row is
    /// a malformed input and panics (index out of bounds) instead of silently
    /// predicting from padded zeros.
    #[inline]
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut i = self.root as usize;
        while !self.leaf[i] {
            i = self.step(i, row) as usize;
        }
        self.value[i]
    }

    /// Rows walked simultaneously by the batch kernels. A scalar tree walk
    /// is one serial dependent-load chain (every step waits on the previous
    /// node fetch); interleaving a block of rows keeps that many independent
    /// chains — and, for ensembles larger than cache, that many outstanding
    /// memory requests — in flight at once.
    pub const BLOCK: usize = 16;

    /// Walk one block of up to [`Self::BLOCK`] rows through the tree,
    /// accumulating `scale * prediction` into `out[k]` for row `rows[k]`.
    /// The rows' walk cursors advance level-by-level in an interleaved loop,
    /// so the per-row dependent-load chains overlap. Per-row results are
    /// bit-identical to `out[k] += scale * self.predict_row(rows[k])`.
    ///
    /// Callers that predict a whole ensemble over one decision batch fetch
    /// the row slices once and reuse them across every tree.
    ///
    /// # Panics
    /// Panics when `rows.len() > BLOCK` or `out.len() != rows.len()`.
    pub fn accumulate_block(&self, rows: &[&[f64]], scale: f64, out: &mut [f64]) {
        assert!(rows.len() <= Self::BLOCK, "block larger than BLOCK");
        assert_eq!(out.len(), rows.len(), "one accumulator slot per row");
        if self.is_empty() {
            return;
        }
        let len = rows.len();
        let mut cursors = [self.root; Self::BLOCK];
        if self.depth <= Self::MAX_FIXED_PASSES {
            // Branchless fixed-pass walk: every pass advances every cursor
            // (leaves self-loop), so the inner loop has no data-dependent
            // branch at all — just interleaved loads and selects.
            for _ in 0..self.depth {
                for k in 0..len {
                    cursors[k] = self.step(cursors[k] as usize, rows[k]);
                }
            }
        } else {
            // Pathologically deep chain: early-exit walk.
            loop {
                let mut pending = false;
                for k in 0..len {
                    let i = cursors[k] as usize;
                    if !self.leaf[i] {
                        cursors[k] = self.step(i, rows[k]);
                        pending = true;
                    }
                }
                if !pending {
                    break;
                }
            }
        }
        for (slot, &c) in out.iter_mut().zip(&cursors) {
            *slot += scale * self.value[c as usize];
        }
    }

    /// Walk every row of `x` through the tree, accumulating `scale *
    /// prediction` into `out` (one slot per row). This is the trees-outer
    /// batch kernel for large matrices: the caller loops over trees, so each
    /// tree's node arrays stay hot in cache while the whole matrix streams
    /// through them, block by interleaved block. Per-row results are
    /// bit-identical to `out[i] += scale * self.predict_row(x.row(i))`.
    ///
    /// # Panics
    /// Panics when `out.len() != x.n_rows()`.
    pub fn accumulate_into(&self, x: &FeatureMatrix, scale: f64, out: &mut [f64]) {
        assert_eq!(out.len(), x.n_rows(), "one accumulator slot per row");
        if self.is_empty() {
            return;
        }
        let n = x.n_rows();
        let empty: &[f64] = &[];
        let mut rows: [&[f64]; Self::BLOCK] = [empty; Self::BLOCK];
        let mut start = 0;
        while start < n {
            let len = Self::BLOCK.min(n - start);
            for (k, slot) in rows.iter_mut().enumerate().take(len) {
                *slot = x.row(start + k);
            }
            self.accumulate_block(&rows[..len], scale, &mut out[start..start + len]);
            start += len;
        }
    }

    /// Accumulate a whole ensemble of `(tree, scale)` pairs over `x` into
    /// `out`, allocation-free. A decision-sized batch (≤ [`Self::BLOCK`]
    /// rows — the scheduler's candidate set) fetches its row slices into a
    /// stack array once and streams every tree through them; larger matrices
    /// run trees-outer over interleaved blocks. Per-row results are
    /// bit-identical to accumulating `scale * tree.predict_row(row)` in the
    /// same tree order.
    ///
    /// # Panics
    /// Panics when `out.len() != x.n_rows()`.
    pub fn accumulate_ensemble<'t>(
        trees: impl Iterator<Item = (&'t FlatTree, f64)>,
        x: &FeatureMatrix,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), x.n_rows(), "one accumulator slot per row");
        let n = x.n_rows();
        if n <= Self::BLOCK {
            let empty: &[f64] = &[];
            let mut rows: [&[f64]; Self::BLOCK] = [empty; Self::BLOCK];
            for (k, slot) in rows.iter_mut().enumerate().take(n) {
                *slot = x.row(k);
            }
            for (tree, scale) in trees {
                tree.accumulate_block(&rows[..n], scale, out);
            }
        } else {
            for (tree, scale) in trees {
                tree.accumulate_into(x, scale, out);
            }
        }
    }

    /// Render the canonical nested node list (preorder: parent, left subtree,
    /// right subtree — the order the recursive builder historically
    /// produced). Iterative (explicit stacks), so an arbitrarily deep chain
    /// serializes without recursing once per level.
    pub fn to_nodes(&self) -> Vec<TreeNode> {
        if self.is_empty() {
            return Vec::new();
        }
        // Pass 1: subtree sizes, iterative post-order.
        let n = self.node_count();
        let mut size = vec![0usize; n];
        let mut stack: Vec<(usize, bool)> = vec![(self.root as usize, false)];
        while let Some((i, expanded)) = stack.pop() {
            if self.leaf[i] {
                size[i] = 1;
                continue;
            }
            let [l, r] = self.children[i];
            if expanded {
                size[i] = 1 + size[l as usize] + size[r as usize];
            } else {
                stack.push((i, true));
                stack.push((l as usize, false));
                stack.push((r as usize, false));
            }
        }
        // Pass 2: preorder emit; a split's left child is the next emitted
        // node, its right child follows the whole left subtree.
        let mut out = Vec::with_capacity(n);
        let mut walk: Vec<usize> = vec![self.root as usize];
        while let Some(i) = walk.pop() {
            if self.leaf[i] {
                out.push(TreeNode::Leaf {
                    prediction: self.value[i],
                    samples: self.samples[i] as usize,
                });
                continue;
            }
            let [l, r] = self.children[i];
            let idx = out.len();
            out.push(TreeNode::Split {
                feature: self.feature[i] as usize,
                threshold: self.threshold[i],
                left: idx + 1,
                right: idx + 1 + size[l as usize],
                samples: self.samples[i] as usize,
            });
            walk.push(r as usize);
            walk.push(l as usize);
        }
        out
    }

    /// Rebuild a flat tree from the canonical nested node list. Iterative
    /// (explicit stack), so a hostile or pathologically deep archive returns
    /// an error or a tree — never a stack overflow. Out-of-bounds child
    /// indices and cycles are rejected.
    pub fn from_nodes(nodes: &[TreeNode]) -> Result<FlatTree, String> {
        let mut tree = FlatTree::default();
        if nodes.is_empty() {
            return Ok(tree);
        }
        let mut visited = vec![false; nodes.len()];
        // (canonical index, link to patch: (parent slot, child position)).
        let mut stack: Vec<(usize, Option<(u32, usize)>)> = vec![(0, None)];
        while let Some((idx, link)) = stack.pop() {
            let node = nodes
                .get(idx)
                .ok_or_else(|| format!("node index {idx} out of bounds"))?;
            if std::mem::replace(&mut visited[idx], true) {
                return Err(format!("node index {idx} visited twice (cycle)"));
            }
            let slot = match *node {
                TreeNode::Leaf {
                    prediction,
                    samples,
                } => tree.push_leaf(prediction, samples),
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    samples,
                } => {
                    let slot = tree.push_split_slot(samples);
                    tree.feature[slot as usize] = feature as u32;
                    tree.threshold[slot as usize] = threshold;
                    // LIFO: push right first so the left subtree flattens
                    // first — the builder's historical preorder.
                    stack.push((right, Some((slot, 1))));
                    stack.push((left, Some((slot, 0))));
                    slot
                }
            };
            match link {
                None => tree.root = slot,
                Some((parent, pos)) => tree.children[parent as usize][pos] = slot,
            }
        }
        tree.finalize_depth();
        Ok(tree)
    }

    /// The largest feature index any split tests, or `None` for a tree with
    /// no splits. Deserialization checks this against the declared feature
    /// count so a loaded archive cannot panic the prediction walk.
    pub fn max_split_feature(&self) -> Option<u32> {
        self.feature
            .iter()
            .zip(&self.leaf)
            .filter(|&(_, &is_leaf)| !is_leaf)
            .map(|(&f, _)| f)
            .max()
    }

    /// Depth of the tree (0 for a single leaf or an empty tree).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Iterate `(feature, threshold)` over the split (non-leaf) nodes. Two
    /// rows on the same side of every split's threshold walk identical paths
    /// and receive identical predictions.
    pub fn splits(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        (0..self.feature.len())
            .filter(|&i| !self.leaf[i])
            .map(|i| (self.feature[i] as usize, self.threshold[i]))
    }
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    tree: FlatTree,
    n_features: usize,
    /// Sum of variance reduction attributed to each feature (impurity importance).
    feature_importance: Vec<f64>,
    fitted: bool,
}

/// Trees serialize in the canonical nested form (a [`TreeNode`] list) and
/// re-flatten on deserialize, so the on-disk shape is independent of the flat
/// in-memory layout and archives cannot smuggle in inconsistent parallel
/// arrays.
impl Serialize for DecisionTree {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                serde::Value::Str("config".to_string()),
                self.config.serialize_value(),
            ),
            (
                serde::Value::Str("nodes".to_string()),
                self.tree.to_nodes().serialize_value(),
            ),
            (
                serde::Value::Str("n_features".to_string()),
                self.n_features.serialize_value(),
            ),
            (
                serde::Value::Str("feature_importance".to_string()),
                self.feature_importance.serialize_value(),
            ),
            (
                serde::Value::Str("fitted".to_string()),
                self.fitted.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for DecisionTree {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for DecisionTree"))?;
        let config = DecisionTreeConfig::deserialize_value(serde::get_field(map, "config")?)?;
        let nodes: Vec<TreeNode> = Deserialize::deserialize_value(serde::get_field(map, "nodes")?)?;
        let tree = FlatTree::from_nodes(&nodes).map_err(serde::Error::custom)?;
        let n_features: usize =
            Deserialize::deserialize_value(serde::get_field(map, "n_features")?)?;
        // The walk indexes rows by split feature directly (the zero-padding
        // tolerance is gone), so an archive whose splits test columns beyond
        // the declared width must be rejected here, not crash a decision.
        if let Some(max_feature) = tree.max_split_feature() {
            if max_feature as usize >= n_features {
                return Err(serde::Error::custom(format!(
                    "split feature index {max_feature} out of range for {n_features} features"
                )));
            }
        }
        Ok(DecisionTree {
            config,
            tree,
            n_features,
            feature_importance: Deserialize::deserialize_value(serde::get_field(
                map,
                "feature_importance",
            )?)?,
            fitted: Deserialize::deserialize_value(serde::get_field(map, "fitted")?)?,
        })
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new(DecisionTreeConfig::default())
    }
}

struct BuildCtx<'a> {
    x: &'a FeatureMatrix,
    targets: &'a [f64],
    config: DecisionTreeConfig,
}

impl DecisionTree {
    /// Create an unfitted tree.
    pub fn new(config: DecisionTreeConfig) -> Self {
        DecisionTree {
            config,
            tree: FlatTree::default(),
            n_features: 0,
            feature_importance: Vec::new(),
            fitted: false,
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.tree.depth()
    }

    /// Number of feature columns the tree was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The flat struct-of-arrays representation.
    pub fn flat(&self) -> &FlatTree {
        &self.tree
    }

    /// The canonical nested node list (the serialized form, and the reference
    /// representation for differential tests).
    pub fn canonical_nodes(&self) -> Vec<TreeNode> {
        self.tree.to_nodes()
    }

    /// Impurity-based feature importance (normalized to sum to 1 when any
    /// split exists).
    pub fn feature_importance(&self) -> Vec<f64> {
        let total: f64 = self.feature_importance.iter().sum();
        if total <= 0.0 {
            return self.feature_importance.clone();
        }
        self.feature_importance.iter().map(|v| v / total).collect()
    }

    /// Fit on all rows of `data`.
    pub fn fit(&mut self, data: &Dataset, rng: &mut Rng) {
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_on_matrix(data.matrix(), data.targets(), &indices, rng);
    }

    /// Fit on a subset of row indices of a dataset (bootstrap aggregation).
    pub fn fit_on_indices(&mut self, data: &Dataset, indices: &[usize], rng: &mut Rng) {
        self.fit_on_matrix(data.matrix(), data.targets(), indices, rng);
    }

    /// Fit on a subset of row indices of a raw `(matrix, targets)` pair —
    /// the allocation-free entry point boosting uses to refit residual
    /// targets each round without rebuilding a feature container.
    pub fn fit_on_matrix(
        &mut self,
        x: &FeatureMatrix,
        targets: &[f64],
        indices: &[usize],
        rng: &mut Rng,
    ) {
        self.n_features = x.n_features();
        self.tree = FlatTree::default();
        self.feature_importance = vec![0.0; self.n_features];
        if indices.is_empty() || x.is_empty() {
            let mean = if targets.is_empty() {
                0.0
            } else {
                targets.iter().sum::<f64>() / targets.len() as f64
            };
            self.tree.root = self.tree.push_leaf(mean, 0);
            self.fitted = true;
            return;
        }
        let ctx = BuildCtx {
            x,
            targets,
            config: self.config,
        };
        let mut idx = indices.to_vec();
        self.tree.root = self.build_node(&ctx, &mut idx, 0, rng);
        self.tree.finalize_depth();
        self.fitted = true;
    }

    /// Recursively build a node over `indices`, returning its flat cursor.
    fn build_node(
        &mut self,
        ctx: &BuildCtx<'_>,
        indices: &mut [usize],
        depth: usize,
        rng: &mut Rng,
    ) -> u32 {
        let n = indices.len();
        let (sum, sum_sq) = indices.iter().fold((0.0, 0.0), |(s, ss), &i| {
            let y = ctx.targets[i];
            (s + y, ss + y * y)
        });
        let mean = sum / n as f64;
        let variance = (sum_sq / n as f64 - mean * mean).max(0.0);

        if depth >= ctx.config.max_depth || n < ctx.config.min_samples_split || variance < 1e-12 {
            return self.tree.push_leaf(mean, n);
        }

        // Candidate features for this split.
        let feature_candidates: Vec<usize> = match ctx.config.max_features {
            Some(k) if k < self.n_features => rng.sample_indices(self.n_features, k.max(1)),
            _ => (0..self.n_features).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        let parent_score = variance * n as f64;
        for &feature in &feature_candidates {
            // Sort indices by this feature.
            indices.sort_by(|&a, &b| {
                ctx.x
                    .get(a, feature)
                    .partial_cmp(&ctx.x.get(b, feature))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Prefix sums for O(n) split scan.
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split_at in 1..n {
                let i = indices[split_at - 1];
                let y = ctx.targets[i];
                left_sum += y;
                left_sq += y * y;
                // Only split between distinct feature values.
                let prev = ctx.x.get(indices[split_at - 1], feature);
                let next = ctx.x.get(indices[split_at], feature);
                if next <= prev {
                    continue;
                }
                let left_n = split_at;
                let right_n = n - split_at;
                if left_n < ctx.config.min_samples_leaf || right_n < ctx.config.min_samples_leaf {
                    continue;
                }
                let right_sum = sum - left_sum;
                let right_sq = sum_sq - left_sq;
                let left_var =
                    (left_sq / left_n as f64 - (left_sum / left_n as f64).powi(2)).max(0.0);
                let right_var =
                    (right_sq / right_n as f64 - (right_sum / right_n as f64).powi(2)).max(0.0);
                let weighted = left_var * left_n as f64 + right_var * right_n as f64;
                let reduction = parent_score - weighted;
                if reduction > 1e-12 && best.map(|(_, _, b)| reduction > b).unwrap_or(true) {
                    best = Some((feature, (prev + next) / 2.0, reduction));
                }
            }
        }

        let Some((feature, threshold, reduction)) = best else {
            return self.tree.push_leaf(mean, n);
        };
        self.feature_importance[feature] += reduction;

        // Partition indices in place around the chosen split.
        indices.sort_by(|&a, &b| {
            ctx.x
                .get(a, feature)
                .partial_cmp(&ctx.x.get(b, feature))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let split_at = indices
            .iter()
            .position(|&i| ctx.x.get(i, feature) > threshold)
            .unwrap_or(indices.len());
        // Reserve this node's slot before building children so the canonical
        // emit order (parent, left subtree, right subtree) is preserved.
        let slot = self.tree.push_split_slot(n);
        self.tree.feature[slot as usize] = feature as u32;
        self.tree.threshold[slot as usize] = threshold;
        let (left_idx_slice, right_idx_slice) = indices.split_at_mut(split_at);
        let left = self.build_node(ctx, left_idx_slice, depth + 1, rng);
        let right = self.build_node(ctx, right_idx_slice, depth + 1, rng);
        self.tree.children[slot as usize] = [left, right];
        slot
    }

    /// Predict the target for one full-width row.
    ///
    /// # Panics
    /// Panics when the row is shorter than the features the tree splits on —
    /// malformed feature vectors fail loudly instead of predicting from
    /// zero-padding.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.tree.predict_row(row)
    }

    /// Predict every row of a feature matrix into a reused output buffer
    /// (cleared and refilled) via the interleaved batch kernel.
    pub fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        out.resize(x.n_rows(), 0.0);
        // 0.0 + 1.0 · v == v exactly, so this matches a per-row fill.
        self.tree.accumulate_into(x, 1.0, out);
    }

    /// Predict every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(data.matrix(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RegressionMetrics;

    fn step_dataset() -> Dataset {
        // y = 10 when x < 5, else 20 — a single split should fit perfectly.
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            let x = i as f64;
            d.push(vec![x], if x < 5.0 { 10.0 } else { 20.0 }).unwrap();
        }
        d
    }

    fn nonlinear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x1".into(), "x2".into()]);
        for _ in 0..n {
            let x1 = rng.uniform(0.0, 10.0);
            let x2 = rng.uniform(0.0, 10.0);
            // Interaction + threshold effects: trees should beat linear models here.
            let y = if x1 > 5.0 { 50.0 } else { 0.0 } + x1 * x2 + rng.normal(0.0, 0.5);
            d.push(vec![x1, x2], y).unwrap();
        }
        d
    }

    #[test]
    fn fits_step_function_exactly() {
        let data = step_dataset();
        let mut tree = DecisionTree::default();
        assert!(!tree.is_fitted());
        let mut rng = Rng::seed_from_u64(1);
        tree.fit(&data, &mut rng);
        assert!(tree.is_fitted());
        assert_eq!(tree.predict_row(&[2.0]), 10.0);
        assert_eq!(tree.predict_row(&[7.0]), 20.0);
        assert!(tree.node_count() >= 3);
        assert!(tree.depth() >= 1);
        // Only one feature: it gets all importance.
        assert_eq!(tree.feature_importance(), vec![1.0]);
    }

    #[test]
    fn captures_nonlinear_interactions() {
        let data = nonlinear_dataset(600, 2);
        let mut rng = Rng::seed_from_u64(3);
        let (train, test) = data.train_test_split(0.25, &mut rng);
        let mut tree = DecisionTree::default();
        tree.fit(&train, &mut rng);
        let m = RegressionMetrics::compute(&tree.predict(&test), test.targets());
        assert!(m.r2 > 0.85, "r2 {}", m.r2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = nonlinear_dataset(300, 4);
        let mut rng = Rng::seed_from_u64(5);
        let mut stump = DecisionTree::new(DecisionTreeConfig {
            max_depth: 1,
            ..Default::default()
        });
        stump.fit(&data, &mut rng);
        assert!(stump.depth() <= 1);
        assert!(stump.node_count() <= 3);
        let mut deep = DecisionTree::new(DecisionTreeConfig {
            max_depth: 8,
            ..Default::default()
        });
        deep.fit(&data, &mut rng);
        assert!(deep.depth() <= 8);
        assert!(deep.depth() > 1);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let data = nonlinear_dataset(100, 6);
        let mut rng = Rng::seed_from_u64(7);
        let mut tree = DecisionTree::new(DecisionTreeConfig {
            min_samples_leaf: 20,
            ..Default::default()
        });
        tree.fit(&data, &mut rng);
        // With >= 20 samples per leaf on 100 samples the tree must be small.
        assert!(tree.node_count() <= 9, "node_count {}", tree.node_count());
    }

    #[test]
    fn constant_targets_become_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..20 {
            d.push(vec![i as f64], 5.0).unwrap();
        }
        let mut rng = Rng::seed_from_u64(8);
        let mut tree = DecisionTree::default();
        tree.fit(&d, &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.flat().leaf_count(), 1);
        assert_eq!(tree.predict_row(&[100.0]), 5.0);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn empty_fit_yields_safe_leaf() {
        let d = Dataset::new(vec!["x".into()]);
        let mut rng = Rng::seed_from_u64(9);
        let mut tree = DecisionTree::default();
        tree.fit(&d, &mut rng);
        assert!(tree.is_fitted());
        assert_eq!(tree.predict_row(&[1.0]), 0.0);
        // Unfitted tree also predicts 0.
        let unfitted = DecisionTree::default();
        assert_eq!(unfitted.predict_row(&[1.0]), 0.0);
        assert!(unfitted.flat().is_empty());
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let data = nonlinear_dataset(400, 10);
        let mut rng = Rng::seed_from_u64(11);
        let mut tree = DecisionTree::new(DecisionTreeConfig {
            max_features: Some(1),
            ..Default::default()
        });
        tree.fit(&data, &mut rng);
        let m = RegressionMetrics::compute(&tree.predict(&data), data.targets());
        assert!(
            m.r2 > 0.5,
            "even with per-split subsampling the tree learns, r2 {}",
            m.r2
        );
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // y depends only on x1; x2 is noise.
        let mut rng = Rng::seed_from_u64(12);
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for _ in 0..300 {
            let x1 = rng.uniform(0.0, 10.0);
            let x2 = rng.uniform(0.0, 10.0);
            d.push(vec![x1, x2], x1 * 3.0).unwrap();
        }
        let mut tree = DecisionTree::default();
        tree.fit(&d, &mut rng);
        let imp = tree.feature_importance();
        assert!(imp[0] > 0.95, "signal importance {imp:?}");
        assert!(imp[1] < 0.05);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let data = nonlinear_dataset(200, 13);
        let mut t1 = DecisionTree::new(DecisionTreeConfig {
            max_features: Some(1),
            ..Default::default()
        });
        let mut t2 = t1.clone();
        let mut r1 = Rng::seed_from_u64(99);
        let mut r2 = Rng::seed_from_u64(99);
        t1.fit(&data, &mut r1);
        t2.fit(&data, &mut r2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn predict_into_matches_predict_row_and_handles_empty_batches() {
        let data = nonlinear_dataset(150, 15);
        let mut rng = Rng::seed_from_u64(16);
        let mut tree = DecisionTree::default();
        tree.fit(&data, &mut rng);
        let mut batch = Vec::new();
        tree.predict_into(data.matrix(), &mut batch);
        assert_eq!(batch.len(), data.len());
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, tree.predict_row(data.row(i)), "row {i}");
        }
        // Empty batch: output is cleared to empty, nothing panics.
        let empty = FeatureMatrix::new(2);
        tree.predict_into(&empty, &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn canonical_nodes_roundtrip_through_flat_form() {
        let data = nonlinear_dataset(200, 17);
        let mut rng = Rng::seed_from_u64(18);
        let mut tree = DecisionTree::default();
        tree.fit(&data, &mut rng);
        let nodes = tree.canonical_nodes();
        assert_eq!(nodes.len(), tree.node_count());
        // Root first, and it references in-bounds children.
        let rebuilt = FlatTree::from_nodes(&nodes).unwrap();
        assert_eq!(&rebuilt, tree.flat());
        // A corrupt node list (cycle) is rejected, not trusted.
        let cycle = vec![TreeNode::Split {
            feature: 0,
            threshold: 1.0,
            left: 0,
            right: 0,
            samples: 2,
        }];
        assert!(FlatTree::from_nodes(&cycle).is_err());
        let oob = vec![TreeNode::Split {
            feature: 0,
            threshold: 1.0,
            left: 1,
            right: 7,
            samples: 2,
        }];
        assert!(FlatTree::from_nodes(&oob).is_err());
    }

    #[test]
    fn deserialization_rejects_out_of_range_split_features() {
        let data = step_dataset();
        let mut rng = Rng::seed_from_u64(20);
        let mut tree = DecisionTree::default();
        tree.fit(&data, &mut rng);
        // Round-trips cleanly as serialized.
        let value = tree.serialize_value();
        assert_eq!(DecisionTree::deserialize_value(&value).unwrap(), tree);
        // Tamper: a split testing column 7 of a 1-feature model must be
        // rejected at load time, not panic the first prediction.
        let bad_nodes = vec![
            TreeNode::Split {
                feature: 7,
                threshold: 0.5,
                left: 1,
                right: 2,
                samples: 2,
            },
            TreeNode::Leaf {
                prediction: 1.0,
                samples: 1,
            },
            TreeNode::Leaf {
                prediction: 2.0,
                samples: 1,
            },
        ];
        let serde::Value::Map(mut entries) = value else {
            panic!("trees serialize as maps");
        };
        for (key, field) in &mut entries {
            if key.as_str() == Some("nodes") {
                *field = bad_nodes.serialize_value();
            }
        }
        let err = DecisionTree::deserialize_value(&serde::Value::Map(entries))
            .expect_err("out-of-range split feature must not load");
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn deep_chain_archives_do_not_overflow_the_stack() {
        // A 50 000-level left-leaning chain is flat JSON (indices, not
        // nesting): (de)serialization and depth bookkeeping must all be
        // iterative, and the batch walk must take the early-exit path
        // rather than 50 000 fixed passes.
        let depth = 50_000usize;
        let mut nodes = Vec::with_capacity(2 * depth + 1);
        for i in 0..depth {
            nodes.push(TreeNode::Split {
                feature: 0,
                threshold: -((i as f64) + 1.0),
                left: i + 1,
                right: depth + 1 + i,
                samples: depth - i,
            });
        }
        // Chain end, then one right leaf per split.
        nodes.push(TreeNode::Leaf {
            prediction: -1.0,
            samples: 1,
        });
        for i in 0..depth {
            nodes.push(TreeNode::Leaf {
                prediction: i as f64,
                samples: 1,
            });
        }
        let tree = FlatTree::from_nodes(&nodes).unwrap();
        assert_eq!(tree.depth(), depth);
        assert_eq!(tree.node_count(), nodes.len());
        // 0.0 > every threshold: the walk exits right at the first split.
        assert_eq!(tree.predict_row(&[0.0]), 0.0);
        // -∞ is <= every threshold: the walk runs the whole chain.
        assert_eq!(tree.predict_row(&[f64::NEG_INFINITY]), -1.0);
        let mut probes = FeatureMatrix::new(1);
        probes.push_row(&[0.0]);
        probes.push_row(&[f64::NEG_INFINITY]);
        let mut out = vec![0.0; 2];
        tree.accumulate_block(&[probes.row(0), probes.row(1)], 1.0, &mut out);
        assert_eq!(out, vec![0.0, -1.0]);
        // Re-serialization of the deep tree is iterative too.
        let reserialized = tree.to_nodes();
        assert_eq!(reserialized.len(), nodes.len());
        assert_eq!(&FlatTree::from_nodes(&reserialized).unwrap(), &tree);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn short_rows_fail_loudly() {
        let data = step_dataset();
        let mut rng = Rng::seed_from_u64(14);
        let mut tree = DecisionTree::default();
        tree.fit(&data, &mut rng);
        // A row missing the split feature is malformed input: no silent
        // zero-padding, the walk panics.
        let _ = tree.predict_row(&[]);
    }
}
