//! Regression and ranking metrics.

use serde::{Deserialize, Serialize};

/// Standard regression error metrics over a prediction batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegressionMetrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Mean absolute percentage error (targets with |y| < 1e-9 are skipped).
    pub mape: f64,
    /// Number of evaluated samples.
    pub count: usize,
}

impl RegressionMetrics {
    /// Compute metrics from predictions and ground truth.
    ///
    /// # Panics
    /// Panics if the two slices have different lengths.
    pub fn compute(predictions: &[f64], targets: &[f64]) -> RegressionMetrics {
        assert_eq!(
            predictions.len(),
            targets.len(),
            "predictions and targets must align"
        );
        let n = targets.len();
        if n == 0 {
            return RegressionMetrics {
                mae: 0.0,
                rmse: 0.0,
                r2: 0.0,
                mape: 0.0,
                count: 0,
            };
        }
        let nf = n as f64;
        let mean_y: f64 = targets.iter().sum::<f64>() / nf;
        let mut abs_sum = 0.0;
        let mut sq_sum = 0.0;
        let mut ss_tot = 0.0;
        let mut mape_sum = 0.0;
        let mut mape_n = 0usize;
        for (&p, &y) in predictions.iter().zip(targets) {
            let err = p - y;
            abs_sum += err.abs();
            sq_sum += err * err;
            ss_tot += (y - mean_y) * (y - mean_y);
            if y.abs() > 1e-9 {
                mape_sum += (err / y).abs();
                mape_n += 1;
            }
        }
        let r2 = if ss_tot > 0.0 {
            1.0 - sq_sum / ss_tot
        } else {
            0.0
        };
        RegressionMetrics {
            mae: abs_sum / nf,
            rmse: (sq_sum / nf).sqrt(),
            r2,
            mape: if mape_n > 0 {
                mape_sum / mape_n as f64
            } else {
                0.0
            },
            count: n,
        }
    }
}

/// Indices of `values` sorted ascending (rank 0 = smallest value). Ties keep
/// their original relative order, so ranking is deterministic.
pub fn ascending_rank(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// Top-k hit: do the k smallest entries of `predicted` include an index whose
/// `actual` value attains the minimum? This is the paper's Top-1/Top-2
/// accuracy primitive (does the scheduler's choice set contain an actually
/// fastest node).
///
/// Ties in `actual` all count as "best": when two nodes are actually equally
/// fastest, a scheduler that picks either one is scored as a hit, rather
/// than only the one that happens to appear first.
pub fn top_k_contains_best(predicted: &[f64], actual: &[f64], k: usize) -> bool {
    assert_eq!(predicted.len(), actual.len());
    if predicted.is_empty() || k == 0 {
        return false;
    }
    let best_actual = actual.iter().copied().fold(f64::INFINITY, f64::min);
    ascending_rank(predicted)
        .into_iter()
        .take(k)
        .any(|i| actual[i] == best_actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0, 4.0];
        let m = RegressionMetrics::compute(&y, &y);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.r2, 1.0);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.count, 4);
    }

    #[test]
    fn known_errors() {
        let pred = [2.0, 4.0];
        let y = [1.0, 2.0];
        let m = RegressionMetrics::compute(&pred, &y);
        assert!((m.mae - 1.5).abs() < 1e-12);
        assert!((m.rmse - (2.5f64).sqrt()).abs() < 1e-12);
        // Relative errors: 1/1 and 2/2 -> mean 1.0.
        assert!((m.mape - 1.0).abs() < 1e-12);
        // SS_tot = 0.5, SS_res = 5 -> r2 = 1 - 10 = -9.
        assert!((m.r2 + 9.0).abs() < 1e-12);
    }

    #[test]
    fn mean_prediction_has_zero_r2() {
        let y = [1.0, 3.0, 5.0, 7.0];
        let pred = [4.0; 4];
        let m = RegressionMetrics::compute(&pred, &y);
        assert!(m.r2.abs() < 1e-12);
    }

    #[test]
    fn empty_and_constant_targets() {
        let m = RegressionMetrics::compute(&[], &[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.r2, 0.0);
        let m2 = RegressionMetrics::compute(&[2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(m2.r2, 0.0, "constant targets have zero total variance");
        // Zero targets are skipped by MAPE.
        let m3 = RegressionMetrics::compute(&[1.0, 5.0], &[0.0, 5.0]);
        assert_eq!(m3.mape, 0.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        RegressionMetrics::compute(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ranks_are_stable_and_ascending() {
        let values = [3.0, 1.0, 2.0, 1.0];
        assert_eq!(ascending_rank(&values), vec![1, 3, 2, 0]);
        assert_eq!(ascending_rank(&[]), Vec::<usize>::new());
    }

    #[test]
    fn top_k_semantics() {
        // actual fastest is index 2; prediction ranks it second.
        let actual = [10.0, 12.0, 5.0, 9.0];
        let predicted = [7.0, 11.0, 8.0, 12.0];
        assert!(!top_k_contains_best(&predicted, &actual, 1));
        assert!(top_k_contains_best(&predicted, &actual, 2));
        assert!(top_k_contains_best(&predicted, &actual, 4));
        assert!(!top_k_contains_best(&predicted, &actual, 0));
        assert!(!top_k_contains_best(&[], &[], 1));
        // Perfect prediction always hits at k=1.
        assert!(top_k_contains_best(&actual, &actual, 1));
    }

    #[test]
    fn top_k_counts_any_tied_best_as_a_hit() {
        // Indices 0 and 2 tie for actually-fastest. A prediction that puts
        // index 2 first must score a Top-1 hit even though index 0 is the
        // first index attaining the minimum.
        let actual = [5.0, 9.0, 5.0, 7.0];
        let predicted = [3.0, 2.0, 1.0, 4.0];
        assert!(top_k_contains_best(&predicted, &actual, 1));
        // Picking the other tied node first hits too.
        let predicted_other = [1.0, 2.0, 3.0, 4.0];
        assert!(top_k_contains_best(&predicted_other, &actual, 1));
        // A prediction preferring a genuinely slower node still misses.
        let predicted_miss = [3.0, 1.0, 4.0, 2.0];
        assert!(!top_k_contains_best(&predicted_miss, &actual, 1));
        // ...but k=2 reaches a tied-best node (ranks: idx 1 then idx 3; idx 3
        // is not best; widen to k=3 which includes idx 0).
        assert!(!top_k_contains_best(&predicted_miss, &actual, 2));
        assert!(top_k_contains_best(&predicted_miss, &actual, 3));
        // All-equal actuals: every pick is a hit.
        assert!(top_k_contains_best(&[9.0, 1.0], &[4.0, 4.0], 1));
    }
}
