//! Linear regression (ordinary least squares / ridge).
//!
//! Solved with normal equations: `(XᵀX + λI) w = Xᵀy`, Gaussian elimination
//! with partial pivoting. Features are standardized internally (fit-time
//! scaler) so the ridge penalty treats all columns equally and the solver is
//! well conditioned on telemetry columns with wildly different scales (bytes
//! vs. load averages vs. seconds).

use crate::data::{Dataset, FeatureMatrix, Scaler};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the linear model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressionConfig {
    /// L2 regularization strength (0 = ordinary least squares).
    pub l2: f64,
    /// Whether to standardize features before fitting.
    pub standardize: bool,
}

impl Default for LinearRegressionConfig {
    fn default() -> Self {
        LinearRegressionConfig {
            l2: 1e-6,
            standardize: true,
        }
    }
}

/// A fitted (or not yet fitted) linear regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    config: LinearRegressionConfig,
    /// Weights over (possibly standardized) features.
    weights: Vec<f64>,
    intercept: f64,
    scaler: Option<Scaler>,
    fitted: bool,
}

/// Errors raised by model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set is empty.
    EmptyDataset,
    /// The normal-equation system is singular and could not be solved.
    SingularSystem,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset => write!(f, "cannot fit on an empty dataset"),
            FitError::SingularSystem => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new(LinearRegressionConfig::default())
    }
}

impl LinearRegression {
    /// Create an unfitted model.
    pub fn new(config: LinearRegressionConfig) -> Self {
        LinearRegression {
            config,
            weights: Vec::new(),
            intercept: 0.0,
            scaler: None,
            fitted: false,
        }
    }

    /// Fitted weights (in the standardized feature space when standardization
    /// is enabled).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Whether `fit` has been called successfully.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// Fit the model to a dataset.
    pub fn fit(&mut self, data: &Dataset) -> Result<(), FitError> {
        if data.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let (x, scaler): (FeatureMatrix, Option<Scaler>) = if self.config.standardize {
            let scaler = Scaler::fit(data);
            (scaler.transform_matrix(data.matrix()), Some(scaler))
        } else {
            (data.matrix().clone(), None)
        };
        let y = data.targets();
        let p = data.n_features() + 1; // + intercept column

        // Build the normal equations A w = b with A = XᵀX + λI, b = Xᵀy.
        let mut a = vec![vec![0.0f64; p]; p];
        let mut b = vec![0.0f64; p];
        for (row, &yi) in x.rows().zip(y) {
            // Augmented row: [1, x...]
            for i in 0..p {
                let xi = if i == 0 { 1.0 } else { row[i - 1] };
                b[i] += xi * yi;
                for j in 0..p {
                    let xj = if j == 0 { 1.0 } else { row[j - 1] };
                    a[i][j] += xi * xj;
                }
            }
        }
        // Ridge penalty on the non-intercept diagonal.
        for (i, row) in a.iter_mut().enumerate().skip(1) {
            row[i] += self.config.l2.max(0.0) * x.n_rows() as f64;
        }

        let solution = solve_linear_system(&mut a, &mut b).ok_or(FitError::SingularSystem)?;
        self.intercept = solution[0];
        self.weights = solution[1..].to_vec();
        self.scaler = scaler;
        self.fitted = true;
        Ok(())
    }

    /// The affine prediction over an already-standardized row.
    #[inline]
    fn dot(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    /// The affine prediction over a raw row, standardizing element-wise on
    /// the fly. Each term is `w * ((x - m) / s)` — the same operations in the
    /// same order as transforming the row first and calling [`Self::dot`],
    /// so results are bit-identical, without a scratch buffer.
    #[inline]
    fn dot_standardized(&self, scaler: &Scaler, row: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .zip(scaler.means())
                .zip(scaler.stds())
                .map(|(((w, x), m), s)| w * ((x - m) / s))
                .sum::<f64>()
    }

    /// Predict the target for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        match &self.scaler {
            Some(s) => self.dot_standardized(s, row),
            None => self.dot(row),
        }
    }

    /// Predict every row of a feature matrix into a reused output buffer.
    /// Standardization is fused into the dot product, so steady-state
    /// batches allocate nothing.
    pub fn predict_into(&self, x: &FeatureMatrix, out: &mut Vec<f64>) {
        out.clear();
        if !self.fitted {
            out.resize(x.n_rows(), 0.0);
            return;
        }
        out.reserve(x.n_rows());
        match &self.scaler {
            Some(s) => out.extend(x.rows().map(|row| self.dot_standardized(s, row))),
            None => out.extend(x.rows().map(|row| self.dot(row))),
        }
    }

    /// Predict the targets for every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(data.matrix(), &mut out);
        out
    }
}

/// Solve `A x = b` in place by Gaussian elimination with partial pivoting.
/// Returns `None` when the matrix is singular.
fn solve_linear_system(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col][col].abs();
        for (row, a_row) in a.iter().enumerate().skip(col + 1) {
            if a_row[col].abs() > best {
                best = a_row[col].abs();
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below. Split so the pivot row and target rows can be
        // borrowed simultaneously.
        let (pivot_rows, target_rows) = a.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for (offset, target_row) in target_rows.iter_mut().enumerate() {
            let factor = target_row[col] / pivot_row[col];
            if factor == 0.0 {
                continue;
            }
            for (t, p) in target_row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *t -= factor * p;
            }
            b[col + 1 + offset] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i][j] * x[j];
        }
        x[i] = sum / a[i][i];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RegressionMetrics;
    use simcore::rng::Rng;

    fn linear_dataset(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["x1".into(), "x2".into(), "x3".into()]);
        for _ in 0..n {
            let x1 = rng.uniform(0.0, 10.0);
            let x2 = rng.uniform(-5.0, 5.0);
            let x3 = rng.uniform(0.0, 1.0);
            let y = 3.0 + 2.0 * x1 - 1.5 * x2 + 0.5 * x3 + rng.normal(0.0, noise);
            d.push(vec![x1, x2, x3], y).unwrap();
        }
        d
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let data = linear_dataset(200, 0.0, 1);
        let mut model = LinearRegression::new(LinearRegressionConfig {
            l2: 0.0,
            standardize: true,
        });
        assert!(!model.is_fitted());
        model.fit(&data).unwrap();
        assert!(model.is_fitted());
        let preds = model.predict(&data);
        let m = RegressionMetrics::compute(&preds, data.targets());
        assert!(m.rmse < 1e-6, "rmse {}", m.rmse);
        assert!(m.r2 > 0.999999);
    }

    #[test]
    fn noisy_fit_is_reasonable_and_generalizes() {
        let data = linear_dataset(500, 1.0, 2);
        let mut rng = Rng::seed_from_u64(3);
        let (train, test) = data.train_test_split(0.3, &mut rng);
        let mut model = LinearRegression::default();
        model.fit(&train).unwrap();
        let m = RegressionMetrics::compute(&model.predict(&test), test.targets());
        assert!(m.r2 > 0.9, "r2 {}", m.r2);
        assert!(m.rmse < 2.0, "rmse {}", m.rmse);
    }

    #[test]
    fn unstandardized_fit_also_works() {
        let data = linear_dataset(200, 0.0, 4);
        let mut model = LinearRegression::new(LinearRegressionConfig {
            l2: 0.0,
            standardize: false,
        });
        model.fit(&data).unwrap();
        // Without standardization the raw weights are interpretable.
        assert!((model.weights()[0] - 2.0).abs() < 1e-6);
        assert!((model.weights()[1] + 1.5).abs() < 1e-6);
        assert!((model.weights()[2] - 0.5).abs() < 1e-6);
        assert!((model.intercept() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let mut model = LinearRegression::default();
        let empty = Dataset::new(vec!["x".into()]);
        assert_eq!(model.fit(&empty), Err(FitError::EmptyDataset));
        assert!(format!("{}", FitError::EmptyDataset).contains("empty"));
        assert!(format!("{}", FitError::SingularSystem).contains("singular"));
    }

    #[test]
    fn unfitted_model_predicts_zero() {
        let model = LinearRegression::default();
        assert_eq!(model.predict_row(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn duplicate_feature_columns_are_handled_by_ridge() {
        // Perfectly collinear features would make OLS singular; ridge keeps it solvable.
        let mut d = Dataset::new(vec!["a".into(), "a_copy".into()]);
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..100 {
            let x = rng.uniform(0.0, 1.0);
            d.push(vec![x, x], 5.0 * x + 1.0).unwrap();
        }
        let mut model = LinearRegression::new(LinearRegressionConfig {
            l2: 1e-3,
            standardize: true,
        });
        model.fit(&d).unwrap();
        let m = RegressionMetrics::compute(&model.predict(&d), d.targets());
        assert!(m.r2 > 0.99);
    }

    #[test]
    fn constant_feature_does_not_break_fit() {
        let mut d = Dataset::new(vec!["x".into(), "const".into()]);
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..50 {
            let x = rng.uniform(0.0, 1.0);
            d.push(vec![x, 42.0], 2.0 * x).unwrap();
        }
        let mut model = LinearRegression::default();
        model.fit(&d).unwrap();
        let m = RegressionMetrics::compute(&model.predict(&d), d.targets());
        assert!(m.r2 > 0.999);
    }

    #[test]
    fn solver_detects_singularity() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert_eq!(solve_linear_system(&mut a, &mut b), None);
        let mut a2 = vec![vec![2.0, 0.0], vec![0.0, 3.0]];
        let mut b2 = vec![4.0, 9.0];
        let x = solve_linear_system(&mut a2, &mut b2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
