//! Online statistics, summaries and histograms.
//!
//! These utilities back the telemetry substrate (gauges aggregated over
//! scrape windows), the experiment harness (per-node latency / bandwidth
//! figures) and the ML metrics (error summaries over cross-validation folds).

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance accumulator (Welford's algorithm)
/// that also tracks min and max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 when fewer than one observation.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (n − 1 denominator), or 0.0 when fewer than two.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// A five-number-style summary of a batch of observations, including selected
/// percentiles. Produced by [`Summary::from_values`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of finite observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary from a batch of values. Non-finite entries are
    /// dropped; an empty (or all non-finite) batch yields an all-zero summary.
    pub fn from_values(values: &[f64]) -> Summary {
        let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p25: 0.0,
                p50: 0.0,
                p75: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let mut stats = OnlineStats::new();
        for &x in &v {
            stats.push(x);
        }
        Summary {
            count: v.len(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: v[0],
            p25: percentile_sorted(&v, 0.25),
            p50: percentile_sorted(&v, 0.50),
            p75: percentile_sorted(&v, 0.75),
            p95: percentile_sorted(&v, 0.95),
            p99: percentile_sorted(&v, 0.99),
            max: v[v.len() - 1],
        }
    }
}

/// Linear-interpolated percentile of an already sorted slice (`q` in `[0,1]`).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Exponentially weighted moving average, used for smoothed rate gauges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing factor `alpha` in `(0, 1]`; larger alpha
    /// weights recent observations more heavily.
    pub fn new(alpha: f64) -> Self {
        Ewma {
            alpha: alpha.clamp(1e-6, 1.0),
            value: None,
        }
    }

    /// Feed one observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current value (`None` until the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// A fixed-bucket linear histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `buckets` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Per-bucket counts (excludes under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile from bucket midpoints (`q` in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil() as u64;
        let mut cumulative = self.underflow;
        if cumulative >= target {
            return self.lo;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return self.lo + width * (i as f64 + 0.5);
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_naive_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_ignore_non_finite() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut whole = OnlineStats::new();
        for &v in &values {
            whole.push(v);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &v in &values[..400] {
            left.push(v);
        }
        for &v in &values[400..] {
            right.push(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(1.0);
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 2.0);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn summary_percentiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_values(&values);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::from_values(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        let s2 = Summary::from_values(&[f64::NAN]);
        assert_eq!(s2.count, 0);
    }

    #[test]
    fn percentile_sorted_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 1.0), 40.0);
        assert!((percentile_sorted(&v, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        for _ in 0..200 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_value_is_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.update(4.0), 4.0);
        assert!((e.update(8.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.buckets().iter().sum::<u64>(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        let median = h.quantile(0.5);
        assert!((40.0..=60.0).contains(&median), "median {median}");
        h.record(-5.0);
        h.record(1000.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_ignores_nan() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }
}
