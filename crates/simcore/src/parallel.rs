//! Deterministic fork/join helpers built on crossbeam scoped threads.
//!
//! The workspace uses data parallelism in three places:
//!
//! 1. running independent simulation replications (the 3600-sample dataset of
//!    the paper is 600 batch runs × 6 candidate nodes),
//! 2. training the trees of a random forest,
//! 3. evaluating candidate splits / cross-validation folds.
//!
//! All three are embarrassingly parallel maps over an index range. The helper
//! below distributes indices over a fixed number of worker threads and writes
//! results back **in index order**, so the output is identical to a sequential
//! run — parallelism never changes results, only wall-clock time (this is the
//! determinism discipline the HPC guides call for).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the number of available CPUs, capped at 16 so that
/// test machines with many cores don't oversubscribe tiny workloads.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Apply `f` to every index in `0..n`, returning results in index order.
///
/// `f` must be `Sync` (it is shared across workers) and is called exactly once
/// per index. Work is distributed dynamically via an atomic cursor, so uneven
/// per-item cost (e.g. simulation replications of different lengths) balances
/// automatically.
pub fn parallel_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                // ordering: Relaxed — the counter only claims work indices;
                // results flow through the per-slot mutexes and scope join.
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let value = f(idx);
                *slots[idx].lock() = Some(value);
            });
        }
    })
    .expect("worker threads must not panic");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every index is processed exactly once")
        })
        .collect()
}

/// Apply `f` to every index in `0..n` with the default worker count.
pub fn parallel_map_auto<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map(n, default_workers(), f)
}

/// Parallel map followed by an ordered fold. Equivalent to
/// `parallel_map(...).into_iter().fold(init, fold)` but spelled out for
/// readability at call sites that reduce large outputs.
pub fn parallel_map_reduce<T, A, F, R>(n: usize, workers: usize, f: F, init: A, fold: R) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    parallel_map(n, workers, f).into_iter().fold(init, fold)
}

/// Split `0..n` into `chunks` nearly equal contiguous ranges. The first
/// `n % chunks` ranges get one extra element. Useful for static partitioning
/// when per-item cost is uniform.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_matches_sequential() {
        let f = |i: usize| (i as u64) * (i as u64) + 1;
        let seq: Vec<u64> = (0..500).map(f).collect();
        for workers in [1, 2, 4, 8] {
            let par = parallel_map(500, workers, f);
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let out: Vec<u32> = parallel_map(0, 4, |_| 1u32);
        assert!(out.is_empty());
        let out = parallel_map(1, 8, |i| i + 10);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn every_index_called_exactly_once() {
        let calls = AtomicU64::new(0);
        let n = 1000;
        let out = parallel_map(n, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), n as u64);
        assert_eq!(out, (0..n).collect::<Vec<usize>>());
    }

    #[test]
    fn map_reduce_orders_fold() {
        let total = parallel_map_reduce(100, 4, |i| i as u64, 0u64, |acc, x| acc + x);
        assert_eq!(total, 4950);
        // Ordered fold: concatenation must preserve index order.
        let joined = parallel_map_reduce(
            10,
            3,
            |i| i.to_string(),
            String::new(),
            |mut acc, s| {
                acc.push_str(&s);
                acc
            },
        );
        assert_eq!(joined, "0123456789");
    }

    #[test]
    fn chunk_ranges_cover_everything_without_overlap() {
        for n in [0usize, 1, 7, 16, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, chunks);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i} (n={n}, chunks={chunks})");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap (n={n}, chunks={chunks})");
                if n > 0 {
                    assert!(ranges.len() <= chunks.max(1));
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "chunks should be balanced");
                }
            }
        }
        assert!(chunk_ranges(5, 0).is_empty());
    }

    #[test]
    fn default_workers_is_sane() {
        let w = default_workers();
        assert!((1..=16).contains(&w));
    }
}
