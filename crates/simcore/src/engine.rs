//! The discrete-event engine.
//!
//! Applications model their domain as a [`World`]: a state machine with an
//! associated event type. The [`Engine`] owns the clock and the event queue,
//! pops events in time order and hands them to the world together with a
//! [`Schedule`] handle through which the handler may enqueue follow-up events.
//!
//! ```
//! use simcore::prelude::*;
//!
//! /// Counts down from `n` with one event per tick.
//! struct Countdown { remaining: u32, finished_at: Option<SimTime> }
//!
//! enum Tick { Step }
//!
//! impl World for Countdown {
//!     type Event = Tick;
//!     fn handle(&mut self, now: SimTime, _ev: Tick, sched: &mut simcore::engine::Schedule<Tick>) {
//!         if self.remaining == 0 {
//!             self.finished_at = Some(now);
//!         } else {
//!             self.remaining -= 1;
//!             sched.at(now + SimDuration::from_secs(1), Tick::Step);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Countdown { remaining: 3, finished_at: None });
//! engine.schedule(SimTime::ZERO, Tick::Step);
//! engine.run();
//! assert_eq!(engine.world().finished_at, Some(SimTime::from_secs(3)));
//! ```

use crate::event::EventQueue;
use crate::time::SimTime;

/// Handle given to event handlers for scheduling follow-up events.
#[derive(Debug)]
pub struct Schedule<E> {
    pending: Vec<(SimTime, E)>,
    now: SimTime,
    stop_requested: bool,
}

impl<E> Schedule<E> {
    fn new(now: SimTime) -> Self {
        Schedule {
            pending: Vec::new(),
            now,
            stop_requested: false,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time. Times in the past are clamped
    /// to "now" so causality is never violated.
    pub fn at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.now);
        self.pending.push((t, event));
    }

    /// Schedule an event after a delay from the current time.
    pub fn after(&mut self, delay: crate::time::SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedule an event at the current instant (fires after already queued
    /// events for this instant, preserving FIFO order).
    pub fn immediately(&mut self, event: E) {
        self.pending.push((self.now, event));
    }

    /// Ask the engine to stop after the current handler returns.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// A simulated world: domain state plus an event handler.
pub trait World {
    /// The event vocabulary of this world.
    type Event;

    /// Handle one event. `now` is the event's timestamp; `sched` is used to
    /// enqueue follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Schedule<Self::Event>);
}

/// Outcome of a single [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// An event was processed.
    Progressed,
    /// The queue is empty; the simulation is finished.
    Idle,
    /// A handler requested a stop.
    Stopped,
    /// The configured event-count or time horizon was reached.
    HorizonReached,
}

/// The discrete-event engine: clock + queue + world.
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    processed: u64,
    horizon: Option<SimTime>,
    max_events: Option<u64>,
    stopped: bool,
}

impl<W: World> Engine<W> {
    /// Create an engine wrapping `world`, with the clock at zero.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            horizon: None,
            max_events: None,
            stopped: false,
        }
    }

    /// Set a time horizon: events scheduled strictly after it are not processed.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Set a cap on the number of processed events (runaway guard).
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup and inspection between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the engine and return the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedule an event from outside a handler (setup code, tests).
    pub fn schedule(&mut self, time: SimTime, event: W::Event) {
        self.queue.push(time.max(self.now), event);
    }

    /// Process a single event.
    pub fn step(&mut self) -> StepResult {
        if self.stopped {
            return StepResult::Stopped;
        }
        if let Some(max) = self.max_events {
            if self.processed >= max {
                return StepResult::HorizonReached;
            }
        }
        let Some(next_time) = self.queue.peek_time() else {
            return StepResult::Idle;
        };
        if let Some(h) = self.horizon {
            if next_time > h {
                return StepResult::HorizonReached;
            }
        }
        let entry = self.queue.pop().expect("peeked entry must exist");
        debug_assert!(entry.time >= self.now, "time must be monotone");
        self.now = entry.time;
        let mut sched = Schedule::new(self.now);
        self.world.handle(self.now, entry.event, &mut sched);
        for (t, e) in sched.pending {
            self.queue.push(t, e);
        }
        if sched.stop_requested {
            self.stopped = true;
        }
        self.processed += 1;
        StepResult::Progressed
    }

    /// Run until the queue drains, a handler stops the engine, or a horizon /
    /// event cap is hit. Returns the final step result.
    pub fn run(&mut self) -> StepResult {
        loop {
            match self.step() {
                StepResult::Progressed => continue,
                other => return other,
            }
        }
    }

    /// Run until the given time (inclusive). Events after `until` stay queued.
    pub fn run_until(&mut self, until: SimTime) -> StepResult {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => match self.step() {
                    StepResult::Progressed => continue,
                    other => return other,
                },
                Some(_) => {
                    // Advance the clock to the requested time even though no
                    // event fires exactly then — callers use this to sample
                    // telemetry at fixed wall-clock points.
                    self.now = self.now.max(until);
                    return StepResult::HorizonReached;
                }
                None => {
                    self.now = self.now.max(until);
                    return StepResult::Idle;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Counter {
        fired: Vec<(SimTime, u32)>,
        respawn: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Fire(u32),
    }

    impl World for Counter {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Schedule<Ev>) {
            let Ev::Fire(id) = event;
            self.fired.push((now, id));
            if id < self.respawn {
                sched.after(SimDuration::from_secs(1), Ev::Fire(id + 1));
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut engine = Engine::new(Counter {
            fired: vec![],
            respawn: 4,
        });
        engine.schedule(SimTime::ZERO, Ev::Fire(0));
        let result = engine.run();
        assert_eq!(result, StepResult::Idle);
        assert_eq!(engine.processed(), 5);
        assert_eq!(engine.now(), SimTime::from_secs(4));
        let ids: Vec<u32> = engine.world().fired.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn horizon_stops_processing() {
        let mut engine = Engine::new(Counter {
            fired: vec![],
            respawn: 100,
        })
        .with_horizon(SimTime::from_secs(3));
        engine.schedule(SimTime::ZERO, Ev::Fire(0));
        let result = engine.run();
        assert_eq!(result, StepResult::HorizonReached);
        assert_eq!(engine.world().fired.len(), 4); // t = 0,1,2,3
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn max_events_guard() {
        let mut engine = Engine::new(Counter {
            fired: vec![],
            respawn: u32::MAX,
        })
        .with_max_events(10);
        engine.schedule(SimTime::ZERO, Ev::Fire(0));
        assert_eq!(engine.run(), StepResult::HorizonReached);
        assert_eq!(engine.processed(), 10);
    }

    struct Stopper {
        handled: u32,
    }
    enum StopEv {
        Tick,
        Stop,
    }
    impl World for Stopper {
        type Event = StopEv;
        fn handle(&mut self, _now: SimTime, event: StopEv, sched: &mut Schedule<StopEv>) {
            match event {
                StopEv::Tick => {
                    self.handled += 1;
                    sched.immediately(StopEv::Tick);
                    if self.handled == 5 {
                        sched.immediately(StopEv::Stop);
                    }
                }
                StopEv::Stop => sched.stop(),
            }
        }
    }

    #[test]
    fn stop_request_halts_even_with_pending_events() {
        let mut engine = Engine::new(Stopper { handled: 0 });
        engine.schedule(SimTime::ZERO, StopEv::Tick);
        let result = engine.run();
        assert_eq!(result, StepResult::Stopped);
        assert!(engine.pending() > 0);
        assert_eq!(
            engine.world().handled,
            6,
            "stop fires after one more tick (FIFO at same instant)"
        );
    }

    #[test]
    fn run_until_advances_clock_to_requested_time() {
        let mut engine = Engine::new(Counter {
            fired: vec![],
            respawn: 2,
        });
        engine.schedule(SimTime::from_secs(10), Ev::Fire(0));
        let result = engine.run_until(SimTime::from_secs(5));
        assert_eq!(result, StepResult::HorizonReached);
        assert_eq!(engine.now(), SimTime::from_secs(5));
        assert_eq!(engine.world().fired.len(), 0);
        // Continue to drain.
        engine.run();
        assert_eq!(engine.world().fired.len(), 3);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        struct PastWorld {
            times: Vec<SimTime>,
        }
        enum PEv {
            First,
            Second,
        }
        impl World for PastWorld {
            type Event = PEv;
            fn handle(&mut self, now: SimTime, event: PEv, sched: &mut Schedule<PEv>) {
                self.times.push(now);
                if matches!(event, PEv::First) {
                    // Try to schedule in the past: must clamp to `now`.
                    sched.at(SimTime::ZERO, PEv::Second);
                }
            }
        }
        let mut engine = Engine::new(PastWorld { times: vec![] });
        engine.schedule(SimTime::from_secs(3), PEv::First);
        engine.run();
        assert_eq!(
            engine.world().times,
            vec![SimTime::from_secs(3), SimTime::from_secs(3)]
        );
    }
}
