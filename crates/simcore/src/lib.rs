//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the `netsched` workspace. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a totally ordered simulated clock with
//!   nanosecond resolution stored as `u64` ticks (no floating point drift in
//!   the event queue ordering).
//! * [`rng`] — a seedable, splittable pseudo-random number generator family
//!   (SplitMix64 for seeding, Xoshiro256** for streams) with the usual
//!   distributions (uniform, normal, exponential, log-normal, Pareto) so every
//!   experiment in the workspace is reproducible from a single `u64` seed.
//! * [`event`] / [`engine`] — a generic discrete-event engine: applications
//!   define an event type, implement [`engine::World`], and the engine drains
//!   a time-ordered queue, letting handlers schedule follow-up events.
//! * [`stats`] — online statistics (Welford), summaries, histograms and
//!   exponentially weighted moving averages used by the telemetry substrate.
//! * [`parallel`] — a small crossbeam-based fork/join helper used to run
//!   independent simulation replications and to train tree ensembles in
//!   parallel while keeping results deterministic (ordered reduction).
//!
//! The engine is intentionally minimal: the network substrate (`simnet`), the
//! mini-Kubernetes control plane (`cluster`) and the Spark-like workload model
//! (`sparksim`) all build their own event vocabularies on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Engine, StepResult, World};
pub use event::{EventEntry, EventQueue};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::engine::{Engine, StepResult, World};
    pub use crate::event::{EventEntry, EventQueue};
    pub use crate::rng::Rng;
    pub use crate::stats::{Histogram, OnlineStats, Summary};
    pub use crate::time::{SimDuration, SimTime};
}
