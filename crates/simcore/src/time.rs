//! Simulated time.
//!
//! Time is represented as an integer number of nanoseconds since the start of
//! the simulation. Using integers (rather than `f64` seconds) keeps the event
//! queue ordering exact and makes simulations bit-for-bit reproducible across
//! platforms and optimization levels.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An instant on the simulated clock (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimTime(0)
        } else {
            SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
        }
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since simulation start as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
        }
    }

    /// Construct from fractional milliseconds. Negative values clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1_000.0)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration in milliseconds as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// True when the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative floating point factor (saturating).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if factor <= 0.0 || !factor.is_finite() {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < NANOS_PER_MILLI {
            write!(f, "{}ns", self.0)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * NANOS_PER_MILLI);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7 * NANOS_PER_MICRO);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nonfinite_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_behaves() {
        let t0 = SimTime::from_secs(1);
        let t1 = t0 + SimDuration::from_millis(250);
        assert_eq!(t1.as_nanos(), 1_250 * NANOS_PER_MILLI);
        assert_eq!((t1 - t0).as_millis_f64(), 250.0);
        // saturating subtraction of a later time yields zero
        assert_eq!((t0 - t1), SimDuration::ZERO);
        let mut d = SimDuration::from_secs(2);
        d += SimDuration::from_secs(1);
        assert_eq!(d.as_secs_f64(), 3.0);
        d -= SimDuration::from_secs(5);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_saturates_and_clamps() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.mul_f64(0.5).as_millis_f64(), 500.0);
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(d.mul_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert!(a < b);
        assert!(SimTime::MAX > b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(42)), "42ns");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }

    #[test]
    fn checked_and_saturating_add() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimTime::MAX
        );
        let t = SimTime::from_secs(1);
        assert_eq!(
            t.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(2))
        );
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(4);
        assert_eq!(late.duration_since(early).as_secs_f64(), 3.0);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }
}
