//! Time-ordered event queue.
//!
//! The queue is a binary heap keyed by `(time, sequence)` where the sequence
//! number breaks ties in insertion order. Deterministic tie-breaking matters:
//! two events scheduled for the same instant must always be delivered in the
//! same order regardless of heap internals, or replicated simulations would
//! diverge.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue: the scheduled time, a monotonically increasing
/// sequence number (for deterministic FIFO tie-breaking) and the payload.
#[derive(Debug, Clone)]
pub struct EventEntry<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number; earlier insertions fire first on ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for EventEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for EventEntry<E> {}

impl<E> PartialOrd for EventEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for EventEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<EventEntry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Returns the sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(EventEntry { time, seq, event });
        seq
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<EventEntry<E>> {
        self.heap.pop()
    }

    /// Peek at the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_and_counts() {
        let mut q = EventQueue::with_capacity(16);
        let t0 = SimTime::ZERO;
        for i in 0..10u64 {
            q.push(t0 + SimDuration::from_millis(i), i);
        }
        assert_eq!(q.scheduled_count(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(
            q.scheduled_count(),
            10,
            "scheduled_count counts lifetime pushes"
        );
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 10u32);
        q.push(SimTime::from_secs(1), 1u32);
        assert_eq!(q.pop().unwrap().event, 1);
        q.push(SimTime::from_secs(5), 5u32);
        q.push(SimTime::from_secs(2), 2u32);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 5);
        assert_eq!(q.pop().unwrap().event, 10);
        assert!(q.pop().is_none());
    }
}
