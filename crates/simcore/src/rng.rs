//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (background load arrival,
//! task-duration jitter, bootstrap sampling in the random forest, ...) draws
//! from this module so that a single `u64` master seed reproduces an entire
//! experiment bit-for-bit.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator used to expand a seed into
//!   the 256-bit state required by Xoshiro, and for cheap one-off draws.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna),
//!   fast, high quality and trivially *splittable* via [`Rng::split`], which
//!   hands child components statistically independent streams.

use serde::{Deserialize, Serialize};

/// SplitMix64 generator. Mainly used to seed [`Xoshiro256StarStar`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** — the main deterministic generator used across the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The main RNG handle used throughout the workspace.
///
/// `Rng` wraps [`Xoshiro256StarStar`] and adds distribution sampling helpers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rng {
    inner: Xoshiro256StarStar,
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Xoshiro256StarStar {
    /// Seed the generator. The seed is expanded with SplitMix64 as recommended
    /// by the algorithm authors; a zero state is impossible by construction.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Jump the state forward by 2^128 draws, producing a statistically
    /// independent stream (used by [`Rng::split`]).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &j in JUMP.iter() {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl Rng {
    /// Create an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derive a child RNG with an independent stream.
    ///
    /// The child takes the *jumped* state, while `self` continues from its
    /// current state, so repeated splits yield pairwise independent streams.
    pub fn split(&mut self) -> Rng {
        let mut child = self.inner.clone();
        child.jump();
        // Advance the parent a little so parent/child don't share a prefix.
        self.inner.next_u64();
        Rng {
            inner: child,
            gauss_spare: None,
        }
    }

    /// Derive a child RNG keyed by an arbitrary stream id. Deterministic in
    /// `(self state, stream)` but different streams give different children.
    pub fn stream(&self, stream: u64) -> Rng {
        let mut sm = SplitMix64::new(self.inner.s[0] ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut mixed = Xoshiro256StarStar {
            s: [
                sm.next_u64() ^ self.inner.s[1],
                sm.next_u64() ^ self.inner.s[2],
                sm.next_u64() ^ self.inner.s[3],
                sm.next_u64() ^ self.inner.s[0].rotate_left(13),
            ],
        };
        // Avoid an all-zero state (astronomically unlikely, but cheap to guard).
        if mixed.s.iter().all(|&x| x == 0) {
            mixed.s[0] = 0xDEAD_BEEF_CAFE_F00D;
        }
        Rng {
            inner: mixed,
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection-free-ish method.
    /// Returns 0 when `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Widening multiply keeps the modulo bias negligible for the sizes we use,
        // with an explicit rejection loop for exactness.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal draw (Box–Muller with caching of the spare value).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box-Muller transform.
        let u1 = loop {
            let u = self.next_f64();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// Normal draw truncated below at `lo` (simple resampling, falls back to
    /// `lo` after a bounded number of attempts to guarantee termination).
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, lo: f64) -> f64 {
        for _ in 0..64 {
            let x = self.normal(mean, std_dev);
            if x >= lo {
                return x;
            }
        }
        lo
    }

    /// Exponential draw with the given rate parameter (events per unit time).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Log-normal draw parameterized by the mean/std of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma.max(0.0) * self.standard_normal()).exp()
    }

    /// Pareto draw with scale `x_m > 0` and shape `alpha > 0` (heavy tails for
    /// flow sizes and stragglers).
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        x_m / u.powf(1.0 / alpha.max(1e-9))
    }

    /// Sample an index from a slice of non-negative weights. Returns `None`
    /// for an empty slice or all-zero weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if weights.is_empty() || total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating point slack: return the last positive-weight index.
        weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
    }

    /// Choose a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range_usize(0, items.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir when `k < n`,
    /// the full shuffled range otherwise). Result order is unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            return all;
        }
        // Reservoir sampling (Algorithm R).
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.gen_range_usize(0, i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xoshiro_reference_values_differ_by_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.uniform(5.0, 10.0);
            assert!((5.0..10.0).contains(&y));
        }
        assert_eq!(rng.uniform(3.0, 3.0), 3.0);
        assert_eq!(rng.uniform(3.0, 1.0), 3.0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        assert_eq!(rng.gen_range(0), 0);
        assert_eq!(rng.gen_range(1), 0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = rng.normal(10.0, 2.0);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 100_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(rng.exponential(0.0).is_infinite());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_prefers_heavier_weights() {
        let mut rng = Rng::seed_from_u64(13);
        let weights = [0.0, 1.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 5);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = Rng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng::seed_from_u64(19);
        let sample = rng.sample_indices(100, 10);
        assert_eq!(sample.len(), 10);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&i| i < 100));
        assert_eq!(rng.sample_indices(5, 10).len(), 5);
    }

    #[test]
    fn split_streams_are_independent_but_deterministic() {
        let mut parent_a = Rng::seed_from_u64(99);
        let mut parent_b = Rng::seed_from_u64(99);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        for _ in 0..64 {
            assert_eq!(child_a.next_u64(), child_b.next_u64());
            assert_eq!(parent_a.next_u64(), parent_b.next_u64());
        }
        // Parent and child streams differ from one another.
        let mut p = Rng::seed_from_u64(99);
        let mut c = p.split();
        let pv: Vec<u64> = (0..16).map(|_| p.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_ne!(pv, cv);
    }

    #[test]
    fn keyed_streams_differ() {
        let rng = Rng::seed_from_u64(123);
        let mut s1 = rng.stream(1);
        let mut s2 = rng.stream(2);
        let v1: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..16).map(|_| s2.next_u64()).collect();
        assert_ne!(v1, v2);
        // Same key twice gives the same stream.
        let mut s1b = rng.stream(1);
        let v1b: Vec<u64> = (0..16).map(|_| s1b.next_u64()).collect();
        assert_eq!(v1, v1b);
    }

    #[test]
    fn normal_at_least_respects_floor() {
        let mut rng = Rng::seed_from_u64(31);
        for _ in 0..1000 {
            assert!(rng.normal_at_least(1.0, 5.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(37);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(-3.0)));
        assert!((0..100).all(|_| rng.gen_bool(7.0)));
    }
}
