//! Sites, nodes, links and routing.
//!
//! The topology is a two-level graph:
//!
//! * **Sites** are geographic locations (e.g. the FABRIC sites UCSD, FIU,
//!   SRI). Traffic between nodes at the *same* site traverses a local fabric
//!   with the site's LAN delay and effectively NIC-limited bandwidth.
//! * **WAN links** connect pairs of sites with a one-way propagation delay and
//!   a shared capacity. Traffic between nodes at *different* sites follows the
//!   minimum-delay site-level path (Dijkstra), and consumes capacity on every
//!   directed link along it.
//!
//! Nodes own a NIC with separate egress/ingress capacity. Paths are expressed
//! as lists of [`Resource`]s, the unit over which max-min fairness operates.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a node (dense index into the topology's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

/// Identifier of a WAN link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0 + 1)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site-{}", self.0)
    }
}

/// A geographic site hosting one or more nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Site identifier.
    pub id: SiteId,
    /// Human-readable name (e.g. "UCSD").
    pub name: String,
    /// One-way delay between two nodes co-located at this site.
    pub lan_delay: SimDuration,
    /// Capacity of the local fabric between co-located nodes (bytes/sec).
    pub lan_capacity: f64,
}

/// A compute node attached to a site through a NIC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetNode {
    /// Node identifier.
    pub id: NodeId,
    /// Human-readable name (e.g. "node-3").
    pub name: String,
    /// The site the node lives at.
    pub site: SiteId,
    /// NIC egress capacity in bytes/sec.
    pub egress_capacity: f64,
    /// NIC ingress capacity in bytes/sec.
    pub ingress_capacity: f64,
}

/// A WAN link connecting two sites (full duplex: each direction has the full
/// capacity).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Link identifier.
    pub id: LinkId,
    /// Human-readable name (e.g. "UCSD<->SRI").
    pub name: String,
    /// One endpoint.
    pub a: SiteId,
    /// The other endpoint.
    pub b: SiteId,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Capacity per direction in bytes/sec.
    pub capacity: f64,
}

/// A capacitated resource a flow can consume. Fair sharing operates over these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Egress side of a node's NIC.
    NodeEgress(NodeId),
    /// Ingress side of a node's NIC.
    NodeIngress(NodeId),
    /// One direction of a WAN link: `(link, from_site, to_site)` collapsed to
    /// a boolean "forward" flag (true = a→b).
    LinkDir(LinkId, bool),
    /// The local fabric at a site (shared by intra-site flows).
    SiteFabric(SiteId),
}

/// A route between two nodes: the resources consumed and the one-way
/// propagation delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Resources traversed, in order.
    pub resources: Vec<Resource>,
    /// End-to-end one-way propagation delay.
    pub delay: SimDuration,
    /// Site-level hops (for diagnostics).
    pub site_path: Vec<SiteId>,
}

/// The site-level part of a route, shared by every node pair between the
/// same two sites. Storing routes per **site pair** instead of per node pair
/// is what lets 10k-node topologies build in milliseconds: the table grows
/// with `sites²` (a few hundred sites even at 10k nodes), while node-level
/// [`Route`]s are assembled on demand from one of these plus the endpoints'
/// NICs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SiteRoute {
    /// Directed WAN hops, in traversal order (empty for same-site pairs).
    link_dirs: Vec<(LinkId, bool)>,
    /// End-to-end one-way propagation delay.
    delay: SimDuration,
    /// Site-level hops (for diagnostics).
    site_path: Vec<SiteId>,
}

/// An immutable network topology with precomputed site-pair routes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<Site>,
    nodes: Vec<NetNode>,
    links: Vec<Link>,
    /// site_routes[src_site][dst_site]; the diagonal holds the intra-site
    /// (LAN fabric) route.
    site_routes: Vec<Vec<SiteRoute>>,
}

/// Errors raised while building or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A referenced site does not exist.
    UnknownSite(SiteId),
    /// A referenced node does not exist.
    UnknownNode(NodeId),
    /// Two sites are not connected by any path.
    Unreachable(SiteId, SiteId),
    /// A capacity or delay parameter is invalid (non-positive / non-finite).
    InvalidParameter(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownSite(s) => write!(f, "unknown site {s}"),
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::Unreachable(a, b) => write!(f, "no path between {a} and {b}"),
            TopologyError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental builder for a [`Topology`].
#[derive(Debug, Default, Clone)]
pub struct TopologyBuilder {
    sites: Vec<Site>,
    nodes: Vec<NetNode>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a site and return its id.
    pub fn add_site(
        &mut self,
        name: impl Into<String>,
        lan_delay: SimDuration,
        lan_capacity: f64,
    ) -> SiteId {
        let id = SiteId(self.sites.len());
        self.sites.push(Site {
            id,
            name: name.into(),
            lan_delay,
            lan_capacity,
        });
        id
    }

    /// Add a node at `site` and return its id.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        site: SiteId,
        egress_capacity: f64,
        ingress_capacity: f64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NetNode {
            id,
            name: name.into(),
            site,
            egress_capacity,
            ingress_capacity,
        });
        id
    }

    /// Connect two sites with a WAN link.
    pub fn connect_sites(
        &mut self,
        a: SiteId,
        b: SiteId,
        delay: SimDuration,
        capacity: f64,
    ) -> LinkId {
        let id = LinkId(self.links.len());
        let name = format!("link-{}-{}", a.0, b.0);
        self.links.push(Link {
            id,
            name,
            a,
            b,
            delay,
            capacity,
        });
        id
    }

    /// Validate the definition and precompute all-pairs routes.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.sites.is_empty() {
            return Err(TopologyError::InvalidParameter("no sites defined".into()));
        }
        if self.nodes.is_empty() {
            return Err(TopologyError::InvalidParameter("no nodes defined".into()));
        }
        for s in &self.sites {
            if !(s.lan_capacity.is_finite() && s.lan_capacity > 0.0) {
                return Err(TopologyError::InvalidParameter(format!(
                    "site {} lan_capacity must be positive",
                    s.name
                )));
            }
        }
        for n in &self.nodes {
            if n.site.0 >= self.sites.len() {
                return Err(TopologyError::UnknownSite(n.site));
            }
            if !(n.egress_capacity > 0.0 && n.ingress_capacity > 0.0) {
                return Err(TopologyError::InvalidParameter(format!(
                    "node {} NIC capacities must be positive",
                    n.name
                )));
            }
        }
        for l in &self.links {
            if l.a.0 >= self.sites.len() || l.b.0 >= self.sites.len() {
                return Err(TopologyError::UnknownSite(if l.a.0 >= self.sites.len() {
                    l.a
                } else {
                    l.b
                }));
            }
            if !(l.capacity.is_finite() && l.capacity > 0.0) {
                return Err(TopologyError::InvalidParameter(format!(
                    "link {} capacity must be positive",
                    l.name
                )));
            }
        }

        let topo = Topology {
            site_routes: Vec::new(),
            sites: self.sites,
            nodes: self.nodes,
            links: self.links,
        };
        topo.with_routes()
    }
}

/// Result of site-level Dijkstra: predecessor link and total delay.
#[derive(Clone, Copy)]
struct SiteHop {
    prev_site: SiteId,
    via_link: LinkId,
}

impl Topology {
    fn with_routes(mut self) -> Result<Topology, TopologyError> {
        // One Dijkstra per *occupied* source site covers every node pair;
        // unoccupied (transit-only) sites get placeholder rows so the table
        // stays square and index-addressable. Only site pairs that actually
        // host nodes on both ends must be reachable.
        let occupied: Vec<bool> = {
            let mut occ = vec![false; self.sites.len()];
            for n in &self.nodes {
                occ[n.site.0] = true;
            }
            occ
        };
        let mut site_routes: Vec<Vec<SiteRoute>> = Vec::with_capacity(self.sites.len());
        for src in 0..self.sites.len() {
            let src = SiteId(src);
            if !occupied[src.0] {
                site_routes.push(Vec::new());
                continue;
            }
            let (prev, dist) = self.site_paths(src);
            let mut row = Vec::with_capacity(self.sites.len());
            for dst in 0..self.sites.len() {
                let dst = SiteId(dst);
                if src == dst {
                    row.push(SiteRoute {
                        link_dirs: Vec::new(),
                        delay: self.sites[src.0].lan_delay,
                        site_path: vec![src],
                    });
                    continue;
                }
                if !occupied[dst.0] {
                    row.push(SiteRoute {
                        link_dirs: Vec::new(),
                        delay: SimDuration::ZERO,
                        site_path: Vec::new(),
                    });
                    continue;
                }
                let total = dist[dst.0].ok_or(TopologyError::Unreachable(src, dst))?;
                // Reconstruct the path dst -> src.
                let mut path_sites = vec![dst];
                let mut link_dirs: Vec<(LinkId, bool)> = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let hop = prev[cur.0].ok_or(TopologyError::Unreachable(src, dst))?;
                    let link = &self.links[hop.via_link.0];
                    // Direction: traversal goes hop.prev_site -> cur;
                    // forward if that is a->b.
                    let forward = link.a == hop.prev_site && link.b == cur;
                    link_dirs.push((hop.via_link, forward));
                    cur = hop.prev_site;
                    path_sites.push(cur);
                }
                path_sites.reverse();
                link_dirs.reverse();
                row.push(SiteRoute {
                    link_dirs,
                    delay: total,
                    site_path: path_sites,
                });
            }
            site_routes.push(row);
        }
        self.site_routes = site_routes;
        Ok(self)
    }

    /// Dijkstra over the site graph by delay. Returns per-site predecessor.
    fn site_paths(&self, from: SiteId) -> (Vec<Option<SiteHop>>, Vec<Option<SimDuration>>) {
        let ns = self.sites.len();
        let mut dist: Vec<Option<SimDuration>> = vec![None; ns];
        let mut prev: Vec<Option<SiteHop>> = vec![None; ns];
        let mut visited = vec![false; ns];
        dist[from.0] = Some(SimDuration::ZERO);
        // Adjacency: site -> (neighbor, link)
        let mut adj: BTreeMap<usize, Vec<(usize, LinkId, SimDuration)>> = BTreeMap::new();
        for l in &self.links {
            adj.entry(l.a.0).or_default().push((l.b.0, l.id, l.delay));
            adj.entry(l.b.0).or_default().push((l.a.0, l.id, l.delay));
        }
        for _ in 0..ns {
            // Pick the unvisited site with the smallest distance.
            let mut best: Option<(usize, SimDuration)> = None;
            for (i, d) in dist.iter().enumerate() {
                if visited[i] {
                    continue;
                }
                if let Some(d) = d {
                    if best.map(|(_, bd)| *d < bd).unwrap_or(true) {
                        best = Some((i, *d));
                    }
                }
            }
            let Some((u, du)) = best else { break };
            visited[u] = true;
            if let Some(neighbors) = adj.get(&u) {
                for &(v, link, delay) in neighbors {
                    if visited[v] {
                        continue;
                    }
                    let cand = du + delay;
                    if dist[v].map(|dv| cand < dv).unwrap_or(true) {
                        dist[v] = Some(cand);
                        prev[v] = Some(SiteHop {
                            prev_site: SiteId(u),
                            via_link: link,
                        });
                    }
                }
            }
        }
        (prev, dist)
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NetNode] {
        &self.nodes
    }

    /// All WAN links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Look up a node by id.
    pub fn node(&self, id: NodeId) -> &NetNode {
        &self.nodes[id.0]
    }

    /// Look up a site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0]
    }

    /// Look up a link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Look up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<&NetNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// The route from `src` to `dst`: assembled from the precomputed
    /// site-pair table plus the endpoints' NICs (same path and delay the old
    /// per-node-pair table held, without its `nodes²` memory footprint).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        if src == dst {
            return Route {
                resources: Vec::new(),
                delay: SimDuration::ZERO,
                site_path: vec![self.nodes[src.0].site],
            };
        }
        let s_site = self.nodes[src.0].site;
        let d_site = self.nodes[dst.0].site;
        let site_route = &self.site_routes[s_site.0][d_site.0];
        let mut resources = Vec::with_capacity(site_route.link_dirs.len() + 3);
        resources.push(Resource::NodeEgress(src));
        if s_site == d_site {
            resources.push(Resource::SiteFabric(s_site));
        } else {
            for &(link, forward) in &site_route.link_dirs {
                resources.push(Resource::LinkDir(link, forward));
            }
        }
        resources.push(Resource::NodeIngress(dst));
        Route {
            resources,
            delay: site_route.delay,
            site_path: site_route.site_path.clone(),
        }
    }

    /// The capacity of a [`Resource`] in bytes/sec.
    pub fn resource_capacity(&self, r: Resource) -> f64 {
        match r {
            Resource::NodeEgress(n) => self.nodes[n.0].egress_capacity,
            Resource::NodeIngress(n) => self.nodes[n.0].ingress_capacity,
            Resource::LinkDir(l, _) => self.links[l.0].capacity,
            Resource::SiteFabric(s) => self.sites[s.0].lan_capacity,
        }
    }

    /// Base (uncongested) round-trip time between two nodes.
    pub fn base_rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            return SimDuration::from_micros(50);
        }
        // Site-pair delay directly — no route assembly on this hot path.
        let one_way = self.site_routes[self.nodes[a.0].site.0][self.nodes[b.0].site.0].delay;
        one_way * 2
    }

    /// Iterate node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gbps, mbps};

    /// Two sites, two nodes each, one WAN link.
    fn small_topology() -> Topology {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("alpha", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("beta", SimDuration::from_micros(200), gbps(10.0));
        let n0 = b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        let _n1 = b.add_node("node-2", s0, gbps(1.0), gbps(1.0));
        let _n2 = b.add_node("node-3", s1, gbps(1.0), gbps(1.0));
        let n3 = b.add_node("node-4", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(30), mbps(500.0));
        let t = b.build().unwrap();
        assert_eq!(n0, NodeId(0));
        assert_eq!(n3, NodeId(3));
        t
    }

    #[test]
    fn builds_and_indexes() {
        let t = small_topology();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.sites().len(), 2);
        assert_eq!(t.links().len(), 1);
        assert_eq!(t.node_by_name("node-3").unwrap().id, NodeId(2));
        assert!(t.node_by_name("nope").is_none());
    }

    #[test]
    fn intra_site_route_uses_fabric() {
        let t = small_topology();
        let r = t.route(NodeId(0), NodeId(1));
        assert_eq!(
            r.resources,
            vec![
                Resource::NodeEgress(NodeId(0)),
                Resource::SiteFabric(SiteId(0)),
                Resource::NodeIngress(NodeId(1))
            ]
        );
        assert_eq!(r.delay, SimDuration::from_micros(200));
    }

    #[test]
    fn inter_site_route_crosses_wan_link() {
        let t = small_topology();
        let r = t.route(NodeId(0), NodeId(3));
        assert!(r
            .resources
            .iter()
            .any(|res| matches!(res, Resource::LinkDir(LinkId(0), _))));
        assert_eq!(r.delay, SimDuration::from_millis(30));
        assert_eq!(r.site_path, vec![SiteId(0), SiteId(1)]);
        // Reverse direction flips the link direction flag.
        let rev = t.route(NodeId(3), NodeId(0));
        let fwd_dir = r
            .resources
            .iter()
            .find_map(|res| match res {
                Resource::LinkDir(_, d) => Some(*d),
                _ => None,
            })
            .unwrap();
        let rev_dir = rev
            .resources
            .iter()
            .find_map(|res| match res {
                Resource::LinkDir(_, d) => Some(*d),
                _ => None,
            })
            .unwrap();
        assert_ne!(fwd_dir, rev_dir);
    }

    #[test]
    fn loopback_route_is_empty() {
        let t = small_topology();
        let r = t.route(NodeId(2), NodeId(2));
        assert!(r.resources.is_empty());
        assert_eq!(r.delay, SimDuration::ZERO);
    }

    #[test]
    fn base_rtt_is_twice_one_way() {
        let t = small_topology();
        assert_eq!(
            t.base_rtt(NodeId(0), NodeId(3)),
            SimDuration::from_millis(60)
        );
        assert_eq!(
            t.base_rtt(NodeId(0), NodeId(1)),
            SimDuration::from_micros(400)
        );
        assert!(t.base_rtt(NodeId(0), NodeId(0)) > SimDuration::ZERO);
    }

    #[test]
    fn multi_hop_routing_picks_shortest_delay() {
        // Three sites in a line: A -- B -- C plus a slow direct A -- C link.
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SimDuration::from_micros(100), gbps(10.0));
        let mid = b.add_site("b", SimDuration::from_micros(100), gbps(10.0));
        let c = b.add_site("c", SimDuration::from_micros(100), gbps(10.0));
        let n_a = b.add_node("na", a, gbps(1.0), gbps(1.0));
        let _n_b = b.add_node("nb", mid, gbps(1.0), gbps(1.0));
        let n_c = b.add_node("nc", c, gbps(1.0), gbps(1.0));
        b.connect_sites(a, mid, SimDuration::from_millis(5), mbps(100.0));
        b.connect_sites(mid, c, SimDuration::from_millis(5), mbps(100.0));
        b.connect_sites(a, c, SimDuration::from_millis(50), mbps(100.0));
        let t = b.build().unwrap();
        let r = t.route(n_a, n_c);
        // 5 + 5 = 10ms via B beats 50ms direct.
        assert_eq!(r.delay, SimDuration::from_millis(10));
        assert_eq!(r.site_path.len(), 3);
        let wan_hops = r
            .resources
            .iter()
            .filter(|res| matches!(res, Resource::LinkDir(..)))
            .count();
        assert_eq!(wan_hops, 2);
    }

    #[test]
    fn unreachable_sites_error() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SimDuration::from_micros(100), gbps(10.0));
        let c = b.add_site("island", SimDuration::from_micros(100), gbps(10.0));
        b.add_node("na", a, gbps(1.0), gbps(1.0));
        b.add_node("nc", c, gbps(1.0), gbps(1.0));
        let err = b.build().unwrap_err();
        assert!(matches!(err, TopologyError::Unreachable(..)));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut b = TopologyBuilder::new();
        let s = b.add_site("a", SimDuration::from_micros(100), gbps(10.0));
        b.add_node("bad", s, 0.0, gbps(1.0));
        assert!(matches!(b.build(), Err(TopologyError::InvalidParameter(_))));

        let empty = TopologyBuilder::new();
        assert!(matches!(
            empty.build(),
            Err(TopologyError::InvalidParameter(_))
        ));

        let mut no_nodes = TopologyBuilder::new();
        no_nodes.add_site("a", SimDuration::from_micros(100), gbps(10.0));
        assert!(matches!(
            no_nodes.build(),
            Err(TopologyError::InvalidParameter(_))
        ));
    }

    #[test]
    fn resource_capacity_lookup() {
        let t = small_topology();
        assert_eq!(
            t.resource_capacity(Resource::NodeEgress(NodeId(0))),
            gbps(1.0)
        );
        assert_eq!(
            t.resource_capacity(Resource::NodeIngress(NodeId(1))),
            gbps(1.0)
        );
        assert_eq!(
            t.resource_capacity(Resource::LinkDir(LinkId(0), true)),
            mbps(500.0)
        );
        assert_eq!(
            t.resource_capacity(Resource::SiteFabric(SiteId(0))),
            gbps(10.0)
        );
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", NodeId(0)), "node-1");
        assert_eq!(format!("{}", SiteId(2)), "site-2");
        let err = TopologyError::Unreachable(SiteId(0), SiteId(1));
        assert!(format!("{err}").contains("no path"));
    }
}
