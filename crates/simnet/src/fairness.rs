//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Given a set of flows, each crossing a set of capacitated resources, the
//! allocator computes the max-min fair rate vector: rates are raised together
//! until some resource saturates; flows crossing that resource are frozen at
//! the bottleneck's fair share; the process repeats on the residual problem.
//!
//! This is the classic fluid approximation of TCP-fair sharing used by
//! flow-level simulators; it captures exactly the effects the paper's
//! scheduler must learn — shared WAN bottlenecks, asymmetric per-node
//! bandwidth, and contention from background traffic.

use crate::topology::Resource;
use std::collections::HashMap;

/// One flow's demand as seen by the allocator.
#[derive(Debug, Clone)]
pub struct FlowDemand {
    /// Opaque index used to report the allocation back to the caller.
    pub index: usize,
    /// Resources this flow traverses.
    pub resources: Vec<Resource>,
    /// Optional cap on the flow's rate (bytes/sec), e.g. an application-level
    /// throttle. `f64::INFINITY` means uncapped.
    pub rate_cap: f64,
}

/// Compute max-min fair rates.
///
/// * `demands` — one entry per active flow.
/// * `capacity_of` — resource capacities in bytes/sec.
///
/// Returns a vector of rates aligned with `demands` (by position, not by
/// `index`). Flows with an empty resource list (loopback transfers) receive
/// their rate cap, or a very large rate if uncapped.
pub fn max_min_fair_rates<F>(demands: &[FlowDemand], capacity_of: F) -> Vec<f64>
where
    F: Fn(Resource) -> f64,
{
    const LOOPBACK_RATE: f64 = 1e12; // 1 TB/s: effectively instantaneous
    let n = demands.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }

    // Collect the resources actually in use and their remaining capacity.
    let mut remaining: HashMap<Resource, f64> = HashMap::new();
    for d in demands {
        for &r in &d.resources {
            remaining
                .entry(r)
                .or_insert_with(|| capacity_of(r).max(0.0));
        }
    }

    // Number of unfrozen flows crossing each resource.
    let mut crossing: HashMap<Resource, usize> = HashMap::new();
    for d in demands {
        for &r in &d.resources {
            *crossing.entry(r).or_insert(0) += 1;
        }
    }

    let mut frozen = vec![false; n];
    let mut unfrozen_count = n;

    // Loopback / capped-at-zero flows resolve immediately.
    for (i, d) in demands.iter().enumerate() {
        if d.resources.is_empty() {
            rates[i] = d.rate_cap.min(LOOPBACK_RATE);
            frozen[i] = true;
            unfrozen_count -= 1;
        } else if d.rate_cap <= 0.0 {
            rates[i] = 0.0;
            frozen[i] = true;
            unfrozen_count -= 1;
            for &r in &d.resources {
                *crossing.get_mut(&r).expect("resource present") -= 1;
            }
        }
    }

    // Progressive filling. Each iteration freezes at least one flow, so the
    // loop runs at most `n` times.
    while unfrozen_count > 0 {
        // Fair share offered by each still-constraining resource.
        let mut bottleneck: Option<(f64, Resource)> = None;
        for (&r, &cap) in &remaining {
            let users = crossing.get(&r).copied().unwrap_or(0);
            if users == 0 {
                continue;
            }
            let share = cap / users as f64;
            let better = match bottleneck {
                None => true,
                Some((best, _)) => share < best,
            };
            if better {
                bottleneck = Some((share, r));
            }
        }

        // The tightest *cap* among unfrozen flows may bind before any resource.
        let mut cap_bound: Option<(f64, usize)> = None;
        for (i, d) in demands.iter().enumerate() {
            if frozen[i] || !d.rate_cap.is_finite() {
                continue;
            }
            if cap_bound.map(|(c, _)| d.rate_cap < c).unwrap_or(true) {
                cap_bound = Some((d.rate_cap, i));
            }
        }

        match (bottleneck, cap_bound) {
            (None, None) => {
                // No constraining resource and no finite caps: give the
                // loopback rate to everything left.
                for (i, _) in demands.iter().enumerate() {
                    if !frozen[i] {
                        rates[i] = LOOPBACK_RATE;
                        frozen[i] = true;
                        unfrozen_count -= 1;
                    }
                }
            }
            (Some((share, res)), cap) if cap.map(|(c, _)| share <= c).unwrap_or(true) => {
                // Resource `res` is the bottleneck: freeze every unfrozen flow
                // crossing it at `share`.
                let mut froze_any = false;
                for (i, d) in demands.iter().enumerate() {
                    if frozen[i] || !d.resources.contains(&res) {
                        continue;
                    }
                    let rate = share.min(d.rate_cap);
                    rates[i] = rate;
                    frozen[i] = true;
                    unfrozen_count -= 1;
                    froze_any = true;
                    // Release this flow's consumption from every resource it crosses.
                    for &r in &d.resources {
                        if let Some(c) = remaining.get_mut(&r) {
                            *c = (*c - rate).max(0.0);
                        }
                        if let Some(u) = crossing.get_mut(&r) {
                            *u -= 1;
                        }
                    }
                }
                debug_assert!(froze_any, "bottleneck must freeze at least one flow");
            }
            (_, Some((cap_rate, idx))) => {
                // The smallest rate cap binds first: freeze that single flow.
                let d = &demands[idx];
                rates[idx] = cap_rate;
                frozen[idx] = true;
                unfrozen_count -= 1;
                for &r in &d.resources {
                    if let Some(c) = remaining.get_mut(&r) {
                        *c = (*c - cap_rate).max(0.0);
                    }
                    if let Some(u) = crossing.get_mut(&r) {
                        *u -= 1;
                    }
                }
            }
            (Some(_), None) => {
                // Covered by the guarded arm above (the guard is always true
                // when there is no cap bound); kept only for exhaustiveness.
                unreachable!("guarded arm handles the no-cap case")
            }
        }
    }

    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkId, NodeId};

    fn demand(index: usize, resources: Vec<Resource>) -> FlowDemand {
        FlowDemand {
            index,
            resources,
            rate_cap: f64::INFINITY,
        }
    }

    const LINK: Resource = Resource::LinkDir(LinkId(0), true);
    const LINK2: Resource = Resource::LinkDir(LinkId(1), true);

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_fair_rates(&[demand(0, vec![LINK])], |_| 100.0);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn equal_flows_split_evenly() {
        let demands = vec![
            demand(0, vec![LINK]),
            demand(1, vec![LINK]),
            demand(2, vec![LINK]),
            demand(3, vec![LINK]),
        ];
        let rates = max_min_fair_rates(&demands, |_| 100.0);
        for r in rates {
            assert!((r - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_max_min_example() {
        // Flow A crosses links 1 and 2; flow B crosses link 1; flow C crosses link 2.
        // Capacities: link1 = 10, link2 = 20.
        // Max-min: A and B share link1 -> 5 each; C gets 20 - 5 = 15 on link2.
        let demands = vec![
            demand(0, vec![LINK, LINK2]),
            demand(1, vec![LINK]),
            demand(2, vec![LINK2]),
        ];
        let rates = max_min_fair_rates(&demands, |r| match r {
            Resource::LinkDir(LinkId(0), _) => 10.0,
            Resource::LinkDir(LinkId(1), _) => 20.0,
            _ => f64::INFINITY,
        });
        assert!((rates[0] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 15.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn rate_caps_bind_and_release_capacity() {
        // Two flows share a 100-unit link, one capped at 10: the other gets 90.
        let demands = vec![
            FlowDemand {
                index: 0,
                resources: vec![LINK],
                rate_cap: 10.0,
            },
            demand(1, vec![LINK]),
        ];
        let rates = max_min_fair_rates(&demands, |_| 100.0);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cap_flow_is_ignored_for_sharing() {
        let demands = vec![
            FlowDemand {
                index: 0,
                resources: vec![LINK],
                rate_cap: 0.0,
            },
            demand(1, vec![LINK]),
        ];
        let rates = max_min_fair_rates(&demands, |_| 80.0);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn loopback_flows_get_huge_rate() {
        let rates = max_min_fair_rates(&[demand(0, vec![])], |_| 100.0);
        assert!(rates[0] >= 1e11);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let rates = max_min_fair_rates(&[], |_| 1.0);
        assert!(rates.is_empty());
    }

    #[test]
    fn different_nics_do_not_interfere() {
        let e0 = Resource::NodeEgress(NodeId(0));
        let e1 = Resource::NodeEgress(NodeId(1));
        let demands = vec![demand(0, vec![e0]), demand(1, vec![e1])];
        let rates = max_min_fair_rates(&demands, |_| 100.0);
        assert_eq!(rates, vec![100.0, 100.0]);
    }

    /// Invariant checks used by both unit tests and proptests below.
    fn check_invariants(demands: &[FlowDemand], rates: &[f64], cap: f64) {
        // Non-negative, respect caps.
        for (d, &r) in demands.iter().zip(rates) {
            assert!(r >= 0.0);
            assert!(r <= d.rate_cap + 1e-6);
        }
        // No resource oversubscribed.
        let mut usage: HashMap<Resource, f64> = HashMap::new();
        for (d, &r) in demands.iter().zip(rates) {
            for &res in &d.resources {
                *usage.entry(res).or_insert(0.0) += r;
            }
        }
        for (_, total) in usage {
            assert!(
                total <= cap * (1.0 + 1e-9),
                "resource oversubscribed: {total} > {cap}"
            );
        }
    }

    #[test]
    fn invariants_on_mixed_topology() {
        let demands = vec![
            demand(0, vec![LINK, Resource::NodeEgress(NodeId(0))]),
            demand(1, vec![LINK, Resource::NodeEgress(NodeId(1))]),
            demand(2, vec![LINK2, Resource::NodeEgress(NodeId(0))]),
            FlowDemand {
                index: 3,
                resources: vec![LINK2],
                rate_cap: 7.0,
            },
        ];
        let rates = max_min_fair_rates(&demands, |_| 50.0);
        check_invariants(&demands, &rates, 50.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_resources() -> impl Strategy<Value = Vec<Resource>> {
            // Pool of 6 possible resources; each flow picks a non-empty subset.
            prop::collection::vec(0usize..6, 1..4).prop_map(|idxs| {
                let mut v: Vec<Resource> = idxs
                    .into_iter()
                    .map(|i| match i {
                        0 => Resource::LinkDir(LinkId(0), true),
                        1 => Resource::LinkDir(LinkId(0), false),
                        2 => Resource::LinkDir(LinkId(1), true),
                        3 => Resource::NodeEgress(NodeId(0)),
                        4 => Resource::NodeEgress(NodeId(1)),
                        _ => Resource::NodeIngress(NodeId(2)),
                    })
                    .collect();
                v.sort();
                v.dedup();
                v
            })
        }

        proptest! {
            #[test]
            fn rates_never_violate_capacity(
                resource_sets in prop::collection::vec(arb_resources(), 1..12),
                cap in 1.0f64..1000.0,
            ) {
                let demands: Vec<FlowDemand> = resource_sets
                    .into_iter()
                    .enumerate()
                    .map(|(i, resources)| FlowDemand { index: i, resources, rate_cap: f64::INFINITY })
                    .collect();
                let rates = max_min_fair_rates(&demands, |_| cap);
                check_invariants(&demands, &rates, cap);
                // Work conservation: every flow with resources gets a strictly
                // positive rate (no starvation under max-min fairness).
                for (d, &r) in demands.iter().zip(&rates) {
                    if !d.resources.is_empty() {
                        prop_assert!(r > 0.0, "flow starved: {:?}", d);
                    }
                }
            }

            #[test]
            fn single_bottleneck_shares_sum_to_capacity(
                n in 1usize..20,
                cap in 1.0f64..1000.0,
            ) {
                let demands: Vec<FlowDemand> = (0..n)
                    .map(|i| FlowDemand {
                        index: i,
                        resources: vec![Resource::LinkDir(LinkId(0), true)],
                        rate_cap: f64::INFINITY,
                    })
                    .collect();
                let rates = max_min_fair_rates(&demands, |_| cap);
                let total: f64 = rates.iter().sum();
                prop_assert!((total - cap).abs() < 1e-6 * cap.max(1.0));
                // And all shares equal.
                for &r in &rates {
                    prop_assert!((r - cap / n as f64).abs() < 1e-6 * cap.max(1.0));
                }
            }
        }
    }
}
