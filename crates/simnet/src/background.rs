//! Background contention load.
//!
//! Section 5.2 of the paper: *"Background load (a pod that repeatedly
//! downloads a 10 MB file over HTTP using curl) is placed randomly on selected
//! nodes during job execution. This simulates network and CPU contention."*
//!
//! [`BackgroundLoadGenerator`] reproduces that pod: it is assigned to a node,
//! repeatedly issues a fixed-size download from a peer node (with a small
//! think-time gap between downloads), and contributes a configurable amount of
//! CPU load to its host while active. The experiment harness places one or
//! more of these generators on randomly chosen nodes per batch run, which is
//! what creates the telemetry variation the supervised model learns from.

use crate::flow::FlowKind;
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use simcore::SimDuration;

/// Configuration of one background-load pod.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundLoadConfig {
    /// Bytes fetched per download (paper: 10 MB).
    pub transfer_bytes: f64,
    /// Mean think time between consecutive downloads.
    pub mean_gap: SimDuration,
    /// CPU load (in load-average units, i.e. runnable processes) the pod adds
    /// to its host while running.
    pub cpu_load: f64,
    /// Memory the pod pins on its host, in bytes.
    pub memory_bytes: f64,
    /// Whether the pod downloads (traffic flows *to* the host) or uploads.
    pub download: bool,
}

impl Default for BackgroundLoadConfig {
    fn default() -> Self {
        BackgroundLoadConfig {
            transfer_bytes: crate::megabytes(10.0),
            mean_gap: SimDuration::from_millis(200),
            // The curl loop plus the HTTP server it hammers keep a couple of
            // runnable processes on the host and pin a sizeable buffer cache —
            // that is what makes the contention visible in node telemetry.
            cpu_load: 2.0,
            memory_bytes: 1536.0 * 1024.0 * 1024.0,
            download: true,
        }
    }
}

/// One transfer request emitted by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundTransfer {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Bytes to move.
    pub bytes: f64,
    /// Delay (relative to the previous transfer's completion) before starting.
    pub gap: SimDuration,
    /// Traffic class (always [`FlowKind::Background`]).
    pub kind: FlowKind,
}

/// A background-load pod pinned to a host, downloading from a peer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundLoadGenerator {
    /// The node the pod runs on.
    pub host: NodeId,
    /// The peer node serving the file.
    pub peer: NodeId,
    /// Pod configuration.
    pub config: BackgroundLoadConfig,
    transfers_issued: u64,
}

impl BackgroundLoadGenerator {
    /// Create a generator on `host` downloading from `peer`.
    pub fn new(host: NodeId, peer: NodeId, config: BackgroundLoadConfig) -> Self {
        BackgroundLoadGenerator {
            host,
            peer,
            config,
            transfers_issued: 0,
        }
    }

    /// CPU load the pod contributes to its host.
    pub fn cpu_load(&self) -> f64 {
        self.config.cpu_load
    }

    /// Memory the pod pins on its host.
    pub fn memory_bytes(&self) -> f64 {
        self.config.memory_bytes
    }

    /// Number of transfers generated so far.
    pub fn transfers_issued(&self) -> u64 {
        self.transfers_issued
    }

    /// Produce the next transfer. The gap before the transfer is sampled from
    /// an exponential distribution with the configured mean (plus a floor so
    /// the generator cannot busy-loop), and the transfer size gets ±10%
    /// uniform variation like a real HTTP fetch with headers/retries.
    pub fn next_transfer(&mut self, rng: &mut Rng) -> BackgroundTransfer {
        self.transfers_issued += 1;
        let mean_gap = self.config.mean_gap.as_secs_f64().max(1e-3);
        let gap = SimDuration::from_secs_f64(rng.exponential(1.0 / mean_gap).min(mean_gap * 10.0));
        let bytes = self.config.transfer_bytes * rng.uniform(0.9, 1.1);
        let (src, dst) = if self.config.download {
            (self.peer, self.host)
        } else {
            (self.host, self.peer)
        };
        BackgroundTransfer {
            src,
            dst,
            bytes,
            gap,
            kind: FlowKind::Background,
        }
    }
}

/// Randomly place `count` background pods on distinct hosts drawn from
/// `candidates`, each downloading from a uniformly random *other* node.
/// Mirrors the paper's "placed randomly on selected nodes" procedure.
pub fn place_random_background_load(
    candidates: &[NodeId],
    all_nodes: &[NodeId],
    count: usize,
    config: &BackgroundLoadConfig,
    rng: &mut Rng,
) -> Vec<BackgroundLoadGenerator> {
    if candidates.is_empty() || all_nodes.len() < 2 {
        return Vec::new();
    }
    let count = count.min(candidates.len());
    let host_idx = rng.sample_indices(candidates.len(), count);
    host_idx
        .into_iter()
        .map(|i| {
            let host = candidates[i];
            // Pick a peer different from the host.
            let peer = loop {
                let p = *rng.choose(all_nodes).expect("non-empty");
                if p != host {
                    break p;
                }
            };
            BackgroundLoadGenerator::new(host, peer, config.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn default_config_matches_paper() {
        let c = BackgroundLoadConfig::default();
        assert_eq!(c.transfer_bytes, 10_000_000.0);
        assert!(c.download);
        assert!(c.cpu_load > 0.0);
    }

    #[test]
    fn download_direction_targets_host() {
        let mut rng = Rng::seed_from_u64(1);
        let mut g =
            BackgroundLoadGenerator::new(NodeId(2), NodeId(5), BackgroundLoadConfig::default());
        let t = g.next_transfer(&mut rng);
        assert_eq!(t.dst, NodeId(2));
        assert_eq!(t.src, NodeId(5));
        assert_eq!(t.kind, FlowKind::Background);
        assert_eq!(g.transfers_issued(), 1);
    }

    #[test]
    fn upload_direction_flips() {
        let mut rng = Rng::seed_from_u64(1);
        let cfg = BackgroundLoadConfig {
            download: false,
            ..Default::default()
        };
        let mut g = BackgroundLoadGenerator::new(NodeId(2), NodeId(5), cfg);
        let t = g.next_transfer(&mut rng);
        assert_eq!(t.src, NodeId(2));
        assert_eq!(t.dst, NodeId(5));
    }

    #[test]
    fn transfer_sizes_vary_around_nominal() {
        let mut rng = Rng::seed_from_u64(7);
        let mut g =
            BackgroundLoadGenerator::new(NodeId(0), NodeId(1), BackgroundLoadConfig::default());
        for _ in 0..200 {
            let t = g.next_transfer(&mut rng);
            assert!(
                t.bytes >= 9_000_000.0 && t.bytes <= 11_000_000.0,
                "{}",
                t.bytes
            );
            assert!(t.gap >= SimDuration::ZERO);
            assert!(t.gap <= SimDuration::from_secs(2), "gap capped at 10x mean");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut r1 = Rng::seed_from_u64(99);
        let mut r2 = Rng::seed_from_u64(99);
        let mut g1 =
            BackgroundLoadGenerator::new(NodeId(0), NodeId(1), BackgroundLoadConfig::default());
        let mut g2 =
            BackgroundLoadGenerator::new(NodeId(0), NodeId(1), BackgroundLoadConfig::default());
        for _ in 0..20 {
            assert_eq!(g1.next_transfer(&mut r1), g2.next_transfer(&mut r2));
        }
    }

    #[test]
    fn random_placement_picks_distinct_hosts_and_valid_peers() {
        let mut rng = Rng::seed_from_u64(5);
        let all = nodes(6);
        let gens =
            place_random_background_load(&all, &all, 3, &BackgroundLoadConfig::default(), &mut rng);
        assert_eq!(gens.len(), 3);
        let mut hosts: Vec<usize> = gens.iter().map(|g| g.host.0).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 3, "hosts must be distinct");
        for g in &gens {
            assert_ne!(g.host, g.peer);
        }
    }

    #[test]
    fn placement_edge_cases() {
        let mut rng = Rng::seed_from_u64(5);
        let all = nodes(6);
        // Requesting more pods than candidates clamps.
        let gens = place_random_background_load(
            &all[..2],
            &all,
            10,
            &BackgroundLoadConfig::default(),
            &mut rng,
        );
        assert_eq!(gens.len(), 2);
        // No candidates -> nothing.
        assert!(place_random_background_load(
            &[],
            &all,
            3,
            &BackgroundLoadConfig::default(),
            &mut rng
        )
        .is_empty());
        // Single node overall -> nothing (no valid peer).
        assert!(place_random_background_load(
            &all[..1],
            &all[..1],
            1,
            &BackgroundLoadConfig::default(),
            &mut rng
        )
        .is_empty());
    }
}
