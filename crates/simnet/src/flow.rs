//! Bulk data flows.
//!
//! A flow is a one-way transfer of a fixed number of bytes between two nodes
//! (a Spark shuffle fetch, a result upload, or a background download). The
//! fluid model in [`crate::network`] advances every active flow at its current
//! max-min fair rate.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::fmt;

/// Identifier of a flow (unique within one [`crate::network::Network`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow-{}", self.0)
    }
}

/// Lifecycle state of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowState {
    /// Actively transferring bytes.
    Active,
    /// All bytes delivered.
    Completed,
    /// Cancelled before completion.
    Cancelled,
}

/// Classification of the traffic, used for accounting and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// Spark shuffle data between executors.
    Shuffle,
    /// Input data load (e.g. reading a partition from a remote store).
    InputRead,
    /// Result/output upload.
    Output,
    /// Background contention traffic (the paper's curl-loop pod).
    Background,
    /// Control-plane chatter (heartbeats, small RPCs).
    Control,
}

/// A single flow tracked by the network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Flow {
    /// Identifier.
    pub id: FlowId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Total bytes to transfer.
    pub total_bytes: f64,
    /// Bytes delivered so far.
    pub transferred_bytes: f64,
    /// Current allocated rate in bytes/sec (updated on every reallocation).
    pub rate: f64,
    /// Lifecycle state.
    pub state: FlowState,
    /// Traffic class.
    pub kind: FlowKind,
    /// When the flow was started.
    pub started_at: SimTime,
    /// When the flow completed (if it has).
    pub completed_at: Option<SimTime>,
}

impl Flow {
    /// Create a new active flow.
    pub fn new(
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        total_bytes: f64,
        kind: FlowKind,
        now: SimTime,
    ) -> Self {
        Flow {
            id,
            src,
            dst,
            total_bytes: total_bytes.max(0.0),
            transferred_bytes: 0.0,
            rate: 0.0,
            state: FlowState::Active,
            kind,
            started_at: now,
            completed_at: None,
        }
    }

    /// Bytes still to transfer.
    pub fn remaining_bytes(&self) -> f64 {
        (self.total_bytes - self.transferred_bytes).max(0.0)
    }

    /// True when the flow has delivered all bytes.
    pub fn is_complete(&self) -> bool {
        self.state == FlowState::Completed
    }

    /// True when the flow is still transferring.
    pub fn is_active(&self) -> bool {
        self.state == FlowState::Active
    }

    /// Time to completion at the current rate, or `None` if the rate is zero.
    pub fn eta_seconds(&self) -> Option<f64> {
        if self.rate > 0.0 {
            Some(self.remaining_bytes() / self.rate)
        } else if self.remaining_bytes() == 0.0 {
            Some(0.0)
        } else {
            None
        }
    }

    /// Fraction of bytes delivered in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_bytes <= 0.0 {
            1.0
        } else {
            (self.transferred_bytes / self.total_bytes).clamp(0.0, 1.0)
        }
    }

    /// Observed throughput since start (bytes/sec), or 0 before any time passes.
    pub fn average_throughput(&self, now: SimTime) -> f64 {
        let elapsed = (now - self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            self.transferred_bytes / elapsed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(total: f64) -> Flow {
        Flow::new(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            total,
            FlowKind::Shuffle,
            SimTime::from_secs(1),
        )
    }

    #[test]
    fn new_flow_is_active_with_zero_progress() {
        let f = flow(1000.0);
        assert!(f.is_active());
        assert!(!f.is_complete());
        assert_eq!(f.remaining_bytes(), 1000.0);
        assert_eq!(f.progress(), 0.0);
        assert_eq!(f.eta_seconds(), None, "no rate allocated yet");
    }

    #[test]
    fn negative_sizes_clamp_to_zero() {
        let f = flow(-5.0);
        assert_eq!(f.total_bytes, 0.0);
        assert_eq!(f.progress(), 1.0);
        assert_eq!(f.eta_seconds(), Some(0.0));
    }

    #[test]
    fn eta_uses_current_rate() {
        let mut f = flow(1_000_000.0);
        f.rate = 250_000.0;
        assert_eq!(f.eta_seconds(), Some(4.0));
        f.transferred_bytes = 500_000.0;
        assert_eq!(f.eta_seconds(), Some(2.0));
    }

    #[test]
    fn progress_clamps() {
        let mut f = flow(100.0);
        f.transferred_bytes = 150.0;
        assert_eq!(f.progress(), 1.0);
        assert_eq!(f.remaining_bytes(), 0.0);
    }

    #[test]
    fn average_throughput_over_elapsed_time() {
        let mut f = flow(10_000.0);
        f.transferred_bytes = 5_000.0;
        assert_eq!(f.average_throughput(SimTime::from_secs(1)), 0.0);
        assert_eq!(f.average_throughput(SimTime::from_secs(6)), 1_000.0);
    }

    #[test]
    fn display_id() {
        assert_eq!(format!("{}", FlowId(7)), "flow-7");
    }
}
