//! The fluid network simulator.
//!
//! [`Network`] tracks active flows, allocates max-min fair rates whenever the
//! flow set changes, and transfers bytes when the owner advances simulated
//! time. It also maintains per-node interface counters (cumulative tx/rx
//! bytes) and exposes instantaneous per-node rates and per-resource
//! utilization — exactly the signals the telemetry exporters scrape.

use crate::fairness::{max_min_fair_rates, FlowDemand};
use crate::flow::{Flow, FlowId, FlowKind, FlowState};
use crate::rtt::RttModel;
use crate::topology::{NodeId, Resource, Topology};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::HashMap;

/// Cumulative interface counters for one node (what node-exporter reports as
/// `node_network_transmit_bytes_total` / `node_network_receive_bytes_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InterfaceCounters {
    /// Total bytes transmitted by the node since simulation start.
    pub tx_bytes: f64,
    /// Total bytes received by the node since simulation start.
    pub rx_bytes: f64,
}

/// Instantaneous send/receive rates for one node in bytes/sec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeRates {
    /// Current aggregate transmit rate.
    pub tx_rate: f64,
    /// Current aggregate receive rate.
    pub rx_rate: f64,
}

/// A record of a completed flow, kept for workload accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletedFlow {
    /// The flow as it looked at completion time.
    pub flow: Flow,
    /// Transfer duration.
    pub duration: SimDuration,
}

/// The flow-level network simulator.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    rtt_model: RttModel,
    flows: HashMap<FlowId, Flow>,
    active_order: Vec<FlowId>,
    next_flow_id: u64,
    counters: Vec<InterfaceCounters>,
    now: SimTime,
    completed: Vec<CompletedFlow>,
    /// Cached per-resource utilization (rate / capacity), refreshed on reallocation.
    utilization: HashMap<Resource, f64>,
}

impl Network {
    /// Create a network over `topology` with the default RTT model.
    pub fn new(topology: Topology) -> Self {
        let n = topology.node_count();
        Network {
            topology,
            rtt_model: RttModel::default(),
            flows: HashMap::new(),
            active_order: Vec::new(),
            next_flow_id: 0,
            counters: vec![InterfaceCounters::default(); n],
            now: SimTime::ZERO,
            completed: Vec::new(),
            utilization: HashMap::new(),
        }
    }

    /// Replace the RTT model.
    pub fn with_rtt_model(mut self, model: RttModel) -> Self {
        self.rtt_model = model;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current simulated time of the network.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Start a flow of `bytes` from `src` to `dst` and return its id.
    /// Rates of all active flows are re-allocated immediately.
    pub fn start_flow(&mut self, src: NodeId, dst: NodeId, bytes: f64, kind: FlowKind) -> FlowId {
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let flow = Flow::new(id, src, dst, bytes, kind, self.now);
        self.flows.insert(id, flow);
        self.active_order.push(id);
        self.reallocate();
        id
    }

    /// Cancel an active flow (used when a job is aborted). No-op if already finished.
    pub fn cancel_flow(&mut self, id: FlowId) {
        if let Some(flow) = self.flows.get_mut(&id) {
            if flow.state == FlowState::Active {
                flow.state = FlowState::Cancelled;
                flow.rate = 0.0;
                self.active_order.retain(|&f| f != id);
                self.reallocate();
            }
        }
    }

    /// Look up a flow by id (active, completed or cancelled).
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Number of currently active flows.
    pub fn active_flow_count(&self) -> usize {
        self.active_order.len()
    }

    /// Completed flows recorded so far (drained by [`Network::drain_completed`]).
    pub fn completed(&self) -> &[CompletedFlow] {
        &self.completed
    }

    /// Remove and return all completion records accumulated so far.
    pub fn drain_completed(&mut self) -> Vec<CompletedFlow> {
        std::mem::take(&mut self.completed)
    }

    /// The earliest future time at which an active flow completes at current
    /// rates, or `None` when no active flow is progressing.
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for id in &self.active_order {
            let flow = &self.flows[id];
            if let Some(eta) = flow.eta_seconds() {
                let mut delta = SimDuration::from_secs_f64(eta);
                // Guarantee forward progress: an ETA that rounds to zero
                // nanoseconds while bytes remain would stall the fluid loop.
                if delta.is_zero() && flow.remaining_bytes() > 0.0 {
                    delta = SimDuration::from_nanos(1);
                }
                let t = self.now + delta;
                best = Some(match best {
                    None => t,
                    Some(b) => b.min(t),
                });
            }
        }
        best
    }

    /// Advance the fluid model to `target` (monotone; earlier times are a no-op).
    ///
    /// Bytes are transferred at the currently allocated rates; flows that
    /// finish strictly before `target` complete at their exact finish time and
    /// rates are re-allocated from that instant, so the trajectory is piecewise
    /// linear and exact.
    pub fn advance_to(&mut self, target: SimTime) {
        while self.now < target {
            // Earliest completion before `target`, if any.
            let next_done = self.next_completion().filter(|&t| t <= target);
            let step_end = next_done.unwrap_or(target);
            let dt = (step_end - self.now).as_secs_f64();
            if dt > 0.0 {
                self.transfer_bytes(dt);
            }
            self.now = step_end;
            let finished = self.collect_finished();
            if !finished.is_empty() {
                self.reallocate();
            }
            if next_done.is_none() {
                break;
            }
        }
        // Even with no active flows the clock must reach the target.
        if self.now < target {
            self.now = target;
        }
    }

    /// Transfer bytes for `dt` seconds at current rates and update counters.
    fn transfer_bytes(&mut self, dt: f64) {
        for id in &self.active_order {
            let flow = self.flows.get_mut(id).expect("active flow exists");
            if flow.rate <= 0.0 {
                continue;
            }
            let delta = (flow.rate * dt).min(flow.remaining_bytes());
            flow.transferred_bytes += delta;
            // Loopback transfers never touch the NIC, so they do not show up
            // in the interface counters node-exporter would report.
            if flow.src != flow.dst {
                self.counters[flow.src.0].tx_bytes += delta;
                self.counters[flow.dst.0].rx_bytes += delta;
            }
        }
    }

    /// Mark flows that have delivered all bytes as completed.
    fn collect_finished(&mut self) -> Vec<FlowId> {
        let mut finished = Vec::new();
        // Tolerance: a byte fraction left due to floating point is "done".
        // A thousandth of a byte can never matter for completion times but a
        // tighter threshold can strand flows whose ETA rounds below the clock
        // resolution.
        const EPS_BYTES: f64 = 1e-3;
        self.active_order.retain(|&id| {
            let flow = self.flows.get_mut(&id).expect("active flow exists");
            if flow.remaining_bytes() <= EPS_BYTES {
                flow.transferred_bytes = flow.total_bytes;
                flow.state = FlowState::Completed;
                flow.completed_at = Some(self.now);
                flow.rate = 0.0;
                finished.push(id);
                false
            } else {
                true
            }
        });
        for id in &finished {
            let flow = self.flows[id].clone();
            let duration = self.now - flow.started_at;
            self.completed.push(CompletedFlow { flow, duration });
        }
        finished
    }

    /// Recompute max-min fair rates for all active flows and refresh the
    /// per-resource utilization cache.
    fn reallocate(&mut self) {
        let demands: Vec<FlowDemand> = self
            .active_order
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let flow = &self.flows[id];
                FlowDemand {
                    index: i,
                    resources: self.topology.route(flow.src, flow.dst).resources,
                    rate_cap: f64::INFINITY,
                }
            })
            .collect();
        let topo = &self.topology;
        let rates = max_min_fair_rates(&demands, |r| topo.resource_capacity(r));
        let mut utilization: HashMap<Resource, f64> = HashMap::new();
        for (i, id) in self.active_order.iter().enumerate() {
            let rate = rates[i];
            for &r in &demands[i].resources {
                *utilization.entry(r).or_insert(0.0) += rate;
            }
            self.flows.get_mut(id).expect("active flow exists").rate = rate;
        }
        for (r, used) in utilization.iter_mut() {
            let cap = self.topology.resource_capacity(*r);
            *used = if cap > 0.0 {
                (*used / cap).clamp(0.0, 1.0)
            } else {
                1.0
            };
        }
        self.utilization = utilization;
    }

    /// Cumulative interface counters for `node`.
    pub fn counters(&self, node: NodeId) -> InterfaceCounters {
        self.counters[node.0]
    }

    /// Instantaneous tx/rx rates for `node` (sum of its active flows' rates).
    pub fn node_rates(&self, node: NodeId) -> NodeRates {
        let mut rates = NodeRates::default();
        for id in &self.active_order {
            let flow = &self.flows[id];
            if flow.src == node {
                rates.tx_rate += flow.rate;
            }
            if flow.dst == node {
                rates.rx_rate += flow.rate;
            }
        }
        rates
    }

    /// Utilization (0..=1) of the most loaded resource along the `a -> b` path.
    pub fn path_utilization(&self, a: NodeId, b: NodeId) -> f64 {
        self.topology
            .route(a, b)
            .resources
            .iter()
            .map(|r| self.utilization.get(r).copied().unwrap_or(0.0))
            .fold(0.0, f64::max)
    }

    /// Current round-trip time between two nodes, inflated by congestion along
    /// both directions of the path, with deterministic jitter from `jitter_seed`.
    pub fn current_rtt(&self, a: NodeId, b: NodeId, jitter_seed: u64) -> SimDuration {
        let base = self.topology.base_rtt(a, b);
        let util = self.path_utilization(a, b).max(self.path_utilization(b, a));
        self.rtt_model.rtt(base, util, jitter_seed)
    }

    /// Aggregate bytes currently in flight (remaining bytes of active flows).
    pub fn bytes_in_flight(&self) -> f64 {
        self.active_order
            .iter()
            .map(|id| self.flows[id].remaining_bytes())
            .sum()
    }

    /// Run the network until every active flow completes (or `max_horizon`
    /// elapses), returning the time at which the last flow finished.
    pub fn run_to_quiescence(&mut self, max_horizon: SimDuration) -> SimTime {
        let deadline = self.now + max_horizon;
        while !self.active_order.is_empty() {
            match self.next_completion() {
                Some(t) if t <= deadline => self.advance_to(t),
                _ => {
                    self.advance_to(deadline);
                    break;
                }
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use crate::{gbps, mbps};

    /// 2 sites x 2 nodes, 30 ms / 500 Mbps WAN link, 1 Gbps NICs.
    fn network() -> Network {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("alpha", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("beta", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-3", s1, gbps(1.0), gbps(1.0));
        b.add_node("node-4", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(30), mbps(500.0));
        Network::new(b.build().unwrap())
    }

    #[test]
    fn single_flow_completes_at_expected_time() {
        let mut net = network();
        // 62.5 MB over a 500 Mbps (= 62.5 MB/s) WAN bottleneck -> 1 second.
        let id = net.start_flow(NodeId(0), NodeId(2), 62_500_000.0, FlowKind::Shuffle);
        let done = net.next_completion().unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6, "{done}");
        net.advance_to(done);
        let flow = net.flow(id).unwrap();
        assert!(flow.is_complete());
        assert_eq!(net.active_flow_count(), 0);
        assert_eq!(net.completed().len(), 1);
        assert!((net.counters(NodeId(0)).tx_bytes - 62_500_000.0).abs() < 1.0);
        assert!((net.counters(NodeId(2)).rx_bytes - 62_500_000.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_the_wan_bottleneck() {
        let mut net = network();
        // Two identical inter-site flows share 62.5 MB/s -> each gets 31.25 MB/s.
        let a = net.start_flow(NodeId(0), NodeId(2), 31_250_000.0, FlowKind::Shuffle);
        let b = net.start_flow(NodeId(1), NodeId(3), 31_250_000.0, FlowKind::Shuffle);
        let rate_a = net.flow(a).unwrap().rate;
        let rate_b = net.flow(b).unwrap().rate;
        assert!((rate_a - 31_250_000.0).abs() < 1.0);
        assert!((rate_b - 31_250_000.0).abs() < 1.0);
        let done = net.next_completion().unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance_to(done);
        assert_eq!(net.active_flow_count(), 0);
    }

    #[test]
    fn remaining_flow_speeds_up_after_first_completes() {
        let mut net = network();
        // Flow A: 31.25 MB, flow B: 93.75 MB, sharing 62.5 MB/s.
        // Phase 1: both at 31.25 MB/s, A finishes at t=1 (B has 62.5 MB left).
        // Phase 2: B alone at 62.5 MB/s, finishes 1 s later at t=2.
        net.start_flow(NodeId(0), NodeId(2), 31_250_000.0, FlowKind::Shuffle);
        let b = net.start_flow(NodeId(1), NodeId(3), 93_750_000.0, FlowKind::Shuffle);
        net.advance_to(SimTime::from_secs(10));
        let flow_b = net.flow(b).unwrap();
        assert!(flow_b.is_complete());
        let done_at = flow_b.completed_at.unwrap().as_secs_f64();
        assert!((done_at - 2.0).abs() < 1e-6, "B finished at {done_at}");
    }

    #[test]
    fn intra_site_flows_use_lan_and_are_fast() {
        let mut net = network();
        // 125 MB at 1 Gbps NIC limit (125 MB/s) -> 1 second; LAN fabric is 10 Gbps.
        let id = net.start_flow(NodeId(0), NodeId(1), 125_000_000.0, FlowKind::Shuffle);
        let done = net.next_completion().unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance_to(done);
        assert!(net.flow(id).unwrap().is_complete());
    }

    #[test]
    fn loopback_flow_completes_immediately() {
        let mut net = network();
        let id = net.start_flow(NodeId(0), NodeId(0), 1_000_000_000.0, FlowKind::Shuffle);
        let done = net.next_completion().unwrap();
        assert!(done.as_secs_f64() < 0.01);
        net.advance_to(done);
        assert!(net.flow(id).unwrap().is_complete());
    }

    #[test]
    fn cancel_removes_flow_and_frees_bandwidth() {
        let mut net = network();
        let a = net.start_flow(NodeId(0), NodeId(2), 62_500_000.0, FlowKind::Shuffle);
        let b = net.start_flow(NodeId(1), NodeId(3), 62_500_000.0, FlowKind::Background);
        assert!((net.flow(a).unwrap().rate - 31_250_000.0).abs() < 1.0);
        net.cancel_flow(b);
        assert!((net.flow(a).unwrap().rate - 62_500_000.0).abs() < 1.0);
        assert_eq!(net.flow(b).unwrap().state, FlowState::Cancelled);
        assert_eq!(net.active_flow_count(), 1);
        // Cancelling again is a no-op.
        net.cancel_flow(b);
        assert_eq!(net.active_flow_count(), 1);
    }

    #[test]
    fn node_rates_reflect_active_flows() {
        let mut net = network();
        net.start_flow(NodeId(0), NodeId(2), 1e9, FlowKind::Shuffle);
        net.start_flow(NodeId(0), NodeId(3), 1e9, FlowKind::Shuffle);
        let rates = net.node_rates(NodeId(0));
        // Both flows leave node-1; their combined tx is bounded by the WAN (62.5 MB/s).
        assert!(rates.tx_rate > 0.0);
        assert!(rates.tx_rate <= 62_500_000.0 * 1.001);
        assert_eq!(rates.rx_rate, 0.0);
        let rx = net.node_rates(NodeId(2));
        assert!(rx.rx_rate > 0.0);
        assert_eq!(rx.tx_rate, 0.0);
        // Idle node sees nothing.
        let idle = net.node_rates(NodeId(1));
        assert_eq!(idle, NodeRates::default());
    }

    #[test]
    fn rtt_grows_with_congestion() {
        let mut net = network();
        let quiet = net.current_rtt(NodeId(0), NodeId(2), 1);
        net.start_flow(NodeId(0), NodeId(2), 1e12, FlowKind::Background);
        net.start_flow(NodeId(1), NodeId(3), 1e12, FlowKind::Background);
        let busy = net.current_rtt(NodeId(0), NodeId(2), 1);
        assert!(busy > quiet, "busy {busy} should exceed quiet {quiet}");
        // Base RTT (60 ms) should still dominate the scale.
        assert!(quiet >= SimDuration::from_millis(60));
    }

    #[test]
    fn advance_is_monotone_and_idempotent_backwards() {
        let mut net = network();
        net.start_flow(NodeId(0), NodeId(2), 62_500_000.0, FlowKind::Shuffle);
        net.advance_to(SimTime::from_millis(500));
        let tx_at_half = net.counters(NodeId(0)).tx_bytes;
        assert!((tx_at_half - 31_250_000.0).abs() < 1.0);
        // Advancing "backwards" does nothing.
        net.advance_to(SimTime::from_millis(100));
        assert_eq!(net.counters(NodeId(0)).tx_bytes, tx_at_half);
        assert_eq!(net.now(), SimTime::from_millis(500));
    }

    #[test]
    fn run_to_quiescence_finishes_everything() {
        let mut net = network();
        for i in 0..4 {
            net.start_flow(
                NodeId(i % 4),
                NodeId((i + 2) % 4),
                10_000_000.0,
                FlowKind::Shuffle,
            );
        }
        let end = net.run_to_quiescence(SimDuration::from_secs(3600));
        assert_eq!(net.active_flow_count(), 0);
        assert!(end > SimTime::ZERO);
        assert_eq!(net.drain_completed().len(), 4);
        assert!(net.completed().is_empty());
    }

    #[test]
    fn bytes_in_flight_decreases() {
        let mut net = network();
        net.start_flow(NodeId(0), NodeId(2), 62_500_000.0, FlowKind::Shuffle);
        let before = net.bytes_in_flight();
        net.advance_to(SimTime::from_millis(200));
        let after = net.bytes_in_flight();
        assert!(after < before);
    }

    #[test]
    fn path_utilization_is_bounded() {
        let mut net = network();
        for _ in 0..8 {
            net.start_flow(NodeId(0), NodeId(2), 1e12, FlowKind::Background);
        }
        let u = net.path_utilization(NodeId(0), NodeId(2));
        assert!(u > 0.9 && u <= 1.0, "utilization {u}");
        assert_eq!(net.path_utilization(NodeId(1), NodeId(1)), 0.0);
    }
}
