//! Congestion-aware round-trip-time model.
//!
//! The paper's ping-mesh exporter measures RTT between every pair of nodes;
//! the learned model uses the mean/max/std of those RTTs as features. In the
//! real testbed RTT inflates when paths are congested (queueing delay) and
//! fluctuates with background noise. This module reproduces both effects with
//! a simple, deterministic model:
//!
//! `rtt = base + queuing(base, utilization) + jitter(seed)`
//!
//! * queuing delay grows super-linearly as utilization approaches 1 (an M/M/1
//!   style `u / (1 - u)` term, capped),
//! * jitter is a small deterministic pseudo-random perturbation derived from
//!   the caller-provided seed, so telemetry is reproducible run-to-run.

use serde::{Deserialize, Serialize};
use simcore::rng::SplitMix64;
use simcore::SimDuration;

/// Parameters of the RTT model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttModel {
    /// Maximum queuing delay added when a path is fully saturated, expressed
    /// as a multiple of the base RTT.
    pub max_congestion_factor: f64,
    /// Cap on the `u/(1-u)` term to keep delays finite at u = 1.
    pub queue_term_cap: f64,
    /// Relative jitter amplitude (fraction of base RTT), applied symmetrically.
    pub jitter_fraction: f64,
    /// Minimum RTT floor.
    pub floor: SimDuration,
}

impl Default for RttModel {
    fn default() -> Self {
        RttModel {
            max_congestion_factor: 1.5,
            queue_term_cap: 9.0,
            // Dedicated L3 paths over FABNetv4 show little idle jitter; most
            // of the observed RTT variation comes from congestion.
            jitter_fraction: 0.02,
            floor: SimDuration::from_micros(50),
        }
    }
}

impl RttModel {
    /// A model with no jitter (useful in analytic tests).
    pub fn deterministic() -> Self {
        RttModel {
            jitter_fraction: 0.0,
            ..Default::default()
        }
    }

    /// Compute the RTT given the uncongested base RTT, the bottleneck
    /// utilization along the path (0..=1) and a jitter seed.
    pub fn rtt(&self, base: SimDuration, utilization: f64, jitter_seed: u64) -> SimDuration {
        let u = utilization.clamp(0.0, 0.999);
        // M/M/1-flavoured queuing term, normalized so that utilization = 0.9
        // (queue term 9.0 with the default cap) yields `max_congestion_factor`
        // times the base RTT of extra delay.
        let queue_term = (u / (1.0 - u)).min(self.queue_term_cap);
        let congestion = self.max_congestion_factor * queue_term / self.queue_term_cap;
        let jitter = if self.jitter_fraction > 0.0 {
            let mut rng = SplitMix64::new(jitter_seed);
            // Map to [-1, 1).
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
            unit * self.jitter_fraction
        } else {
            0.0
        };
        let factor = (1.0 + congestion + jitter).max(0.0);
        let rtt = base.mul_f64(factor);
        rtt.max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncongested_rtt_is_close_to_base() {
        let m = RttModel::deterministic();
        let base = SimDuration::from_millis(60);
        assert_eq!(m.rtt(base, 0.0, 0), base);
    }

    #[test]
    fn rtt_increases_with_utilization() {
        let m = RttModel::deterministic();
        let base = SimDuration::from_millis(60);
        let low = m.rtt(base, 0.2, 0);
        let mid = m.rtt(base, 0.6, 0);
        let high = m.rtt(base, 0.95, 0);
        assert!(low < mid && mid < high);
        // Full saturation adds at most max_congestion_factor x base.
        let max = m.rtt(base, 1.0, 0);
        assert!(max <= base.mul_f64(1.0 + m.max_congestion_factor) + SimDuration::from_nanos(1));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let m = RttModel::default();
        let base = SimDuration::from_millis(10);
        let a = m.rtt(base, 0.1, 42);
        let b = m.rtt(base, 0.1, 42);
        assert_eq!(a, b);
        let c = m.rtt(base, 0.1, 43);
        // Different seeds usually differ (not strictly guaranteed, but with
        // this seed pair they do).
        assert_ne!(a, c);
        // Bounded by the jitter fraction.
        let lo = base.mul_f64(1.0 - m.jitter_fraction - 1e-9);
        let hi = base.mul_f64(
            1.0 + m.max_congestion_factor * (0.1 / 0.9) / m.queue_term_cap
                + m.jitter_fraction
                + 1e-9,
        );
        assert!(a >= lo && a <= hi, "{a} not in [{lo}, {hi}]");
    }

    #[test]
    fn floor_applies_to_tiny_base() {
        let m = RttModel::default();
        let rtt = m.rtt(SimDuration::from_nanos(10), 0.0, 7);
        assert!(rtt >= m.floor);
    }

    #[test]
    fn utilization_out_of_range_is_clamped() {
        let m = RttModel::deterministic();
        let base = SimDuration::from_millis(20);
        let neg = m.rtt(base, -5.0, 0);
        assert_eq!(neg, base);
        let over = m.rtt(base, 7.0, 0);
        assert!(over > base);
        assert!(over <= base.mul_f64(1.0 + m.max_congestion_factor) + SimDuration::from_nanos(1));
    }
}
