//! # simnet — flow-level geo-distributed network substrate
//!
//! The paper's evaluation runs on a 6-node Kubernetes cluster spread across
//! three FABRIC sites (UCSD, FIU, SRI) connected over the FABNetv4 data plane,
//! with inter-site RTTs of 10–72 ms. The scheduler never sees packets — it
//! sees *telemetry*: inter-node RTT, per-node transmit/receive throughput.
//! This crate therefore models the network at the flow level:
//!
//! * [`topology`] — sites, nodes (with NIC capacities), WAN links between
//!   sites, and shortest-path routing over the site graph.
//! * [`flow`] — bulk data transfers (shuffle traffic, background downloads)
//!   described by source, destination and byte count.
//! * [`fairness`] — max-min fair bandwidth allocation (progressive filling)
//!   across every capacitated resource a flow crosses (source NIC egress,
//!   WAN link directions, destination NIC ingress).
//! * [`network`] — the fluid simulator: advance time, transfer bytes at the
//!   current fair rates, detect flow completions, expose per-node interface
//!   counters and instantaneous rates.
//! * [`rtt`] — a congestion-aware RTT model (propagation + queuing that grows
//!   with link utilization + jitter) probed by the telemetry ping mesh.
//! * [`background`] — the paper's background-load pod (a curl loop repeatedly
//!   fetching a 10 MB file) as a stochastic flow generator plus a CPU
//!   contention component.
//!
//! The crate has no event loop of its own: the owner (the cluster/workload
//! simulation in `sparksim`/`experiments`) advances it between events via
//! [`network::Network::advance_to`] and asks for the next interesting time via
//! [`network::Network::next_completion`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod fairness;
pub mod flow;
pub mod generators;
pub mod network;
pub mod rtt;
pub mod topology;

pub use background::{
    place_random_background_load, BackgroundLoadConfig, BackgroundLoadGenerator, BackgroundTransfer,
};
pub use flow::{Flow, FlowId, FlowState};
pub use generators::{
    FatTreeLiteSpec, LeafSpineSpec, StarLanSpec, TieredClosSpec, TopologySpec, WanMeshSpec,
};
pub use network::{InterfaceCounters, Network, NodeRates};
pub use rtt::RttModel;
pub use topology::{LinkId, NetNode, NodeId, Site, SiteId, Topology, TopologyBuilder};

/// Alias for [`topology::NodeId`] that cannot be confused with
/// `cluster::NodeId` when both id spaces are in scope downstream (the cluster
/// crate exports the matching `ClusterNodeId` alias).
pub use topology::NodeId as SimNodeId;

/// Convert megabits per second to bytes per second.
pub fn mbps(v: f64) -> f64 {
    v * 1_000_000.0 / 8.0
}

/// Convert gigabits per second to bytes per second.
pub fn gbps(v: f64) -> f64 {
    v * 1_000_000_000.0 / 8.0
}

/// Convert megabytes to bytes.
pub fn megabytes(v: f64) -> f64 {
    v * 1_000_000.0
}

/// Convert gigabytes to bytes.
pub fn gigabytes(v: f64) -> f64 {
    v * 1_000_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_helpers() {
        assert_eq!(mbps(8.0), 1_000_000.0);
        assert_eq!(gbps(1.0), 125_000_000.0);
        assert_eq!(megabytes(10.0), 10_000_000.0);
        assert_eq!(gigabytes(2.0), 2_000_000_000.0);
    }
}
