//! Parameterized topology generators.
//!
//! The paper evaluates on exactly one substrate — the 6-node, 3-site FABRIC
//! slice of Figure 4 — but a network-aware scheduler has to be judged across
//! heterogeneous fabrics and contention regimes (Decima and CASSINI both make
//! this point). This module generates whole families of topologies from small
//! declarative specs so the experiment harness can sweep a scenario matrix
//! instead of a single slice:
//!
//! * [`StarLanSpec`] — a single-site LAN: every node behind one switch, so
//!   completion differences come from CPU/memory contention and NIC sharing.
//! * [`LeafSpineSpec`] — a two-tier Clos fabric: leaf sites holding nodes,
//!   spine sites providing the cross-leaf paths.
//! * [`FatTreeLiteSpec`] — a reduced three-tier fat-tree: pods of edge sites
//!   under aggregation sites under one core, with oversubscription between
//!   tiers.
//! * [`WanMeshSpec`] — N geo-distributed sites on a randomized WAN mesh with
//!   configurable delay/capacity ranges and heterogeneous NICs (the
//!   generalization of the FABRIC slice).
//!
//! Every generator is **deterministic in `(spec, seed)`**: the same spec and
//! seed always produce byte-identical topologies, which is what lets the
//! scenario sweep pin its results run-to-run. Node names follow the `node-1
//! ... node-N` convention used by the cluster layer throughout the workspace.

use crate::topology::{Topology, TopologyBuilder, TopologyError};
use crate::{gbps, mbps};
use serde::{Deserialize, Serialize};
use simcore::rng::Rng;
use simcore::SimDuration;

/// Single-site LAN ("star"): all nodes attached to one local fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarLanSpec {
    /// Number of nodes behind the switch.
    pub nodes: usize,
    /// NIC capacity per node, bytes/sec.
    pub nic_bps: f64,
    /// Shared fabric capacity, bytes/sec.
    pub fabric_bps: f64,
    /// One-way delay between co-located nodes, microseconds.
    pub lan_delay_us: u64,
}

impl Default for StarLanSpec {
    fn default() -> Self {
        StarLanSpec {
            nodes: 6,
            nic_bps: gbps(1.0),
            fabric_bps: gbps(10.0),
            lan_delay_us: 150,
        }
    }
}

/// Two-tier leaf–spine fabric. Leaves are sites holding nodes; spines are
/// transit-only sites. Every leaf connects to every spine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafSpineSpec {
    /// Number of leaf switches (sites with nodes).
    pub leaves: usize,
    /// Nodes attached to each leaf.
    pub nodes_per_leaf: usize,
    /// Number of spine switches (transit sites).
    pub spines: usize,
    /// One-way leaf↔spine link delay, microseconds.
    pub link_delay_us: u64,
    /// Leaf↔spine link capacity, bytes/sec.
    pub link_bps: f64,
    /// NIC capacity per node, bytes/sec.
    pub nic_bps: f64,
}

impl Default for LeafSpineSpec {
    fn default() -> Self {
        LeafSpineSpec {
            leaves: 3,
            nodes_per_leaf: 2,
            spines: 2,
            link_delay_us: 250,
            link_bps: mbps(800.0),
            nic_bps: gbps(1.0),
        }
    }
}

/// Reduced three-tier fat-tree: `pods` pods, each with `edges_per_pod` edge
/// sites (holding nodes) under one aggregation site, all aggregation sites
/// under a single core. Tier capacities narrow toward the core, producing the
/// classic oversubscription that makes cross-pod traffic contend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTreeLiteSpec {
    /// Number of pods.
    pub pods: usize,
    /// Edge sites per pod.
    pub edges_per_pod: usize,
    /// Nodes per edge site.
    pub nodes_per_edge: usize,
    /// One-way edge↔aggregation delay, microseconds.
    pub edge_agg_delay_us: u64,
    /// One-way aggregation↔core delay, microseconds.
    pub agg_core_delay_us: u64,
    /// Edge↔aggregation link capacity, bytes/sec.
    pub edge_agg_bps: f64,
    /// Aggregation↔core link capacity, bytes/sec (the oversubscribed tier).
    pub agg_core_bps: f64,
    /// NIC capacity per node, bytes/sec.
    pub nic_bps: f64,
}

impl Default for FatTreeLiteSpec {
    fn default() -> Self {
        FatTreeLiteSpec {
            pods: 3,
            edges_per_pod: 2,
            nodes_per_edge: 1,
            edge_agg_delay_us: 150,
            agg_core_delay_us: 400,
            edge_agg_bps: gbps(1.0),
            agg_core_bps: mbps(600.0),
            nic_bps: gbps(1.0),
        }
    }
}

/// Three-tier Clos fabric at datacenter scale: racks of nodes under leaf
/// switches, leaves grouped into pods under aggregation switches, pods joined
/// through one spine tier. This is the family the 1k–10k-node scale worlds
/// come from — per-tier oversubscription plus rack locality gives the
/// network-aware scheduler real structure to exploit, while site count grows
/// only as `racks + pods + 1`, so building a 10k-node topology stays cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredClosSpec {
    /// Number of racks (leaf sites holding nodes).
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Racks under each aggregation (pod) switch.
    pub racks_per_pod: usize,
    /// One-way rack↔pod link delay, microseconds.
    pub rack_pod_delay_us: u64,
    /// One-way pod↔spine link delay, microseconds.
    pub pod_spine_delay_us: u64,
    /// Rack↔pod link capacity, bytes/sec.
    pub rack_pod_bps: f64,
    /// Pod↔spine link capacity, bytes/sec (the oversubscribed tier).
    pub pod_spine_bps: f64,
    /// NIC capacity per node, bytes/sec.
    pub nic_bps: f64,
}

impl Default for TieredClosSpec {
    fn default() -> Self {
        TieredClosSpec {
            racks: 25,
            nodes_per_rack: 40,
            racks_per_pod: 8,
            rack_pod_delay_us: 120,
            pod_spine_delay_us: 300,
            rack_pod_bps: gbps(40.0),
            pod_spine_bps: gbps(25.0),
            nic_bps: gbps(10.0),
        }
    }
}

impl TieredClosSpec {
    /// A spec holding (at least) `total` nodes in 40-node racks, 8 racks per
    /// pod — the preset family behind the 1k/4k/10k scale worlds.
    pub fn with_total_nodes(total: usize) -> Self {
        let nodes_per_rack = 40;
        TieredClosSpec {
            racks: total.div_ceil(nodes_per_rack).max(1),
            nodes_per_rack,
            ..Default::default()
        }
    }
}

/// N-site WAN mesh: a connectivity ring plus random chords, with per-link
/// delays/capacities and per-node NIC capacities drawn from configurable
/// ranges. This is the FABRIC slice generalized to arbitrary scale and
/// heterogeneity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanMeshSpec {
    /// Number of geographic sites.
    pub sites: usize,
    /// Nodes per site.
    pub nodes_per_site: usize,
    /// One-way WAN link delay range, milliseconds `(min, max)`.
    pub delay_ms: (f64, f64),
    /// WAN link capacity range, bytes/sec `(min, max)`.
    pub link_bps: (f64, f64),
    /// Per-node NIC capacity range, bytes/sec `(min, max)` — NIC heterogeneity.
    pub nic_bps: (f64, f64),
    /// Fraction of the non-ring site pairs additionally connected by a chord
    /// (0 = pure ring, 1 = full mesh).
    pub chord_fraction: f64,
    /// One-way delay between co-located nodes, microseconds.
    pub lan_delay_us: u64,
    /// Intra-site fabric capacity, bytes/sec.
    pub lan_bps: f64,
}

impl Default for WanMeshSpec {
    fn default() -> Self {
        WanMeshSpec {
            sites: 4,
            nodes_per_site: 2,
            delay_ms: (5.0, 40.0),
            link_bps: (mbps(300.0), mbps(900.0)),
            nic_bps: (mbps(800.0), mbps(1200.0)),
            chord_fraction: 0.35,
            lan_delay_us: 150,
            lan_bps: gbps(10.0),
        }
    }
}

/// Declarative description of a generated topology family member.
///
/// `build(seed)` is deterministic in `(self, seed)`; specs serialize, so a
/// scenario report fully describes the substrate it was measured on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Single-site LAN.
    StarLan(StarLanSpec),
    /// Two-tier leaf–spine fabric.
    LeafSpine(LeafSpineSpec),
    /// Reduced three-tier fat-tree.
    FatTreeLite(FatTreeLiteSpec),
    /// Datacenter-scale three-tier Clos (racks → pods → spine).
    TieredClos(TieredClosSpec),
    /// Randomized N-site WAN mesh.
    WanMesh(WanMeshSpec),
}

impl TopologySpec {
    /// Short human-readable name, e.g. `leaf-spine-3x2` or `wan-mesh-4x2`.
    pub fn name(&self) -> String {
        match self {
            TopologySpec::StarLan(s) => format!("star-lan-{}", s.nodes),
            TopologySpec::LeafSpine(s) => {
                format!("leaf-spine-{}x{}", s.leaves, s.nodes_per_leaf)
            }
            TopologySpec::FatTreeLite(s) => format!(
                "fat-tree-{}p{}e{}n",
                s.pods, s.edges_per_pod, s.nodes_per_edge
            ),
            TopologySpec::TieredClos(s) => {
                format!("tiered-clos-{}x{}", s.racks, s.nodes_per_rack)
            }
            TopologySpec::WanMesh(s) => format!("wan-mesh-{}x{}", s.sites, s.nodes_per_site),
        }
    }

    /// Number of compute nodes the built topology will hold.
    pub fn node_count(&self) -> usize {
        match self {
            TopologySpec::StarLan(s) => s.nodes,
            TopologySpec::LeafSpine(s) => s.leaves * s.nodes_per_leaf,
            TopologySpec::FatTreeLite(s) => s.pods * s.edges_per_pod * s.nodes_per_edge,
            TopologySpec::TieredClos(s) => s.racks * s.nodes_per_rack,
            TopologySpec::WanMesh(s) => s.sites * s.nodes_per_site,
        }
    }

    /// Build the topology. Deterministic in `(self, seed)`; the seed only
    /// matters for specs that randomize (currently [`WanMeshSpec`]).
    pub fn build(&self, seed: u64) -> Result<Topology, TopologyError> {
        match self {
            TopologySpec::StarLan(s) => build_star_lan(s),
            TopologySpec::LeafSpine(s) => build_leaf_spine(s),
            TopologySpec::FatTreeLite(s) => build_fat_tree_lite(s),
            TopologySpec::TieredClos(s) => build_tiered_clos(s),
            TopologySpec::WanMesh(s) => build_wan_mesh(s, seed),
        }
    }
}

fn build_star_lan(spec: &StarLanSpec) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();
    let site = b.add_site(
        "lan",
        SimDuration::from_micros(spec.lan_delay_us.max(1)),
        spec.fabric_bps,
    );
    for i in 0..spec.nodes {
        b.add_node(format!("node-{}", i + 1), site, spec.nic_bps, spec.nic_bps);
    }
    b.build()
}

fn build_leaf_spine(spec: &LeafSpineSpec) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();
    let lan_delay = SimDuration::from_micros(100);
    let leaves: Vec<_> = (0..spec.leaves)
        .map(|l| b.add_site(format!("leaf-{}", l + 1), lan_delay, gbps(10.0)))
        .collect();
    let spines: Vec<_> = (0..spec.spines.max(1))
        .map(|s| b.add_site(format!("spine-{}", s + 1), lan_delay, gbps(10.0)))
        .collect();
    // Nodes numbered round-robin across leaves, like the FABRIC testbed.
    for i in 0..spec.leaves * spec.nodes_per_leaf {
        let leaf = leaves[i % spec.leaves.max(1)];
        b.add_node(format!("node-{}", i + 1), leaf, spec.nic_bps, spec.nic_bps);
    }
    let delay = SimDuration::from_micros(spec.link_delay_us.max(1));
    for &leaf in &leaves {
        for &spine in &spines {
            b.connect_sites(leaf, spine, delay, spec.link_bps);
        }
    }
    b.build()
}

fn build_fat_tree_lite(spec: &FatTreeLiteSpec) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();
    let lan_delay = SimDuration::from_micros(100);
    let core = b.add_site("core", lan_delay, gbps(40.0));
    let mut edge_sites = Vec::new();
    for p in 0..spec.pods {
        let agg = b.add_site(format!("agg-{}", p + 1), lan_delay, gbps(20.0));
        b.connect_sites(
            agg,
            core,
            SimDuration::from_micros(spec.agg_core_delay_us.max(1)),
            spec.agg_core_bps,
        );
        for e in 0..spec.edges_per_pod {
            let edge = b.add_site(format!("edge-{}-{}", p + 1, e + 1), lan_delay, gbps(10.0));
            b.connect_sites(
                edge,
                agg,
                SimDuration::from_micros(spec.edge_agg_delay_us.max(1)),
                spec.edge_agg_bps,
            );
            edge_sites.push(edge);
        }
    }
    // Nodes numbered round-robin across edge sites.
    for i in 0..edge_sites.len() * spec.nodes_per_edge {
        let edge = edge_sites[i % edge_sites.len()];
        b.add_node(format!("node-{}", i + 1), edge, spec.nic_bps, spec.nic_bps);
    }
    b.build()
}

fn build_tiered_clos(spec: &TieredClosSpec) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();
    let lan_delay = SimDuration::from_micros(50);
    let spine = b.add_site("spine", lan_delay, gbps(100.0));
    let racks_per_pod = spec.racks_per_pod.max(1);
    let pods = spec.racks.div_ceil(racks_per_pod);
    let pod_sites: Vec<_> = (0..pods)
        .map(|p| {
            let pod = b.add_site(format!("pod-{}", p + 1), lan_delay, gbps(50.0));
            b.connect_sites(
                pod,
                spine,
                SimDuration::from_micros(spec.pod_spine_delay_us.max(1)),
                spec.pod_spine_bps,
            );
            pod
        })
        .collect();
    // Nodes are numbered rack-sequentially (rack 1 holds node-1..node-R):
    // rack locality is the structure the scale worlds exploit, so keep ids
    // contiguous within a rack rather than round-robin like the small
    // families.
    for r in 0..spec.racks {
        let rack = b.add_site(format!("rack-{}", r + 1), lan_delay, gbps(40.0));
        b.connect_sites(
            rack,
            pod_sites[r / racks_per_pod],
            SimDuration::from_micros(spec.rack_pod_delay_us.max(1)),
            spec.rack_pod_bps,
        );
        for n in 0..spec.nodes_per_rack {
            b.add_node(
                format!("node-{}", r * spec.nodes_per_rack + n + 1),
                rack,
                spec.nic_bps,
                spec.nic_bps,
            );
        }
    }
    b.build()
}

/// RNG stream constant for the WAN mesh generator ("WAN MESH" in ASCII-ish hex).
const WAN_MESH_STREAM: u64 = 0x57A4_4E5F_4D45_5348;

fn build_wan_mesh(spec: &WanMeshSpec, seed: u64) -> Result<Topology, TopologyError> {
    let mut rng = Rng::seed_from_u64(seed ^ WAN_MESH_STREAM);
    let mut b = TopologyBuilder::new();
    let lan_delay = SimDuration::from_micros(spec.lan_delay_us.max(1));
    let sites: Vec<_> = (0..spec.sites)
        .map(|s| b.add_site(format!("site-{}", s + 1), lan_delay, spec.lan_bps))
        .collect();
    // Heterogeneous NICs, nodes numbered round-robin across sites.
    let (nic_lo, nic_hi) = spec.nic_bps;
    for i in 0..spec.sites * spec.nodes_per_site {
        let nic = rng.uniform(nic_lo.min(nic_hi), nic_hi.max(nic_lo + 1.0));
        b.add_node(format!("node-{}", i + 1), sites[i % spec.sites], nic, nic);
    }
    let (d_lo, d_hi) = spec.delay_ms;
    let (c_lo, c_hi) = spec.link_bps;
    let draw_link = |b: &mut TopologyBuilder, a: usize, z: usize, rng: &mut Rng| {
        let delay = rng.uniform(d_lo.min(d_hi), d_hi.max(d_lo + 1e-9));
        let cap = rng.uniform(c_lo.min(c_hi), c_hi.max(c_lo + 1.0));
        b.connect_sites(sites[a], sites[z], SimDuration::from_millis_f64(delay), cap);
    };
    // Ring guarantees connectivity (degenerating to a single link for two
    // sites — a two-site "ring" would duplicate the same pair).
    if spec.sites == 2 {
        draw_link(&mut b, 0, 1, &mut rng);
    } else if spec.sites > 2 {
        for s in 0..spec.sites {
            draw_link(&mut b, s, (s + 1) % spec.sites, &mut rng);
        }
    }
    // Random chords over the remaining pairs.
    if spec.sites > 3 {
        for a in 0..spec.sites {
            for z in (a + 1)..spec.sites {
                let on_ring = z == a + 1 || (a == 0 && z == spec.sites - 1);
                if !on_ring && rng.gen_bool(spec.chord_fraction.clamp(0.0, 1.0)) {
                    draw_link(&mut b, a, z, &mut rng);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{max_min_fair_rates, FlowDemand};
    use crate::topology::{NodeId, Resource};
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// The four default family members.
    fn default_specs() -> Vec<TopologySpec> {
        vec![
            TopologySpec::StarLan(StarLanSpec::default()),
            TopologySpec::LeafSpine(LeafSpineSpec::default()),
            TopologySpec::FatTreeLite(FatTreeLiteSpec::default()),
            TopologySpec::TieredClos(TieredClosSpec::default()),
            TopologySpec::WanMesh(WanMeshSpec::default()),
        ]
    }

    #[test]
    fn default_specs_build_with_expected_node_counts_and_names() {
        for spec in default_specs() {
            let topo = spec
                .build(7)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
            assert_eq!(topo.node_count(), spec.node_count(), "{}", spec.name());
            for (i, node) in topo.nodes().iter().enumerate() {
                assert_eq!(node.name, format!("node-{}", i + 1));
            }
            assert!(!spec.name().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_in_spec_and_seed() {
        for spec in default_specs() {
            let a = serde_json::to_string(&spec.build(42).unwrap()).unwrap();
            let b = serde_json::to_string(&spec.build(42).unwrap()).unwrap();
            assert_eq!(a, b, "{} must be reproducible", spec.name());
        }
        // Different seeds actually change the randomized family.
        let mesh = TopologySpec::WanMesh(WanMeshSpec::default());
        let a = serde_json::to_string(&mesh.build(1).unwrap()).unwrap();
        let b = serde_json::to_string(&mesh.build(2).unwrap()).unwrap();
        assert_ne!(a, b, "wan mesh must respond to the seed");
    }

    #[test]
    fn fat_tree_cross_pod_paths_traverse_the_core() {
        let spec = FatTreeLiteSpec::default();
        let topo = TopologySpec::FatTreeLite(spec.clone()).build(0).unwrap();
        // node-1 is in pod 1, node-2 in pod 1 (edge 2)... round robin over 6
        // edges: node-1 -> edge-1-1, node-4 -> edge-2-1 etc. Find two nodes in
        // different pods and check the route has 4 WAN hops (edge-agg-core-agg-edge).
        let a = topo.nodes()[0].id;
        let b_node = topo
            .nodes()
            .iter()
            .find(|n| {
                let sa = topo.site(topo.nodes()[0].site).name.clone();
                let sb = topo.site(n.site).name.clone();
                // different pod: edge-<p>-<e> prefix differs in <p>
                sa.split('-').nth(1) != sb.split('-').nth(1)
            })
            .expect("a node in another pod");
        let route = topo.route(a, b_node.id);
        let wan_hops = route
            .resources
            .iter()
            .filter(|r| matches!(r, Resource::LinkDir(..)))
            .count();
        assert_eq!(wan_hops, 4, "route {:?}", route.site_path);
    }

    #[test]
    fn tiered_clos_scales_to_ten_thousand_nodes_with_rack_locality() {
        let spec = TieredClosSpec::with_total_nodes(10_000);
        let topo = TopologySpec::TieredClos(spec.clone()).build(0).unwrap();
        assert_eq!(topo.node_count(), 10_000);
        assert_eq!(spec.racks, 250);

        // Same rack: no WAN hops at all.
        let same_rack = topo.route(NodeId(0), NodeId(1));
        assert_eq!(
            same_rack
                .resources
                .iter()
                .filter(|r| matches!(r, Resource::LinkDir(..)))
                .count(),
            0
        );
        // Same pod, different rack: rack → pod → rack, two WAN hops.
        let cross_rack = topo.route(NodeId(0), NodeId(spec.nodes_per_rack));
        assert_eq!(
            cross_rack
                .resources
                .iter()
                .filter(|r| matches!(r, Resource::LinkDir(..)))
                .count(),
            2
        );
        // Different pods: rack → pod → spine → pod → rack, four WAN hops.
        let cross_pod = topo.route(NodeId(0), NodeId(spec.racks_per_pod * spec.nodes_per_rack));
        let wan_hops = cross_pod
            .resources
            .iter()
            .filter(|r| matches!(r, Resource::LinkDir(..)))
            .count();
        assert_eq!(wan_hops, 4, "route {:?}", cross_pod.site_path);
        let transit = topo.site(cross_pod.site_path[2]).name.clone();
        assert_eq!(transit, "spine");
    }

    #[test]
    fn two_site_mesh_has_exactly_one_wan_link() {
        let topo = TopologySpec::WanMesh(WanMeshSpec {
            sites: 2,
            nodes_per_site: 2,
            ..Default::default()
        })
        .build(4)
        .unwrap();
        assert_eq!(topo.links().len(), 1, "no phantom parallel ring link");
    }

    #[test]
    fn leaf_spine_uses_a_spine_transit_site() {
        let topo = TopologySpec::LeafSpine(LeafSpineSpec::default())
            .build(0)
            .unwrap();
        // node-1 (leaf-1) to node-2 (leaf-2): two WAN hops via a spine.
        let route = topo.route(NodeId(0), NodeId(1));
        assert_eq!(route.site_path.len(), 3);
        let transit = topo.site(route.site_path[1]).name.clone();
        assert!(transit.starts_with("spine-"), "{transit}");
    }

    fn arb_spec() -> impl Strategy<Value = (TopologySpec, u64)> {
        (
            0usize..4,
            2usize..6,
            1usize..4,
            1u64..1_000_000,
            0.0f64..1.0,
        )
            .prop_map(|(family, breadth, depth, seed, chord)| {
                let spec = match family {
                    0 => TopologySpec::StarLan(StarLanSpec {
                        nodes: breadth * depth,
                        ..Default::default()
                    }),
                    1 => TopologySpec::LeafSpine(LeafSpineSpec {
                        leaves: breadth,
                        nodes_per_leaf: depth,
                        spines: 1 + breadth / 2,
                        ..Default::default()
                    }),
                    2 => TopologySpec::FatTreeLite(FatTreeLiteSpec {
                        pods: breadth.min(4),
                        edges_per_pod: depth.min(3),
                        nodes_per_edge: 1 + depth % 2,
                        ..Default::default()
                    }),
                    _ => TopologySpec::WanMesh(WanMeshSpec {
                        sites: breadth,
                        nodes_per_site: depth,
                        chord_fraction: chord,
                        ..Default::default()
                    }),
                };
                (spec, seed)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every generated topology is connected: the builder succeeds (it
        /// errors on unreachable site pairs) and every ordered node pair has a
        /// route whose endpoints' NICs bracket the resource list.
        #[test]
        fn generated_topologies_are_connected(spec_seed in arb_spec()) {
            let (spec, seed) = spec_seed;
            let topo = spec.build(seed).map_err(|e| format!("{}: {e}", spec.name()))?;
            prop_assert_eq!(topo.node_count(), spec.node_count());
            for a in topo.node_ids() {
                for b in topo.node_ids() {
                    let route = topo.route(a, b);
                    if a == b {
                        prop_assert!(route.resources.is_empty());
                    } else {
                        prop_assert_eq!(route.resources.first(), Some(&Resource::NodeEgress(a)));
                        prop_assert_eq!(route.resources.last(), Some(&Resource::NodeIngress(b)));
                    }
                }
            }
        }

        /// Site-level Dijkstra is symmetric in delay: the minimum-delay path
        /// from a to b costs exactly what the path from b to a costs (links are
        /// full duplex with symmetric delays).
        #[test]
        fn site_paths_are_delay_symmetric(spec_seed in arb_spec()) {
            let (spec, seed) = spec_seed;
            let topo = spec.build(seed).map_err(|e| format!("{}: {e}", spec.name()))?;
            for a in topo.node_ids() {
                for b in topo.node_ids() {
                    let fwd = topo.route(a, b).delay;
                    let rev = topo.route(b, a).delay;
                    prop_assert!(fwd == rev, "asymmetric delay {a} -> {b}: {fwd:?} vs {rev:?}");
                    prop_assert_eq!(topo.base_rtt(a, b), topo.base_rtt(b, a));
                }
            }
        }

        /// Max-min fair shares over generated topologies never oversubscribe
        /// any traversed resource, and no flow with a route is starved.
        #[test]
        fn fair_shares_respect_generated_capacities(
            spec_seed in arb_spec(),
            pairs in prop::collection::vec((0usize..1000, 0usize..1000), 1..12),
        ) {
            let (spec, seed) = spec_seed;
            let topo = spec.build(seed).map_err(|e| format!("{}: {e}", spec.name()))?;
            let n = topo.node_count();
            let demands: Vec<FlowDemand> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| FlowDemand {
                    index: i,
                    resources: topo.route(NodeId(a % n), NodeId(b % n)).resources.clone(),
                    rate_cap: f64::INFINITY,
                })
                .collect();
            let rates = max_min_fair_rates(&demands, |r| topo.resource_capacity(r));
            let mut usage: HashMap<Resource, f64> = HashMap::new();
            for (d, &rate) in demands.iter().zip(&rates) {
                prop_assert!(rate >= 0.0);
                if !d.resources.is_empty() {
                    prop_assert!(rate > 0.0, "flow {} starved", d.index);
                }
                for &res in &d.resources {
                    *usage.entry(res).or_insert(0.0) += rate;
                }
            }
            for (res, total) in usage {
                let cap = topo.resource_capacity(res);
                prop_assert!(
                    total <= cap * (1.0 + 1e-9),
                    "{res:?} oversubscribed: {total} > {cap}"
                );
            }
        }
    }
}
