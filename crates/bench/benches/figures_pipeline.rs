//! Bench: the telemetry-figure pipelines (Figures 2 and 3: per-node latency
//! and transmit bandwidth over repeated Sort runs) and the Figure 4 topology
//! probe, plus the Table 2/3 characterization runs.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::{figure4_topology, sort_telemetry_figures};
use experiments::tables::{table2_workload_characteristics, table3_sample};
use std::hint::black_box;

fn figure_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("figures_2_and_3_sort_runs", |b| {
        b.iter(|| black_box(sort_telemetry_figures(2, 100_000, 77)))
    });
    group.bench_function("figure4_topology_probe", |b| {
        b.iter(|| black_box(figure4_topology(77)))
    });
    group.finish();
}

fn table_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_workload_characterization", |b| {
        b.iter(|| black_box(table2_workload_characteristics(100_000, 77)))
    });
    group.bench_function("table3_sample_row", |b| {
        b.iter(|| black_box(table3_sample(77)))
    });
    group.finish();
}

criterion_group!(benches, figure_benches, table_benches);
criterion_main!(benches);
