//! Bench: telemetry ingest throughput, sequential vs concurrent.
//!
//! The sharded ingest pipeline exists to keep scraping off the decision
//! path at scale. This bench drives an 8-exporter world (8 nodes, full ping
//! mesh → 88 series per scrape round) through one hour of 5-second scrape
//! rounds and measures:
//!
//! * `sequential_scrape_1h` — the synchronous [`ScrapeManager`], one round
//!   at a time on the caller thread (the pre-sharding architecture).
//! * `concurrent_ingest_1h` — [`ConcurrentScrapeManager::ingest`] with the
//!   default (adaptive) tuning: worlds below the per-round work threshold
//!   route through the synchronous inline path, larger worlds through the
//!   worker pipeline (exporter evaluation fanned across workers, per-shard
//!   writer workers behind bounded queues, epoch-committed in schedule
//!   order). Store contents are byte-identical to the sequential run (pinned
//!   by `tests/telemetry_ingest.rs`); only wall-clock changes. The 8-node
//!   world also runs with the pipeline *forced* (threshold 0) to record the
//!   cross-thread overhead floor the adaptive fallback avoids.
//! * `fetch_idle` / `fetch_during_ingest` — snapshot-fetch latency from a
//!   [`TelemetryReader`] against an idle store, and while an ingest hammers
//!   the shards from another thread (epoch retries + shard-lock contention
//!   included). The during-ingest median should stay within ~2× idle.
//!
//! Medians are printed criterion-style and written to
//! `results/BENCH_ingest.json`. Run with `-- --smoke` for a 1-round smoke
//! (used by CI; no JSON is written).

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bench::measure;
use cluster::{ClusterState, Node, Resources};
use simcore::{SimDuration, SimTime};
use simnet::{gbps, mbps, Network, NodeId, TopologyBuilder};
use telemetry::{
    ClusterSnapshot, ConcurrentScrapeManager, IngestConfig, ScrapeConfig, ScrapeManager,
    SnapshotSource,
};

/// A two-site world with `n` node exporters and the full ping mesh.
fn world(n: usize) -> (ClusterState, Network) {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_site("A", SimDuration::from_micros(200), gbps(10.0));
    let s1 = b.add_site("B", SimDuration::from_micros(200), gbps(10.0));
    for i in 0..n {
        b.add_node(
            format!("node-{}", i + 1),
            if i % 2 == 0 { s0 } else { s1 },
            gbps(1.0),
            gbps(1.0),
        );
    }
    b.connect_sites(s0, s1, SimDuration::from_millis(20), mbps(500.0));
    let network = Network::new(b.build().unwrap());
    let mut cluster = ClusterState::new();
    for i in 0..n {
        cluster.add_node(Node::new(
            format!("node-{}", i + 1),
            NodeId(i),
            Resources::from_cores_and_gib(6, 8),
            if i % 2 == 0 { "A" } else { "B" },
        ));
    }
    (cluster, network)
}

fn scrape_config() -> ScrapeConfig {
    ScrapeConfig {
        interval: SimDuration::from_secs(5),
        rate_window: SimDuration::from_secs(30),
        retention: Some(SimDuration::from_secs(3600)),
    }
}

/// Median of latency samples, in nanoseconds.
fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The scrape schedule of the `k`-th ingest hour: contiguous 5-second
/// rounds covering `[k·3600 s, k·3600 + 3595 s]`.
fn schedule(k: u64, rounds_per_hour: u64) -> Vec<SimTime> {
    (0..rounds_per_hour)
        .map(|i| SimTime::from_secs(k * 3600 + i * 5))
        .collect()
}

/// Steady-state throughput of one world size: each measured iteration
/// ingests the *next* hour of 5-second rounds into a long-lived manager, so
/// retention keeps the store at a steady ~1 h of history and (for the
/// concurrent manager) the writer pool is spawned once — exactly a
/// long-running server's regime. The stored bytes per schedule are identical
/// between the two paths (pinned by `tests/telemetry_ingest.rs`). Returns
/// `(sequential_ns, concurrent_ns)` per ingested hour.
fn throughput_pair(n: usize, rounds: usize, schedule_rounds: u64) -> (f64, f64) {
    let sequential_ns = sequential_throughput(n, rounds, schedule_rounds);
    let concurrent_ns = concurrent_throughput(n, rounds, schedule_rounds, None);
    (sequential_ns, concurrent_ns)
}

fn sequential_throughput(n: usize, rounds: usize, schedule_rounds: u64) -> f64 {
    let (cluster, network) = world(n);
    println!(
        "world: {} nodes, {} series per round, {} rounds per ingest",
        n,
        n * 4 + n * (n - 1),
        schedule_rounds,
    );
    let mut seq_manager = ScrapeManager::new(scrape_config());
    let mut seq_hour = 0u64;
    measure(
        &format!("ingest_throughput/sequential_scrape_1h_{n}n"),
        rounds,
        || {
            for &t in &schedule(seq_hour, schedule_rounds) {
                seq_manager.scrape(&cluster, &network, t);
            }
            seq_hour += 1;
            black_box(seq_manager.store().point_count())
        },
    )
}

/// Concurrent-manager throughput; `ingest` overrides the tuning (e.g. to
/// force the pipeline below the adaptive threshold), `None` keeps the
/// adaptive default.
fn concurrent_throughput(
    n: usize,
    rounds: usize,
    schedule_rounds: u64,
    ingest: Option<IngestConfig>,
) -> f64 {
    let (cluster, network) = world(n);
    let (label, config) = match ingest {
        Some(config) => ("forced_pipeline", config),
        None => ("concurrent_ingest", IngestConfig::default()),
    };
    let mut conc_manager = ConcurrentScrapeManager::with_ingest(scrape_config(), config);
    let mut conc_hour = 0u64;
    measure(
        &format!("ingest_throughput/{label}_1h_{n}n"),
        rounds,
        || {
            conc_manager.ingest(&cluster, &network, &schedule(conc_hour, schedule_rounds));
            conc_hour += 1;
            black_box(conc_manager.point_count())
        },
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, schedule_rounds) = if smoke { (1, 24u64) } else { (10, 720u64) };
    println!("cores: {}", simcore::parallel::default_workers());

    // Two scale points: the paper-adjacent 8-exporter world (88 series per
    // round — on few-core boxes this sits near the cross-thread overhead
    // floor) and a 64-node world (4 288 series per round) where the
    // pipeline's evaluation/append overlap pays off even on two cores.
    let (sequential_ns, concurrent_ns) = throughput_pair(8, rounds, schedule_rounds);
    // The same small world with the pipeline forced on: the cross-thread
    // overhead floor the adaptive fallback routes around.
    let forced_8_ns = concurrent_throughput(
        8,
        rounds,
        schedule_rounds,
        Some(IngestConfig {
            sync_work_threshold: 0,
            ..IngestConfig::default()
        }),
    );
    let (sequential_64_ns, concurrent_64_ns) = throughput_pair(64, rounds, schedule_rounds);

    let (cluster, network) = world(8);

    // Snapshot-fetch latency: idle store first, then while ingest hammers
    // the shards from another thread. Retention is widened to 2 h so the
    // published fetch edge keeps a full rate window of history behind it for
    // the whole next ingest hour — every fetch exercises the real
    // decision-path query shape (fresh instants + counter-rate windows).
    let latency_config = ScrapeConfig {
        retention: Some(SimDuration::from_secs(7200)),
        ..scrape_config()
    };
    let window = SimDuration::from_secs(30);
    let edge = |k: u64| SimTime::from_secs(k * 3600 + (schedule_rounds - 1) * 5);

    let mut idle_manager = ConcurrentScrapeManager::new(latency_config.clone());
    idle_manager.ingest(&cluster, &network, &schedule(0, schedule_rounds));
    let idle_reader = idle_manager.reader();
    let mut scratch = ClusterSnapshot::default();
    let fetch_idle_ns = measure("ingest_throughput/fetch_idle", rounds, || {
        idle_reader.snapshot_into(edge(0), window, &mut scratch);
        black_box(scratch.rtt().len())
    });

    let mut busy_manager = ConcurrentScrapeManager::new(latency_config);
    busy_manager.ingest(&cluster, &network, &schedule(0, schedule_rounds));
    let busy_reader = busy_manager.reader();
    let ingest_hours = if smoke { 2u64 } else { 30 };
    let fetch_edge = std::sync::atomic::AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let mut samples: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for k in 1..=ingest_hours {
                busy_manager.ingest(&cluster, &network, &schedule(k, schedule_rounds));
                fetch_edge.store(k, Ordering::Release);
            }
            done.store(true, Ordering::Release);
        });
        let mut busy_scratch = ClusterSnapshot::default();
        while !done.load(Ordering::Acquire) {
            let at = edge(fetch_edge.load(Ordering::Acquire));
            let start = Instant::now();
            busy_reader.snapshot_into(at, window, &mut busy_scratch);
            samples.push(start.elapsed().as_nanos() as f64);
            black_box(busy_scratch.rtt().len());
        }
    });
    let fetch_busy_ns = median_ns(&mut samples);
    println!(
        "ingest_throughput/fetch_during_ingest: {fetch_busy_ns:.0} ns/iter ({} samples)",
        samples.len()
    );

    let speedup = sequential_ns / concurrent_ns.max(1.0);
    let speedup_forced_8 = sequential_ns / forced_8_ns.max(1.0);
    let speedup_64 = sequential_64_ns / concurrent_64_ns.max(1.0);
    let contention_ratio = fetch_busy_ns / fetch_idle_ns.max(1.0);
    println!(
        "concurrent ingest speedup, 8-node world: {speedup:.2}x adaptive \
         (target ~1.0x: the fallback routes small worlds synchronously), \
         {speedup_forced_8:.2}x with the pipeline forced"
    );
    println!("concurrent ingest speedup, 64-node world: {speedup_64:.2}x (target: >= 2x on a multi-core runner)");
    println!(
        "fetch latency during ingest vs idle: {contention_ratio:.2}x (target: within 2x of idle \
         when the runner has a core to spare for the reader; on a box with <= 2 cores the reader \
         time-slices against the ingest threads and the ratio reflects scheduling, not locking)"
    );

    if smoke {
        println!("smoke mode: skipping results/BENCH_ingest.json");
        return;
    }

    let cores = simcore::parallel::default_workers();
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"sequential_scrape_1h_8n_ns\": {sequential_ns:.0},\n  \"concurrent_ingest_1h_8n_ns\": {concurrent_ns:.0},\n  \"ingest_speedup_8n\": {speedup:.2},\n  \"forced_pipeline_1h_8n_ns\": {forced_8_ns:.0},\n  \"ingest_speedup_8n_forced_pipeline\": {speedup_forced_8:.2},\n  \"sequential_scrape_1h_64n_ns\": {sequential_64_ns:.0},\n  \"concurrent_ingest_1h_64n_ns\": {concurrent_64_ns:.0},\n  \"ingest_speedup_64n\": {speedup_64:.2},\n  \"fetch_idle_ns\": {fetch_idle_ns:.0},\n  \"fetch_during_ingest_ns\": {fetch_busy_ns:.0},\n  \"fetch_contention_ratio\": {contention_ratio:.3}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_ingest.json"
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, json).expect("write BENCH_ingest.json");
    println!("(medians written to results/BENCH_ingest.json)");
}
