//! Bench: offline training cost of the three model families.
//!
//! Supports the paper's Section 8 question about retraining costs — how long
//! it takes to refit each model family on a 600-row and a 3600-row archive
//! (the paper's dataset size).

use bench::synthetic_logger;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcore::{ModelConfig, ModelKind, TrainedModel};
use simcore::rng::Rng;
use std::hint::black_box;

fn training_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_training");
    group.sample_size(10);
    let config = bench::bench_model_config();
    for &rows in &[600usize, 3600] {
        let data = synthetic_logger(rows, 42).to_dataset();
        for kind in ModelKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind}"), rows),
                &data,
                |b, data| {
                    b.iter(|| {
                        let mut rng = Rng::seed_from_u64(7);
                        black_box(TrainedModel::train(
                            kind,
                            &config,
                            black_box(data),
                            &mut rng,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn retraining_pipeline(c: &mut Criterion) {
    // Full retraining path: logger -> dataset -> random forest (what a
    // production deployment would run periodically).
    let logger = synthetic_logger(3600, 9);
    let config = ModelConfig::default();
    c.bench_function("retrain_random_forest_from_logger_3600", |b| {
        b.iter(|| {
            let data = logger.to_dataset();
            let mut rng = Rng::seed_from_u64(11);
            black_box(TrainedModel::train(
                ModelKind::RandomForest,
                &config,
                &data,
                &mut rng,
            ))
        })
    });
}

criterion_group!(benches, training_benches, retraining_pipeline);
criterion_main!(benches);
