//! Bench: end-to-end scheduling-decision latency.
//!
//! Covers the whole user-space path the paper describes: fetch the snapshot
//! from the metrics store, construct features for every candidate, predict,
//! rank and render the pinned manifest — versus the default scheduler's
//! filter+score pass on the same cluster.

use cluster::scheduler::Scheduler as _;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::FabricTestbed;
use mlcore::ModelKind;
use netsched_core::builder::JobBuilder;
use netsched_core::decision::DecisionModule;
use netsched_core::schedulers::{JobScheduler, SupervisedScheduler};
use std::hint::black_box;

fn decision_benches(c: &mut Criterion) {
    let dataset = bench::bench_dataset(3);
    let (snapshot, request, candidates) = bench::bench_decision_inputs(&dataset);
    let predictor = bench::bench_predictor(&dataset, ModelKind::RandomForest, 7);
    let cluster_state = FabricTestbed::paper().cluster;

    c.bench_function("supervised_decision_rank_only", |b| {
        b.iter(|| {
            let predictions = predictor.predict_all(&snapshot, &candidates, &request);
            black_box(DecisionModule.rank(&candidates, &predictions))
        })
    });

    c.bench_function("supervised_decision_full_pipeline", |b| {
        let mut scheduler = SupervisedScheduler::new(predictor.clone());
        b.iter(|| {
            let ranking = scheduler.select(&request, &snapshot, &cluster_state);
            let target = ranking.best().map(|r| r.node.clone());
            black_box(JobBuilder.build(&request, target.as_deref()))
        })
    });

    c.bench_function("kube_default_filter_and_score", |b| {
        let mut scheduler = cluster::DefaultScheduler::new(11);
        let driver = request.to_job_spec().driver_pod(None);
        b.iter(|| black_box(scheduler.schedule(&driver, cluster_state.nodes())))
    });

    c.bench_function("feature_construction_six_nodes", |b| {
        b.iter(|| {
            black_box(
                predictor
                    .schema()
                    .construct_all(&snapshot, &candidates, &request),
            )
        })
    });
}

criterion_group!(benches, decision_benches);
criterion_main!(benches);
