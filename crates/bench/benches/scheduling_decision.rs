//! Bench: end-to-end scheduling-decision latency.
//!
//! Covers the whole user-space path the paper describes: index the snapshot
//! into a scheduling context, construct features for every candidate,
//! predict, rank and render the pinned manifest — versus the default
//! scheduler's filter+score pass on the same cluster — plus the batch path
//! that amortizes the context across a burst of jobs.

use cluster::scheduler::Scheduler as _;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::FabricTestbed;
use mlcore::ModelKind;
use netsched_core::builder::JobBuilder;
use netsched_core::context::SchedulingContext;
use netsched_core::decision::DecisionModule;
use netsched_core::request::JobRequest;
use netsched_core::schedulers::{JobScheduler, SupervisedScheduler};
use sparksim::WorkloadKind;
use std::hint::black_box;

fn decision_benches(c: &mut Criterion) {
    let dataset = bench::bench_dataset(3);
    let (snapshot, request, candidates) = bench::bench_decision_inputs(&dataset);
    let predictor = bench::bench_predictor(&dataset, ModelKind::RandomForest, 7);
    let cluster_state = FabricTestbed::paper().cluster;
    let candidate_ids: Vec<cluster::NodeId> = candidates
        .iter()
        .filter_map(|name| cluster_state.node_id(name))
        .collect();

    c.bench_function("supervised_decision_rank_only", |b| {
        b.iter(|| {
            let predictions = predictor.predict_all(&snapshot, &candidates, &request);
            black_box(DecisionModule.rank(&candidate_ids, &predictions))
        })
    });

    c.bench_function("supervised_decision_full_pipeline", |b| {
        let mut scheduler = SupervisedScheduler::new(predictor.clone());
        b.iter(|| {
            let mut ctx = SchedulingContext::new(&snapshot, &cluster_state);
            let ranking = scheduler.select(&request, &mut ctx);
            black_box(JobBuilder.build(&request, ranking.best_name(&cluster_state)))
        })
    });

    c.bench_function("supervised_decision_batch16", |b| {
        let mut scheduler = SupervisedScheduler::new(predictor.clone());
        let requests: Vec<JobRequest> = (0..16)
            .map(|i| {
                JobRequest::named(
                    format!("burst-{i}"),
                    WorkloadKind::PAPER_SET[i % 3],
                    100_000 + i as u64 * 25_000,
                    2,
                )
            })
            .collect();
        b.iter(|| {
            let mut ctx = SchedulingContext::new(&snapshot, &cluster_state);
            let rankings = scheduler.select_batch(&requests, &mut ctx);
            black_box(rankings.len())
        })
    });

    c.bench_function("kube_default_filter_and_score", |b| {
        let mut scheduler = cluster::DefaultScheduler::new(11);
        let driver = request.to_job_spec().driver_pod(None);
        b.iter(|| black_box(scheduler.schedule(&driver, cluster_state.nodes())))
    });

    c.bench_function("feature_construction_six_nodes", |b| {
        b.iter(|| {
            black_box(
                predictor
                    .schema()
                    .construct_all(&snapshot, &candidates, &request),
            )
        })
    });
}

criterion_group!(benches, decision_benches);
criterion_main!(benches);
