//! Bench: decision latency and pruning accuracy at 1k–10k nodes.
//!
//! The two-stage decision path (resource-sorted feasibility index + top-K
//! prune in front of the supervised rank) exists so a single decision stays
//! fast as worlds grow from the paper's 6 nodes to 10k. This harness builds
//! [`experiments::scale`] worlds and measures, per decision on a warm
//! [`SchedulingContext`] (whose scratch holds the persistent
//! [`FeasibilityIndex`], exactly what [`SchedulerService`] carries across
//! bursts):
//!
//! * `decision_{n}n_full` — per-decision latency of the *unpruned* supervised
//!   rank over the whole feasible set, versus node count: the baseline the
//!   two-stage path exists to beat.
//! * `decision_{n}n_k{K}` — the same decision under each candidate budget K
//!   with the default model-aligned policy; at 10k nodes the acceptance bar
//!   is a >= 10x median speedup with p95 < 1 ms at a K whose Top-1 agreement
//!   with the unpruned rank stays within 2 points.
//! * Accuracy at each K from [`experiments::scale::run_scale_cell`] — the
//!   same fixed-seed measurement the `scenario_scale` sweep reports, so the
//!   latency/accuracy tradeoff lands in one file.
//!
//! Results go to `results/BENCH_decision.json`. Run with `-- --smoke` for a
//! CI-sized smoke (small world, no JSON written).
//!
//! [`FeasibilityIndex`]: cluster::FeasibilityIndex
//! [`SchedulerService`]: netsched_core::SchedulerService

use std::hint::black_box;
use std::time::Instant;

use bench::{synthetic_logger, LatencySummary};
use experiments::scale::{
    run_scale_cell, train_scale_predictor, PruneAccuracy, ScaleWorld, ScaleWorldSpec,
};
use mlcore::{ModelConfig, ModelKind, TrainedModel};
use netsched_core::context::{PruningPolicy, SchedulingContext};
use netsched_core::features::FeatureSchema;
use netsched_core::predictor::CompletionTimePredictor;
use simcore::rng::Rng;

/// Latency and accuracy at one candidate budget.
struct BudgetRow {
    k: Option<usize>,
    latency: LatencySummary,
    accuracy: Option<PruneAccuracy>,
}

/// Everything measured on one world size.
struct WorldRow {
    nodes: usize,
    mean_feasible: f64,
    budgets: Vec<BudgetRow>,
}

/// Per-decision latency of the two-stage path at one budget: each sample is
/// one full decision (index sync + feasibility + prune + supervised rank)
/// for one request, exactly what the service pays inside a burst.
fn measure_budget(
    world: &ScaleWorld,
    predictor: &CompletionTimePredictor,
    k: Option<usize>,
    jobs: usize,
    reps: usize,
) -> LatencySummary {
    let requests = world.requests(jobs);
    let mut ctx = SchedulingContext::new(&world.snapshot, &world.cluster);
    ctx.set_top_k(k);
    // Warmup: build the feasibility index and populate the telemetry index,
    // per-sizing caches and coarse scoreboards once, as a live service's
    // first burst does.
    for request in &requests {
        black_box(ctx.rank_feasible_batch(request, predictor).len());
    }
    let mut samples: Vec<f64> = Vec::with_capacity(jobs * reps);
    for _ in 0..reps {
        for request in &requests {
            let t0 = Instant::now();
            let ranking = ctx.rank_feasible_batch(request, predictor);
            samples.push(t0.elapsed().as_nanos() as f64);
            black_box(ranking.len());
        }
    }
    LatencySummary::from_samples(&mut samples)
}

/// A cheap linear predictor for smoke runs (the full run uses the same
/// random-forest the `scenario_scale` sweep ranks with).
fn smoke_predictor() -> CompletionTimePredictor {
    let data = synthetic_logger(300, 17).to_dataset();
    let mut rng = Rng::seed_from_u64(18);
    let model = TrainedModel::train(ModelKind::Linear, &ModelConfig::default(), &data, &mut rng);
    CompletionTimePredictor::new(FeatureSchema::standard(), model)
        .expect("synthetic logger rows use the standard schema")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = 11u64;
    let (node_counts, ks, jobs, reps, predictor) = if smoke {
        (vec![240usize], vec![8usize, 32], 6, 2, smoke_predictor())
    } else {
        (
            vec![1_000usize, 4_000, 10_000],
            vec![8usize, 16, 32, 64, 128, 256, 512],
            24,
            6,
            train_scale_predictor(seed),
        )
    };
    println!("decision_scale: worlds {node_counts:?}, budgets {ks:?}, {jobs} jobs x {reps} reps");

    let mut rows: Vec<WorldRow> = Vec::new();
    for &nodes in &node_counts {
        let build_start = Instant::now();
        let world = ScaleWorld::build(ScaleWorldSpec::with_nodes(nodes, seed ^ nodes as u64));
        println!(
            "world {nodes}n built in {:.2} s ({} rtt probes)",
            build_start.elapsed().as_secs_f64(),
            world.snapshot.rtt().len()
        );

        // Accuracy under the default (model-aligned) policy — the policy the
        // latency rows below run with. The full policy matrix lives in
        // `scenario_scale`.
        let accuracy = run_scale_cell(
            &world,
            &predictor,
            &[PruningPolicy::ModelAligned],
            &ks,
            jobs,
        );
        let mut budgets: Vec<BudgetRow> = Vec::new();
        for (label, k) in std::iter::once(("full".to_string(), None))
            .chain(ks.iter().map(|&k| (format!("k{k}"), Some(k))))
        {
            let latency = measure_budget(&world, &predictor, k, jobs, reps);
            let acc = k.and_then(|k| accuracy.ks.iter().find(|a| a.k == k).cloned());
            match &acc {
                Some(a) => println!(
                    "decision_{nodes}n_{label}: p50 {:.0} ns, p95 {:.0} ns \
                     (top-1 agreement {:.3}, winner survival {:.3})",
                    latency.p50,
                    latency.p95,
                    a.top1_hit_rate(),
                    a.winner_survival_rate(),
                ),
                None => println!(
                    "decision_{nodes}n_{label}: p50 {:.0} ns, p95 {:.0} ns (unpruned reference)",
                    latency.p50, latency.p95,
                ),
            }
            budgets.push(BudgetRow {
                k,
                latency,
                accuracy: acc,
            });
        }
        rows.push(WorldRow {
            nodes,
            mean_feasible: accuracy.mean_feasible,
            budgets,
        });
    }

    // The acceptance point: at the largest world, the smallest budget that
    // keeps Top-1 agreement within 2 points of the unpruned rank (which
    // agrees with itself by definition) AND p95 under 1 ms, plus the median
    // per-decision speedup it buys over the unpruned baseline.
    let recommended = rows.last().and_then(|row| {
        row.budgets
            .iter()
            .filter(|b| {
                b.accuracy
                    .as_ref()
                    .is_some_and(|a| a.top1_hit_rate() >= 0.98)
                    && b.latency.p95 < 1e6
            })
            .min_by_key(|b| b.k.unwrap_or(usize::MAX))
    });
    let speedup_of = |row: &WorldRow, best: &BudgetRow| {
        row.budgets
            .iter()
            .find(|b| b.k.is_none())
            .map(|full| full.latency.p50 / best.latency.p50)
    };
    if let (Some(row), Some(best)) = (rows.last(), recommended) {
        let acc = best.accuracy.as_ref().expect("filtered on accuracy");
        let speedup = speedup_of(row, best).unwrap_or(f64::NAN);
        println!(
            "acceptance @ {} nodes: K={} gives p50 {:.3} ms / p95 {:.3} ms, top-1 agreement \
             {:.3}, median speedup {:.1}x over unpruned (target: >= 10x with p95 < 1 ms within \
             2 points of unpruned) -> {}",
            row.nodes,
            best.k.unwrap_or(0),
            best.latency.p50 / 1e6,
            best.latency.p95 / 1e6,
            acc.top1_hit_rate(),
            speedup,
            if speedup >= 10.0 { "MET" } else { "MISSED" },
        );
    } else {
        println!(
            "acceptance: no budget kept top-1 agreement >= 0.98 at p95 < 1 ms at the largest \
             world -> MISSED"
        );
    }

    if smoke {
        println!("smoke mode: skipping results/BENCH_decision.json");
        return;
    }

    let budget_json = |b: &BudgetRow| {
        let k = b.k.map_or_else(|| "null".to_string(), |k| k.to_string());
        let acc = b.accuracy.as_ref().map_or_else(
            || "null".to_string(),
            |a| {
                format!(
                    "{{\"top1_hit_rate\": {:.4}, \"winner_survival_rate\": {:.4}, \
                     \"decisions\": {}}}",
                    a.top1_hit_rate(),
                    a.winner_survival_rate(),
                    a.decisions
                )
            },
        );
        format!(
            "      {{\"k\": {k}, \"latency\": {}, \"accuracy\": {acc}}}",
            b.latency.to_json()
        )
    };
    let worlds_json = rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"nodes\": {}, \"mean_feasible\": {:.1}, \"budgets\": [\n{}\n    ]}}",
                row.nodes,
                row.mean_feasible,
                row.budgets
                    .iter()
                    .map(budget_json)
                    .collect::<Vec<_>>()
                    .join(",\n")
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let recommended_json = match (rows.last(), recommended) {
        (Some(row), Some(best)) => {
            let acc = best.accuracy.as_ref().expect("filtered on accuracy");
            format!(
                "{{\"nodes\": {}, \"k\": {}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \
                 \"p95_under_1ms\": {}, \"median_speedup\": {:.1}, \"top1_hit_rate\": {:.4}}}",
                row.nodes,
                best.k.unwrap_or(0),
                best.latency.p50,
                best.latency.p95,
                best.latency.p95 < 1e6,
                speedup_of(row, best).unwrap_or(f64::NAN),
                acc.top1_hit_rate()
            )
        }
        _ => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"jobs\": {jobs},\n  \"reps\": {reps},\n  \"policy\": \"ModelAligned\",\n  \"worlds\": [\n{worlds_json}\n  ],\n  \"acceptance\": {recommended_json}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_decision.json"
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, json).expect("write BENCH_decision.json");
    println!("(results written to results/BENCH_decision.json)");
}
