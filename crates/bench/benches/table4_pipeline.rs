//! Bench: the Table 4 pipeline at reduced scale — dataset generation (the
//! batch workflow) and the train+evaluate pass that produces the accuracy
//! table. Together these bound the cost of regenerating the paper's headline
//! result.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::evaluation::evaluate_table4;
use experiments::workflow::{ExperimentConfig, Workflow};
use std::hint::black_box;

fn dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_dataset_generation");
    group.sample_size(10);
    group.bench_function("quick_matrix_1x1", |b| {
        // 3 configs x 1 repeat x 6 nodes = 18 job executions per iteration.
        b.iter(|| {
            let config = ExperimentConfig {
                workers: simcore::parallel::default_workers(),
                ..ExperimentConfig::quick(1, 1, 4242)
            };
            black_box(Workflow::new(config).run())
        })
    });
    group.finish();
}

fn train_and_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_train_and_evaluate");
    group.sample_size(10);
    let dataset = bench::bench_dataset(2);
    let model_config = bench::bench_model_config();
    group.bench_function("all_models_quick_dataset", |b| {
        b.iter(|| black_box(evaluate_table4(&dataset, 0.25, &model_config, 13)))
    });
    group.finish();
}

criterion_group!(benches, dataset_generation, train_and_evaluate);
criterion_main!(benches);
