//! Bench: per-row vs batch inference latency of each model family.
//!
//! The scheduler ranks every feasible candidate per decision, so inference
//! latency bounds decision throughput. The flat-tree refactor made inference
//! batch-first: one contiguous candidate × feature matrix streams through
//! each tree's struct-of-arrays nodes (trees-outer), instead of re-walking
//! the whole ensemble once per candidate. This bench measures a 16-candidate
//! decision for all three paper families:
//!
//! * `per_row_16/<family>` — 16 sequential `predict_from_features` calls
//!   (the pre-refactor decision shape).
//! * `batch_16/<family>` — one `predict_batch_into` call over the same 16
//!   rows. Predictions are bit-identical to the per-row path (pinned by
//!   `tests/model_batch.rs`); only wall-clock changes.
//! * `single_row/<family>` — one-candidate floor, for reference.
//!
//! Medians are printed criterion-style and written to
//! `results/BENCH_model.json`. Run `-- --smoke` for a 1-round smoke (used by
//! CI to keep the batch path from bitrotting; no JSON is written).

use bench::measure;
use mlcore::{FeatureMatrix, ModelKind};
use netsched_core::predictor::CompletionTimePredictor;
use netsched_core::request::JobRequest;
use sparksim::WorkloadKind;
use std::hint::black_box;
use telemetry::NodeTelemetry;

/// The number of candidate nodes per ranked decision this bench models.
const CANDIDATES: usize = 16;

/// A 16-candidate feature matrix: one row per candidate node with
/// telemetry varied across realistic ranges, constructed through the same
/// schema path the scheduling context uses.
fn candidate_matrix(predictor: &CompletionTimePredictor, job: &JobRequest) -> FeatureMatrix {
    let schema = predictor.schema();
    let mut matrix = FeatureMatrix::with_capacity(schema.len(), CANDIDATES);
    matrix.reset(schema.len());
    for i in 0..CANDIDATES {
        let f = i as f64;
        let node = NodeTelemetry {
            cpu_load: 0.25 * f,
            memory_available_bytes: 2e9 + 3e8 * f,
            tx_rate: 1e5 * f,
            rx_rate: 2e5 * f,
        };
        let rtt_stats = (0.004 * (f + 1.0), 0.010 * (f + 1.0), 0.002 * f);
        schema.construct_into_matrix(&mut matrix, &node, rtt_stats, job);
    }
    matrix
}

struct FamilyResult {
    kind: ModelKind,
    single_row_ns: f64,
    per_row_16_ns: f64,
    batch_16_ns: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Paper scale in full mode: ~3600 training rows (the paper's dataset
    // size) with the default model configs (RF: 200 trees × depth 20 → a
    // multi-MB ensemble that no longer fits in cache, which is exactly the
    // regime the batch path exists for). Smoke mode shrinks both so CI just
    // guards the path against bitrot.
    let (rounds, train_rows) = if smoke { (1, 300) } else { (10, 3600) };
    let logger = bench::synthetic_logger(train_rows, 11);
    let data = logger.to_dataset();
    let model_config = if smoke {
        bench::bench_model_config()
    } else {
        mlcore::ModelConfig {
            forest: mlcore::RandomForestConfig {
                workers: simcore::parallel::default_workers(),
                ..Default::default()
            },
            ..Default::default()
        }
    };
    let job = JobRequest::named("bench-sort", WorkloadKind::Sort, 250_000, 2);

    let mut results: Vec<FamilyResult> = Vec::new();
    for kind in ModelKind::ALL {
        let mut rng = simcore::rng::Rng::seed_from_u64(5);
        let model = mlcore::TrainedModel::train(kind, &model_config, &data, &mut rng);
        let predictor = CompletionTimePredictor::new(logger.schema().clone(), model)
            .expect("logger schema matches its own training data");
        let matrix = candidate_matrix(&predictor, &job);
        let rows: Vec<Vec<f64>> = (0..CANDIDATES).map(|i| matrix.row(i).to_vec()).collect();

        let single_row_ns = measure(
            &format!("model_inference/single_row/{kind}"),
            rounds,
            || black_box(predictor.predict_from_features(black_box(&rows[0]))),
        );

        let per_row_16_ns = measure(
            &format!("model_inference/per_row_16/{kind}"),
            rounds,
            || {
                let mut acc = 0.0;
                for row in &rows {
                    acc += predictor.predict_from_features(black_box(row));
                }
                black_box(acc)
            },
        );

        let mut out: Vec<f64> = Vec::with_capacity(CANDIDATES);
        let batch_16_ns = measure(&format!("model_inference/batch_16/{kind}"), rounds, || {
            predictor.predict_batch_into(black_box(&matrix), &mut out);
            black_box(out.len())
        });

        // The two paths must agree exactly before their timings mean anything.
        predictor.predict_batch_into(&matrix, &mut out);
        for (row, &batched) in rows.iter().zip(&out) {
            assert_eq!(
                batched,
                predictor.predict_from_features(row),
                "{kind}: batch and per-row predictions diverged"
            );
        }

        println!(
            "model_inference/{kind}: batch speedup over {CANDIDATES} per-row calls: {:.2}x",
            per_row_16_ns / batch_16_ns.max(1.0)
        );
        results.push(FamilyResult {
            kind,
            single_row_ns,
            per_row_16_ns,
            batch_16_ns,
        });
    }

    if smoke {
        println!("smoke mode: skipping results/BENCH_model.json");
        return;
    }

    let mut json = format!(
        "{{\n  \"cores\": {},\n  \"candidates\": {CANDIDATES}",
        simcore::parallel::default_workers()
    );
    for r in &results {
        let key = match r.kind {
            ModelKind::Linear => "linear",
            ModelKind::RandomForest => "random_forest",
            ModelKind::GradientBoosting => "gradient_boosting",
        };
        json.push_str(&format!(
            ",\n  \"{key}_single_row_ns\": {:.0},\n  \"{key}_per_row_16_ns\": {:.0},\n  \"{key}_batch_16_ns\": {:.0},\n  \"{key}_batch_speedup\": {:.2}",
            r.single_row_ns,
            r.per_row_16_ns,
            r.batch_16_ns,
            r.per_row_16_ns / r.batch_16_ns.max(1.0),
        ));
    }
    json.push_str("\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_model.json"
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, json).expect("write BENCH_model.json");
    println!("(medians written to results/BENCH_model.json)");
}
