//! Bench: per-node prediction latency of each model family.
//!
//! The scheduler issues one prediction per candidate node per decision, so
//! inference latency bounds how fast placement decisions can be made.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlcore::ModelKind;
use std::hint::black_box;

fn inference_benches(c: &mut Criterion) {
    let dataset = bench::bench_dataset(1);
    let (snapshot, request, candidates) = bench::bench_decision_inputs(&dataset);
    let mut group = c.benchmark_group("model_inference");
    for kind in ModelKind::ALL {
        let predictor = bench::bench_predictor(&dataset, kind, 5);
        let features = predictor
            .schema()
            .construct(&snapshot, &candidates[0], &request);
        group.bench_with_input(
            BenchmarkId::new("single_row", format!("{kind}")),
            &features,
            |b, f| b.iter(|| black_box(predictor.predict_from_features(black_box(f)))),
        );
        group.bench_with_input(
            BenchmarkId::new("all_candidates", format!("{kind}")),
            &candidates,
            |b, cands| {
                b.iter(|| black_box(predictor.predict_all(&snapshot, black_box(cands), &request)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, inference_benches);
criterion_main!(benches);
