//! Bench: substrate throughput — how fast the simulated cluster executes
//! jobs, reallocates flow rates and serves telemetry scrapes. This bounds the
//! wall-clock cost of regenerating the paper's 3600-sample dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::{FabricTestbed, SimWorld};
use netsched_core::request::JobRequest;
use simcore::SimDuration;
use simnet::flow::FlowKind;
use simnet::{BackgroundLoadConfig, NodeId};
use sparksim::WorkloadKind;
use std::hint::black_box;

fn network_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_fluid_model");
    for &flows in &[10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("run_to_quiescence", flows),
            &flows,
            |b, &flows| {
                b.iter(|| {
                    let mut net = FabricTestbed::paper().network;
                    for i in 0..flows {
                        net.start_flow(
                            NodeId(i % 6),
                            NodeId((i + 3) % 6),
                            10_000_000.0,
                            FlowKind::Background,
                        );
                    }
                    black_box(net.run_to_quiescence(SimDuration::from_secs(3600)))
                })
            },
        );
    }
    group.finish();
}

fn job_execution_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("job_execution");
    group.sample_size(10);
    for kind in WorkloadKind::PAPER_SET {
        group.bench_function(format!("{kind}_250k_records"), |b| {
            b.iter(|| {
                let mut world = SimWorld::new(FabricTestbed::paper(), 7);
                world.place_background_load(2, &BackgroundLoadConfig::default());
                world.advance_by(SimDuration::from_secs(10));
                let request = JobRequest::named("bench", kind, 250_000, 2);
                black_box(world.run_job(&request, "node-2"))
            })
        });
    }
    group.finish();
}

fn telemetry_bench(c: &mut Criterion) {
    c.bench_function("scrape_and_snapshot", |b| {
        let mut world = SimWorld::new(FabricTestbed::paper(), 5);
        world.place_background_load(2, &BackgroundLoadConfig::default());
        world.advance_by(SimDuration::from_secs(30));
        b.iter(|| black_box(world.snapshot()))
    });
}

criterion_group!(
    benches,
    network_benches,
    job_execution_bench,
    telemetry_bench
);
criterion_main!(benches);
