//! Bench: telemetry snapshot-fetch cost on a long-history store.
//!
//! The paper's scheduler queries the metrics server **per decision**, so
//! fetch cost is on the decision path and must not degrade with uptime. This
//! bench drives a paper-shaped world (6 nodes, full ping mesh) through one
//! hour of 5-second scrapes under retention, then measures:
//!
//! * `naive_linear_1h` — the pre-interning query path, reimplemented as a
//!   reference: name-keyed `BTreeMap` store, `instant_by_name` scanning the
//!   whole keyspace, `rate()` filtering every retained point into a fresh
//!   `Vec`, and a `(String, String)`-keyed RTT mesh rebuilt per fetch.
//! * `interned_1h` / `interned_into_1h` — the rewritten path: pre-interned
//!   `SeriesId` layout, `partition_point` window slicing, dense id-indexed
//!   snapshot (the `_into` variant reuses the snapshot scratch buffer).
//! * `interned_into_10min` — the same fetch over a much shorter retained
//!   history; with windowed queries the cost is history-independent.
//! * `decision_e2e_1h` — a full `SchedulerService::schedule` call (fetch +
//!   features + predict + rank + manifest) against the 1-hour store.
//! * `decision_e2e_published_1h` — the same decision against an
//!   epoch-published handle (`telemetry::publish`): the fetch collapses to
//!   one atomic freshness check reusing the held `Arc`, so this leg isolates
//!   what snapshot assembly still costs on the decision path.
//!
//! Medians are printed criterion-style and written to
//! `results/BENCH_telemetry.json`. Run `-- --smoke` for a 1-round smoke
//! (used by CI to keep the bench from bitrotting; no JSON is written).

use bench::measure;
use netsched_core::request::JobRequest;
use netsched_core::service::{SchedulerConfig, SchedulerService};
use std::collections::BTreeMap;
use std::hint::black_box;
use telemetry::{
    ClusterSnapshot, MetricKind, NodeTelemetry, Sample, ScrapeConfig, ScrapeManager, SeriesKey,
    METRIC_NODE_LOAD1, METRIC_NODE_MEM_AVAILABLE, METRIC_NODE_RX_BYTES, METRIC_NODE_TX_BYTES,
    METRIC_PING_RTT,
};

use simcore::{SimDuration, SimTime};

/// The pre-refactor telemetry read path, preserved as a reference cost model:
/// every query walks the full retained history and allocates.
mod naive {
    use super::*;

    #[derive(Default)]
    pub struct NaiveStore {
        pub series: BTreeMap<SeriesKey, (MetricKind, Vec<(SimTime, f64)>)>,
    }

    /// The old name-keyed snapshot shape.
    pub struct NaiveSnapshot {
        pub nodes: BTreeMap<String, NodeTelemetry>,
        pub rtt: BTreeMap<(String, String), f64>,
    }

    impl NaiveStore {
        pub fn append(&mut self, sample: Sample) {
            let entry = self
                .series
                .entry(sample.key)
                .or_insert_with(|| (sample.kind, Vec::new()));
            entry.1.push((sample.timestamp, sample.value));
        }

        fn instant(&self, key: &SeriesKey, at: SimTime) -> Option<f64> {
            let (_, points) = self.series.get(key)?;
            let idx = points.partition_point(|&(t, _)| t <= at);
            if idx == 0 {
                None
            } else {
                Some(points[idx - 1].1)
            }
        }

        /// The old `rate()`: filters *every* retained point into a fresh Vec.
        fn rate(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
            let (kind, points) = self.series.get(key)?;
            if *kind != MetricKind::Counter {
                return None;
            }
            let from = SimTime::from_nanos(at.as_nanos().saturating_sub(window.as_nanos()));
            let pts: Vec<(SimTime, f64)> = points
                .iter()
                .copied()
                .filter(|&(t, _)| t >= from && t <= at)
                .collect();
            if pts.len() < 2 {
                return None;
            }
            let (t0, v0) = pts[0];
            let (t1, v1) = pts[pts.len() - 1];
            let dt = (t1 - t0).as_secs_f64();
            if dt <= 0.0 {
                return None;
            }
            Some(((v1 - v0).max(0.0)) / dt)
        }

        /// The old `instant_by_name`: scans the whole keyspace per metric.
        fn instant_by_name(&self, name: &str, at: SimTime) -> Vec<(SeriesKey, f64)> {
            self.series
                .keys()
                .filter(|k| k.name == name)
                .filter_map(|k| self.instant(k, at).map(|v| (k.clone(), v)))
                .collect()
        }

        /// The old `ClusterSnapshot::from_store`: rebuilds the name-keyed
        /// maps on every fetch.
        pub fn snapshot(&self, at: SimTime, rate_window: SimDuration) -> NaiveSnapshot {
            let mut nodes: BTreeMap<String, NodeTelemetry> = BTreeMap::new();
            for (key, value) in self.instant_by_name(METRIC_NODE_LOAD1, at) {
                if let Some(instance) = key.label("instance") {
                    nodes.entry(instance.to_string()).or_default().cpu_load = value;
                }
            }
            for (key, value) in self.instant_by_name(METRIC_NODE_MEM_AVAILABLE, at) {
                if let Some(instance) = key.label("instance") {
                    nodes
                        .entry(instance.to_string())
                        .or_default()
                        .memory_available_bytes = value;
                }
            }
            let node_names: Vec<String> = nodes.keys().cloned().collect();
            for name in &node_names {
                let tx_key = SeriesKey::per_node(METRIC_NODE_TX_BYTES, name);
                let rx_key = SeriesKey::per_node(METRIC_NODE_RX_BYTES, name);
                let entry = nodes.get_mut(name).expect("inserted above");
                entry.tx_rate = self.rate(&tx_key, at, rate_window).unwrap_or(0.0);
                entry.rx_rate = self.rate(&rx_key, at, rate_window).unwrap_or(0.0);
            }
            let mut rtt: BTreeMap<(String, String), f64> = BTreeMap::new();
            for (key, value) in self.instant_by_name(METRIC_PING_RTT, at) {
                if let (Some(src), Some(dst)) = (key.label("source"), key.label("target")) {
                    rtt.insert((src.to_string(), dst.to_string()), value);
                }
            }
            NaiveSnapshot { nodes, rtt }
        }
    }
}

/// A 1-hour (or shorter) scrape history over the paper's 6-node world, in
/// both the interned store and the naive reference store.
fn scrape_history(seconds: u64) -> (ScrapeManager, naive::NaiveStore, cluster::ClusterState) {
    let testbed = experiments::FabricTestbed::paper();
    let (cluster, network) = (testbed.cluster, testbed.network);
    let mut mgr = ScrapeManager::new(ScrapeConfig {
        interval: SimDuration::from_secs(5),
        rate_window: SimDuration::from_secs(30),
        retention: Some(SimDuration::from_secs(3600)),
    });
    let mut naive_store = naive::NaiveStore::default();
    let mut t = 0u64;
    while t <= seconds {
        let now = SimTime::from_secs(t);
        mgr.scrape_if_due(&cluster, &network, now);
        naive_store.append_scrape(&cluster, &network, now);
        t += 5;
    }
    (mgr, naive_store, cluster)
}

impl naive::NaiveStore {
    /// Mirror one scrape into the naive store via the sample-building path.
    fn append_scrape(
        &mut self,
        cluster: &cluster::ClusterState,
        network: &simnet::Network,
        now: SimTime,
    ) {
        for sample in telemetry::node_exporter_samples(cluster, network, now) {
            self.append(sample);
        }
        for sample in telemetry::ping_mesh_samples(cluster, network, now) {
            self.append(sample);
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rounds, history_secs, short_secs) = if smoke { (1, 60, 30) } else { (10, 3600, 600) };

    let (mut mgr, naive_store, cluster) = scrape_history(history_secs);
    let (short_mgr, _, _) = scrape_history(short_secs);
    let at = SimTime::from_secs(history_secs);
    let short_at = SimTime::from_secs(short_secs);
    let window = SimDuration::from_secs(30);
    let fetcher = netsched_core::fetcher::TelemetryFetcher::new(window);

    println!(
        "store: {} series, {} points retained over {history_secs} s of 5 s scrapes",
        mgr.store().series_count(),
        mgr.store().point_count()
    );

    let naive_ns = measure("telemetry_fetch/naive_linear_1h", rounds, || {
        let snap = naive_store.snapshot(at, window);
        black_box((snap.nodes.len(), snap.rtt.len()))
    });

    let interned_ns = measure("telemetry_fetch/interned_1h", rounds, || {
        let snap = fetcher.fetch(&mgr, at);
        black_box(snap.rtt().len())
    });

    let mut scratch = ClusterSnapshot::default();
    let interned_into_ns = measure("telemetry_fetch/interned_into_1h", rounds, || {
        fetcher.fetch_into(&mgr, at, &mut scratch);
        black_box(scratch.rtt().len())
    });

    let mut short_scratch = ClusterSnapshot::default();
    let short_ns = measure("telemetry_fetch/interned_into_10min", rounds, || {
        fetcher.fetch_into(&short_mgr, short_at, &mut short_scratch);
        black_box(short_scratch.rtt().len())
    });

    // End-to-end decision against the 1-hour store: train a small linear
    // predictor offline, then schedule through the cached service path.
    let logger = bench::synthetic_logger(200, 11);
    let data = logger.to_dataset();
    let mut rng = simcore::rng::Rng::seed_from_u64(3);
    let model = mlcore::TrainedModel::train(
        mlcore::ModelKind::Linear,
        &bench::bench_model_config(),
        &data,
        &mut rng,
    );
    let predictor =
        netsched_core::predictor::CompletionTimePredictor::new(logger.schema().clone(), model)
            .expect("logger schema matches its own training data");
    let mut service = SchedulerService::with_predictor(SchedulerConfig::default(), predictor, 7);
    let request = JobRequest::named("bench-sort", sparksim::WorkloadKind::Sort, 250_000, 2);
    let decision_ns = measure("telemetry_fetch/decision_e2e_1h", rounds, || {
        let decision = service.schedule(&request, &mgr, &cluster, at);
        black_box(decision.ranking.len())
    });

    // Activate epoch publishing only now, so the store-backed leg above
    // measured the assembly path: once a handle exists the service adopts
    // the published epoch and the per-decision fetch is a freshness check.
    let published = mgr.published_handle();
    let decision_published_ns =
        measure("telemetry_fetch/decision_e2e_published_1h", rounds, || {
            let decision = service.schedule(&request, &published, &cluster, at);
            black_box(decision.ranking.len())
        });

    let speedup = naive_ns / interned_into_ns.max(1.0);
    let history_ratio = interned_into_ns / short_ns.max(1.0);
    println!("fetch speedup over naive linear path: {speedup:.1}x");
    println!("1h-history vs 10min-history fetch cost ratio: {history_ratio:.2}x (→ 1.0 = history-independent)");
    println!(
        "decision vs published-source decision: {:.2}x (the gap is the snapshot \
         assembly a published epoch skips)",
        decision_ns / decision_published_ns.max(1.0)
    );

    if smoke {
        println!("smoke mode: skipping results/BENCH_telemetry.json");
        return;
    }

    let json = format!(
        "{{\n  \"snapshot_fetch_naive_1h_ns\": {naive_ns:.0},\n  \"snapshot_fetch_interned_1h_ns\": {interned_ns:.0},\n  \"snapshot_fetch_interned_into_1h_ns\": {interned_into_ns:.0},\n  \"snapshot_fetch_interned_into_10min_ns\": {short_ns:.0},\n  \"decision_e2e_1h_ns\": {decision_ns:.0},\n  \"decision_e2e_published_1h_ns\": {decision_published_ns:.0},\n  \"fetch_speedup_over_naive\": {speedup:.2},\n  \"history_1h_vs_10min_ratio\": {history_ratio:.3}\n}}\n"
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_telemetry.json"
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, json).expect("write BENCH_telemetry.json");
    println!("(medians written to results/BENCH_telemetry.json)");
}
