//! Bench: closed-loop decision-service throughput over epoch-published
//! snapshots.
//!
//! The paper's serving story ("heavy traffic from millions of users") needs
//! the decision path to scale with reader concurrency while telemetry ingest
//! runs continuously. This harness drives [`SchedulerService::schedule_batch`]
//! closed-loop — each reader thread schedules burst after burst with no think
//! time — against a 64-node world, with bursty arrivals drawn from
//! [`sparksim::mix`] (`MixKind::BurstyArrivals`), and measures:
//!
//! * `decisions_quiescent_{r}r` / `decisions_during_ingest_{r}r` — aggregate
//!   decisions/sec and per-burst latency tails (p50/p95/p99) for `r` reader
//!   threads, against an idle store and against a live
//!   [`ConcurrentScrapeManager::ingest`] hammering the shards from a writer
//!   thread. Readers rank against **epoch-published immutable snapshots**
//!   ([`telemetry::PublishedSnapshot`]): one atomic freshness check per
//!   burst, an `Arc` adoption per new epoch, zero store locks.
//! * `fetch_published_idle` / `fetch_published_during_ingest` — raw published
//!   fetch latency with and without live ingest. Because published readers
//!   never touch the shards, during-ingest must stay within ~1.2× of
//!   quiescent (the store-locking path it replaces measured ~4.3×).
//! * `fetch_store_during_ingest` — the old lock-the-shards fetch under the
//!   same live ingest, for contrast.
//!
//! Results go to `results/BENCH_service.json`. Run with `-- --smoke` for a
//! CI-sized smoke (no JSON written).

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bench::{bench_dataset, bench_predictor, LatencySummary};
use cluster::{ClusterState, Node, Resources};
use mlcore::ModelKind;
use netsched_core::{JobRequest, SchedulerConfig, SchedulerService};
use simcore::{SimDuration, SimTime};
use simnet::{gbps, mbps, Network, NodeId, TopologyBuilder};
use sparksim::{MixKind, WorkloadMixSpec};
use telemetry::{
    ClusterSnapshot, ConcurrentScrapeManager, PublishedSnapshot, ScrapeConfig, SnapshotSource,
};

/// A two-site world with `n` node exporters and the full ping mesh (64 nodes
/// → 4 288 series per scrape round, well above the adaptive sync threshold,
/// so live ingest exercises the writer pipeline).
fn world(n: usize) -> (ClusterState, Network) {
    let mut b = TopologyBuilder::new();
    let s0 = b.add_site("A", SimDuration::from_micros(200), gbps(10.0));
    let s1 = b.add_site("B", SimDuration::from_micros(200), gbps(10.0));
    for i in 0..n {
        b.add_node(
            format!("node-{}", i + 1),
            if i % 2 == 0 { s0 } else { s1 },
            gbps(1.0),
            gbps(1.0),
        );
    }
    b.connect_sites(s0, s1, SimDuration::from_millis(20), mbps(500.0));
    let network = Network::new(b.build().unwrap());
    let mut cluster = ClusterState::new();
    for i in 0..n {
        cluster.add_node(Node::new(
            format!("node-{}", i + 1),
            NodeId(i),
            Resources::from_cores_and_gib(6, 8),
            if i % 2 == 0 { "A" } else { "B" },
        ));
    }
    (cluster, network)
}

fn scrape_config() -> ScrapeConfig {
    ScrapeConfig {
        interval: SimDuration::from_secs(5),
        rate_window: SimDuration::from_secs(30),
        // Wide retention so fetch times stay inside the live window across
        // every ingest hour the during-ingest legs run.
        retention: Some(SimDuration::from_secs(48 * 3600)),
    }
}

/// The scrape schedule of the `k`-th ingest hour (5-second rounds).
fn schedule(k: u64, rounds_per_hour: u64) -> Vec<SimTime> {
    (0..rounds_per_hour)
        .map(|i| SimTime::from_secs(k * 3600 + i * 5))
        .collect()
}

/// Bursty arrivals from the workload-mix generator, grouped into the bursts
/// the mix's idle gaps delimit: jobs closer than 10 s belong to one burst
/// (intra-burst gaps are 0.5–2 s, idle gaps 60–180 s).
fn bursts(jobs: usize, seed: u64) -> Vec<Vec<JobRequest>> {
    let generated = WorkloadMixSpec::new(MixKind::BurstyArrivals, jobs).generate(seed);
    let gap = SimDuration::from_secs(10);
    let mut bursts: Vec<Vec<JobRequest>> = Vec::new();
    let mut last_arrival = None;
    for job in generated {
        let fresh_burst = match last_arrival {
            None => true,
            Some(last) => job.arrival_offset > last + gap,
        };
        last_arrival = Some(job.arrival_offset);
        let request = JobRequest::new(job.name(), job.request());
        if fresh_burst {
            bursts.push(vec![request]);
        } else {
            bursts.last_mut().expect("burst started").push(request);
        }
    }
    bursts
}

/// One closed-loop measurement: `readers` threads, each with its own cloned
/// [`SchedulerService`] and [`PublishedSnapshot`] handle, schedule bursts
/// back-to-back until `stop` flips. Returns aggregate decisions/sec and the
/// merged per-burst latency tails.
#[allow(clippy::too_many_arguments)]
fn decision_loop(
    label: &str,
    readers: usize,
    service: &SchedulerService,
    published: &PublishedSnapshot,
    bursts: &[Vec<JobRequest>],
    cluster: &ClusterState,
    at: SimTime,
    stop: &AtomicBool,
    run_for: Option<Duration>,
) -> (f64, LatencySummary) {
    let start = Instant::now();
    let mut per_thread: Vec<(u64, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let mut service = service.clone();
                let published = published.clone();
                scope.spawn(move || {
                    let mut decisions = 0u64;
                    let mut samples: Vec<f64> = Vec::new();
                    'outer: loop {
                        for burst in bursts {
                            if stop.load(Ordering::Acquire) {
                                break 'outer;
                            }
                            let t0 = Instant::now();
                            let made = service.schedule_batch(burst, &published, cluster, at);
                            samples.push(t0.elapsed().as_nanos() as f64);
                            decisions += made.len() as u64;
                            black_box(made.len());
                        }
                    }
                    (decisions, samples)
                })
            })
            .collect();
        if let Some(run_for) = run_for {
            std::thread::sleep(run_for);
            stop.store(true, Ordering::Release);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total: u64 = per_thread.iter().map(|(d, _)| d).sum();
    let mut samples: Vec<f64> = per_thread
        .iter_mut()
        .flat_map(|(_, s)| s.drain(..))
        .collect();
    let latency = LatencySummary::from_samples(&mut samples);
    let dps = total as f64 / elapsed;
    println!(
        "service_throughput/{label}: {dps:.0} decisions/sec over {elapsed:.2} s \
         (burst p50 {:.0} ns, p95 {:.0}, p99 {:.0}, {} bursts)",
        latency.p50, latency.p95, latency.p99, latency.samples
    );
    (dps, latency)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = simcore::parallel::default_workers();
    let nodes = 64usize;
    let (schedule_rounds, run_for, ingest_hours, fetch_rounds, model) = if smoke {
        (
            24u64,
            Duration::from_millis(150),
            2u64,
            3,
            ModelKind::Linear,
        )
    } else {
        (
            720u64,
            Duration::from_secs(2),
            12u64,
            10,
            ModelKind::RandomForest,
        )
    };
    // Reader scaling: 1..=cores doubling, plus one oversubscribed point so
    // the aggregate under time-slicing is on record even on narrow boxes.
    let mut reader_counts: Vec<usize> = Vec::new();
    let mut r = 1usize;
    while r <= cores {
        reader_counts.push(r);
        r *= 2;
    }
    reader_counts.push(cores * 2);
    if smoke {
        reader_counts.truncate(1);
    }
    println!("cores: {cores}, nodes: {nodes}, readers: {reader_counts:?}");

    let (cluster, network) = world(nodes);

    // A trained predictor so the measured path is the supervised one (model
    // inference included), exactly what a production burst pays.
    let dataset = bench_dataset(17);
    let predictor = bench_predictor(&dataset, model, 18);
    let service = SchedulerService::with_predictor(
        SchedulerConfig {
            model_kind: model,
            ..SchedulerConfig::default()
        },
        predictor,
        7,
    );
    let bursts = bursts(64, 21);
    let jobs_total: usize = bursts.iter().map(Vec::len).sum();
    println!(
        "workload: {} bursts, {} jobs ({} mean burst size)",
        bursts.len(),
        jobs_total,
        jobs_total / bursts.len().max(1)
    );

    // Warm one hour of history, then take the published handle: epoch 1
    // publishes the warmed state immediately (publish-on-activation).
    let mut manager = ConcurrentScrapeManager::new(scrape_config());
    manager.ingest(&cluster, &network, &schedule(0, schedule_rounds));
    let published = manager.published_handle();
    let edge = |k: u64| SimTime::from_secs(k * 3600 + (schedule_rounds - 1) * 5);
    let at = edge(0);

    // ---- Decision throughput, quiescent store ----
    let mut quiescent: Vec<(usize, f64, LatencySummary)> = Vec::new();
    for &readers in &reader_counts {
        let stop = AtomicBool::new(false);
        let (dps, latency) = decision_loop(
            &format!("decisions_quiescent_{readers}r"),
            readers,
            &service,
            &published,
            &bursts,
            &cluster,
            at,
            &stop,
            Some(run_for),
        );
        quiescent.push((readers, dps, latency));
    }

    // ---- Decision throughput during live ingest ----
    // The writer thread ingests hour after hour (publishing one epoch per
    // committed chunk) while the readers keep scheduling; readers stop when
    // the writer finishes, so the overlap covers the whole measurement.
    let mut during: Vec<(usize, f64, LatencySummary)> = Vec::new();
    // Ingested hours advance monotonically across every writer leg so no
    // scrape timestamp is ever ingested twice (duplicate points would bloat
    // the series and skew the later store-fetch contrast).
    let mut next_hour = 1u64;
    for &readers in &reader_counts {
        let stop = AtomicBool::new(false);
        let manager_ref = &mut manager;
        let first_hour = next_hour;
        let (result, hours_done) = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut k = first_hour;
                let ingest_start = Instant::now();
                while k < first_hour + ingest_hours * 40 {
                    manager_ref.ingest(&cluster, &network, &schedule(k, schedule_rounds));
                    // Keep ingesting at least `ingest_hours`, then until the
                    // decision loop has had a full `run_for` of overlap.
                    if k >= first_hour + ingest_hours - 1 && ingest_start.elapsed() >= run_for {
                        break;
                    }
                    k += 1;
                }
                stop.store(true, Ordering::Release);
                k
            });
            let result = decision_loop(
                &format!("decisions_during_ingest_{readers}r"),
                readers,
                &service,
                &published,
                &bursts,
                &cluster,
                at,
                &stop,
                None,
            );
            (result, writer.join().expect("writer thread"))
        });
        println!("  (writer ingested hours {first_hour}..={hours_done} concurrently)");
        next_hour = hours_done + 1;
        let (dps, latency) = result;
        during.push((readers, dps, latency));
    }

    // ---- Raw fetch latency, idle vs during live ingest ----
    // Both legs run the *same* loop shape — one raw-timed published fetch
    // alternating with one raw-timed store-locking fetch — so the idle/busy
    // ratios compare like with like (same timer overhead, same cache
    // pressure between samples). The published fetch is what the service
    // pays per new epoch; the store fetch is the lock-the-shards path it
    // replaced, kept as contrast.
    let reader = manager.reader();
    let window = SimDuration::from_secs(30);
    let mut scratch = ClusterSnapshot::default();
    let mut fetch_leg = |keep_going: &mut dyn FnMut(usize) -> bool,
                         at: &dyn Fn() -> SimTime|
     -> (LatencySummary, LatencySummary) {
        let mut published_samples: Vec<f64> = Vec::new();
        let mut store_samples: Vec<f64> = Vec::new();
        while keep_going(published_samples.len()) {
            let t0 = Instant::now();
            let epoch = published.latest().expect("published").epoch;
            published_samples.push(t0.elapsed().as_nanos() as f64);
            black_box(epoch);
            let t1 = Instant::now();
            reader.snapshot_into(at(), window, &mut scratch);
            store_samples.push(t1.elapsed().as_nanos() as f64);
            black_box(scratch.rtt().len());
        }
        (
            LatencySummary::from_samples(&mut published_samples),
            LatencySummary::from_samples(&mut store_samples),
        )
    };

    let idle_at = edge(next_hour - 1);
    let idle_iters = fetch_rounds * if smoke { 50 } else { 100 };
    let (fetch_idle, store_idle) = fetch_leg(&mut |n| n < idle_iters, &|| idle_at);

    let done = AtomicBool::new(false);
    let fetch_edge = AtomicU64::new(next_hour - 1);
    let base_hour = next_hour;
    let (fetch_busy, store_busy) = std::thread::scope(|scope| {
        let manager_ref = &mut manager;
        scope.spawn(|| {
            for k in 0..ingest_hours {
                manager_ref.ingest(
                    &cluster,
                    &network,
                    &schedule(base_hour + k, schedule_rounds),
                );
                fetch_edge.store(base_hour + k, Ordering::Release);
            }
            done.store(true, Ordering::Release);
        });
        fetch_leg(&mut |_| !done.load(Ordering::Acquire), &|| {
            edge(fetch_edge.load(Ordering::Acquire))
        })
    });
    for (name, summary) in [
        ("fetch_published_idle", &fetch_idle),
        ("fetch_published_during_ingest", &fetch_busy),
        ("fetch_store_idle", &store_idle),
        ("fetch_store_during_ingest", &store_busy),
    ] {
        println!(
            "service_throughput/{name}: {:.0} ns/iter (p95 {:.0}, p99 {:.0}, {} samples)",
            summary.p50, summary.p95, summary.p99, summary.samples
        );
    }

    let fetch_ratio = fetch_busy.p50 / fetch_idle.p50.max(1.0);
    let store_ratio = store_busy.p50 / store_idle.p50.max(1.0);
    println!(
        "published fetch during ingest vs quiescent: {fetch_ratio:.2}x \
         (target: within ~1.2x when a core is free for the reader — published \
         readers never touch the shard locks, so any excess is time-slicing, \
         not contention; the store-locking fetch under the same load runs \
         {store_ratio:.1}x its own idle baseline)"
    );
    let scaling = match (quiescent.first(), quiescent.get(1)) {
        (Some((r1, d1, _)), Some((r2, d2, _))) if *d1 > 0.0 => {
            let efficiency = (d2 / d1) / (*r2 as f64 / *r1 as f64);
            println!(
                "reader scaling {r1} -> {r2} threads: {:.2}x throughput \
                 ({efficiency:.2} efficiency; near-linear expected up to the \
                 {cores} available core(s), time-slicing beyond)",
                d2 / d1
            );
            Some(efficiency)
        }
        _ => None,
    };

    if smoke {
        println!("smoke mode: skipping results/BENCH_service.json");
        return;
    }

    let leg_json = |legs: &[(usize, f64, LatencySummary)]| {
        legs.iter()
            .map(|(readers, dps, latency)| {
                format!(
                    "    {{\"readers\": {readers}, \"decisions_per_sec\": {dps:.0}, \
                     \"burst_latency\": {}}}",
                    latency.to_json()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let scaling_json = scaling.map_or_else(|| "null".to_string(), |e| format!("{e:.3}"));
    let json = format!(
        "{{\n  \"cores\": {cores},\n  \"nodes\": {nodes},\n  \"bursts\": {},\n  \"jobs_per_cycle\": {jobs_total},\n  \"quiescent\": [\n{}\n  ],\n  \"during_ingest\": [\n{}\n  ],\n  \"reader_scaling_efficiency\": {scaling_json},\n  \"fetch_published_idle\": {},\n  \"fetch_published_during_ingest\": {},\n  \"fetch_store_idle\": {},\n  \"fetch_store_during_ingest\": {},\n  \"fetch_published_contention_ratio\": {fetch_ratio:.3},\n  \"fetch_store_contention_ratio\": {store_ratio:.3}\n}}\n",
        bursts.len(),
        leg_json(&quiescent),
        leg_json(&during),
        fetch_idle.to_json(),
        fetch_busy.to_json(),
        store_idle.to_json(),
        store_busy.to_json(),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_service.json"
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, json).expect("write BENCH_service.json");
    println!("(results written to results/BENCH_service.json)");
}
