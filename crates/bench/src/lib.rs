//! # bench — shared fixtures for the Criterion benchmark harness
//!
//! The benches quantify what the paper's Section 8 calls "deployability and
//! retraining costs": scheduling-decision latency, model inference and
//! training time, simulator throughput, and the end-to-end cost of
//! regenerating each table/figure at reduced scale.
//!
//! This library crate holds the fixtures the individual benches share so they
//! are built once and stay consistent across benchmarks.

#![forbid(unsafe_code)]

use experiments::workflow::{ExperimentConfig, ExperimentDataset, Workflow};
use mlcore::{Dataset, ModelConfig, ModelKind, TrainedModel};
use netsched_core::features::FeatureSchema;
use netsched_core::logger::ExecutionLogger;
use netsched_core::predictor::CompletionTimePredictor;
use netsched_core::request::JobRequest;
use simcore::rng::Rng;
use sparksim::WorkloadKind;
use telemetry::ClusterSnapshot;

/// Latency percentiles over a set of nanosecond samples: the tail-latency
/// columns the load-harness benches report alongside throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median (nanoseconds).
    pub p50: f64,
    /// 95th percentile (nanoseconds).
    pub p95: f64,
    /// 99th percentile (nanoseconds).
    pub p99: f64,
    /// Fastest sample (nanoseconds).
    pub min: f64,
    /// Slowest sample (nanoseconds).
    pub max: f64,
    /// Number of samples summarized.
    pub samples: usize,
}

impl LatencySummary {
    /// Nearest-rank percentiles over `samples` (sorted in place).
    ///
    /// Panics on an empty slice — a harness that produced no samples is a
    /// harness bug, not a zero-latency run.
    pub fn from_samples(samples: &mut [f64]) -> LatencySummary {
        assert!(!samples.is_empty(), "percentiles need at least one sample");
        samples.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| {
            let rank = (q / 100.0 * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        LatencySummary {
            p50: pick(50.0),
            p95: pick(95.0),
            p99: pick(99.0),
            min: samples[0],
            max: samples[samples.len() - 1],
            samples: samples.len(),
        }
    }

    /// The summary as a JSON object fragment (`{"p50_ns": …, "p95_ns": …,
    /// "p99_ns": …, "samples": …}`), for the bench result files.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"p99_ns\": {:.0}, \"samples\": {}}}",
            self.p50, self.p95, self.p99, self.samples
        )
    }
}

/// Criterion-style measurement shared by the hand-rolled (`harness = false`)
/// benches: one warmup call calibrates the per-round iteration count toward
/// ~50 ms, then `rounds` timed rounds run and the per-round ns/iter
/// distribution is printed (`name: N ns/iter (p95 …, p99 …, min … .. max …)`)
/// and returned as a [`LatencySummary`]. Note the percentiles are over
/// per-round *means* — for true per-operation tails, collect raw samples and
/// use [`LatencySummary::from_samples`] directly.
pub fn measure_summary<T>(name: &str, rounds: usize, mut f: impl FnMut() -> T) -> LatencySummary {
    use std::time::{Duration, Instant};

    let start = Instant::now();
    std::hint::black_box(f());
    let first = start.elapsed();
    let target = Duration::from_millis(50);
    let iters = if first.is_zero() {
        1000
    } else {
        (target.as_secs_f64() / first.as_secs_f64()).clamp(1.0, 100_000.0) as usize
    };
    let mut results: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        results.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    let summary = LatencySummary::from_samples(&mut results);
    println!(
        "{name}: {:.0} ns/iter (p95 {:.0}, p99 {:.0}, min {:.0} .. max {:.0})",
        summary.p50, summary.p95, summary.p99, summary.min, summary.max
    );
    summary
}

/// [`measure_summary`] returning only the median ns/iter — the shape most
/// benches key their speedup ratios off.
pub fn measure<T>(name: &str, rounds: usize, f: impl FnMut() -> T) -> f64 {
    measure_summary(name, rounds, f).p50
}

/// A small but realistic dataset generated once per bench binary.
pub fn bench_dataset(seed: u64) -> ExperimentDataset {
    Workflow::new(ExperimentConfig {
        workers: simcore::parallel::default_workers(),
        ..ExperimentConfig::quick(2, 2, seed)
    })
    .run()
}

/// The training matrix derived from [`bench_dataset`].
pub fn bench_training_data(dataset: &ExperimentDataset) -> Dataset {
    dataset.full_logger().to_dataset()
}

/// A trained predictor of the requested family over the bench dataset.
pub fn bench_predictor(
    dataset: &ExperimentDataset,
    kind: ModelKind,
    seed: u64,
) -> CompletionTimePredictor {
    let data = bench_training_data(dataset);
    let mut rng = Rng::seed_from_u64(seed);
    let model = TrainedModel::train(kind, &bench_model_config(), &data, &mut rng);
    CompletionTimePredictor::new(dataset.schema.clone(), model)
        .expect("bench dataset width matches its schema")
}

/// Model hyperparameters used across benches (kept modest so benches finish
/// quickly while remaining representative).
pub fn bench_model_config() -> ModelConfig {
    ModelConfig {
        forest: mlcore::RandomForestConfig {
            n_trees: 50,
            workers: simcore::parallel::default_workers(),
            ..Default::default()
        },
        gbdt: mlcore::GradientBoostingConfig {
            n_rounds: 100,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A representative snapshot and job request for decision-latency benches.
pub fn bench_decision_inputs(
    dataset: &ExperimentDataset,
) -> (ClusterSnapshot, JobRequest, Vec<String>) {
    let scenario = &dataset.scenarios[0];
    (
        scenario.snapshot.clone(),
        JobRequest::named("bench-sort", WorkloadKind::Sort, 250_000, 2),
        scenario.candidate_nodes(),
    )
}

/// A synthetic logger of `n` rows for training-cost benches that do not need
/// the full simulation.
pub fn synthetic_logger(n: usize, seed: u64) -> ExecutionLogger {
    let schema = FeatureSchema::standard();
    let mut logger = ExecutionLogger::new(schema.clone());
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..n {
        let mut snapshot = ClusterSnapshot::default();
        snapshot.insert_node(
            "node-1",
            telemetry::NodeTelemetry {
                cpu_load: rng.uniform(0.0, 6.0),
                memory_available_bytes: rng.uniform(1e9, 8e9),
                tx_rate: rng.uniform(0.0, 1e7),
                rx_rate: rng.uniform(0.0, 1e7),
            },
        );
        snapshot.insert_rtt("node-1", "node-2", rng.uniform(0.001, 0.08));
        let kind = WorkloadKind::PAPER_SET[i % 3];
        let request =
            JobRequest::named(format!("syn-{i}"), kind, 50_000 + rng.gen_range(500_000), 2);
        let node = snapshot.node("node-1").unwrap();
        let duration = 20.0
            + 5.0 * node.cpu_load
            + 200.0 * snapshot.rtt_between("node-1", "node-2").unwrap()
            + request.workload.input_records as f64 / 25_000.0
            + rng.normal(0.0, 1.0);
        logger.log_execution(&snapshot, &request, "node-1", duration.max(1.0));
    }
    logger
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::from_samples(&mut samples);
        assert_eq!(summary.p50, 50.0);
        assert_eq!(summary.p95, 95.0);
        assert_eq!(summary.p99, 99.0);
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 100.0);
        assert_eq!(summary.samples, 100);
    }

    #[test]
    fn percentiles_of_one_sample_collapse_to_it() {
        let mut samples = vec![42.0];
        let summary = LatencySummary::from_samples(&mut samples);
        assert_eq!(summary.p50, 42.0);
        assert_eq!(summary.p99, 42.0);
        assert_eq!(summary.samples, 1);
    }

    #[test]
    fn summary_json_has_the_tail_columns() {
        let mut samples = vec![3.0, 1.0, 2.0];
        let json = LatencySummary::from_samples(&mut samples).to_json();
        for key in ["p50_ns", "p95_ns", "p99_ns", "samples"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
