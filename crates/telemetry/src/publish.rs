//! Epoch-published immutable snapshots.
//!
//! The sharded ingest pipeline of [`crate::ingest`] lets readers observe only
//! whole committed scrape rounds — but every [`crate::TelemetryReader`] fetch
//! still locks **all** shards to assemble its snapshot, so fetch latency
//! degrades the moment writers contend for the same locks (the
//! `fetch_during_ingest` penalty in `results/BENCH_ingest.json`). This module
//! removes the reader/writer interplay entirely:
//!
//! * The **writer side** ([`SnapshotPublisher`]) materializes one immutable
//!   [`ClusterSnapshot`] per committed epoch and publishes it behind an
//!   atomically bumped epoch counter. Snapshots are built copy-on-write via
//!   [`Arc::make_mut`] over a small ring of reusable buffers: in steady state
//!   (no reader retains an epoch for more than a few publishes) the previous
//!   buffer is uniquely owned again by the time it cycles back, so publishing
//!   mutates it in place — no node-table, mesh or `String` reallocation, only
//!   the handful of values that scrape changed are rewritten.
//! * The **reader side** ([`PublishedSnapshot`]) resolves the current epoch
//!   with one atomic load and clones the published `Arc` out of its slot —
//!   never touching the store, its shard locks, or the commit epoch protocol.
//!   Any number of readers share one published snapshot; a scheduler keeps
//!   the `Arc` for a whole decision burst (or across bursts, via the epoch
//!   stamp) at zero copies.
//!
//! A reader therefore always observes a **whole committed epoch** — the exact
//! snapshot the sequential path would have assembled at that epoch's scrape
//! time — and consecutive reads observe monotonically non-decreasing epochs.

use crate::snapshot::{ClusterSnapshot, SnapshotSource};
use parking_lot::Mutex;
use simcore::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of publish slots (and copy-on-write buffers). A reader is lapped —
/// and simply retries against the then-current epoch — only if the writer
/// publishes this many epochs between the reader's epoch load and its slot
/// lock, a window of a few nanoseconds.
const SLOT_COUNT: usize = 4;

/// One published epoch: a monotonically increasing epoch number (starting at
/// 1; 0 means "nothing published") and the immutable snapshot committed with
/// it. Cloning is an `Arc` bump — the snapshot itself is never copied.
#[derive(Debug, Clone)]
pub struct PublishedEpoch {
    /// The epoch number (1-based, strictly increasing per publisher).
    pub epoch: u64,
    /// The snapshot committed at this epoch. Immutable: the publisher only
    /// ever mutates a buffer it uniquely owns again.
    pub snapshot: Arc<ClusterSnapshot>,
}

/// State shared between one [`SnapshotPublisher`] and all of its
/// [`PublishedSnapshot`] handles.
#[derive(Debug)]
struct PublishShared {
    /// The latest fully published epoch (0 = none yet). Stored with release
    /// ordering *after* the slot holds the epoch, so a reader that observes
    /// epoch `e` always finds epoch `e` (never an older one) in slot
    /// `e % SLOT_COUNT`.
    epoch: AtomicU64,
    /// Publish slots, indexed by `epoch % SLOT_COUNT`. Each lock is held only
    /// for an `Option` store (writer) or an `Arc` clone (reader).
    slots: Vec<Mutex<Option<PublishedEpoch>>>,
}

impl PublishShared {
    fn new() -> Self {
        PublishShared {
            epoch: AtomicU64::new(0),
            slots: (0..SLOT_COUNT).map(|_| Mutex::new(None)).collect(),
        }
    }
}

/// The writer side: owned by whatever commits scrape rounds (the scrape
/// managers), publishing one immutable snapshot per committed epoch.
///
/// Single-writer by construction (`publish_with` takes `&mut self`).
#[derive(Debug)]
pub struct SnapshotPublisher {
    shared: Arc<PublishShared>,
    /// Copy-on-write buffers, one per slot: buffer `e % SLOT_COUNT` is reused
    /// for epoch `e`. By the time a buffer cycles back its slot reference has
    /// been dropped, so unless a reader still retains that old epoch the
    /// buffer is uniquely owned and [`Arc::make_mut`] mutates it in place.
    buffers: Vec<Arc<ClusterSnapshot>>,
    /// The next epoch number to publish (starts at 1).
    next_epoch: u64,
}

impl Default for SnapshotPublisher {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotPublisher {
    /// A publisher with nothing published yet (handles read `None`).
    pub fn new() -> Self {
        SnapshotPublisher {
            shared: Arc::new(PublishShared::new()),
            buffers: (0..SLOT_COUNT)
                .map(|_| Arc::new(ClusterSnapshot::default()))
                .collect(),
            next_epoch: 1,
        }
    }

    /// The latest published epoch number (0 = none yet).
    pub fn epoch(&self) -> u64 {
        self.next_epoch - 1
    }

    /// A cheap, cloneable, thread-safe read handle over this publisher.
    pub fn handle(&self) -> PublishedSnapshot {
        PublishedSnapshot {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The latest published epoch, if any (same view the handles get).
    pub fn latest(&self) -> Option<PublishedEpoch> {
        self.handle().latest()
    }

    /// Publish the next epoch: `fill` rewrites the epoch's snapshot buffer
    /// (copy-on-write — in place unless a reader still retains the buffer
    /// from `SLOT_COUNT` epochs ago), then the buffer is installed in its
    /// slot and the epoch counter is bumped with release ordering. Returns
    /// the published epoch number.
    pub fn publish_with(&mut self, fill: impl FnOnce(&mut ClusterSnapshot)) -> u64 {
        let epoch = self.next_epoch;
        let index = (epoch as usize) % SLOT_COUNT;
        // Drop the slot's reference from SLOT_COUNT epochs ago first, so the
        // buffer below is uniquely owned again in steady state. A reader
        // holding a stale epoch load retries against the fresh epoch when it
        // finds the slot empty or mismatched.
        *self.shared.slots[index].lock() = None;
        let buffer = &mut self.buffers[index];
        fill(Arc::make_mut(buffer));
        *self.shared.slots[index].lock() = Some(PublishedEpoch {
            epoch,
            snapshot: Arc::clone(buffer),
        });
        // ordering: Release makes the slot contents written above visible to
        // any reader whose Acquire load of `epoch` observes this value.
        self.shared.epoch.store(epoch, Ordering::Release);
        self.next_epoch += 1;
        epoch
    }
}

/// Cloning a publisher detaches it: the clone gets fresh shared state (its
/// own epoch counter and slots) re-publishing the latest epoch, so handles
/// taken from the original keep observing only the original. Two publishers
/// never race on one slot ring — the single-writer invariant survives
/// cloning a scrape manager.
impl Clone for SnapshotPublisher {
    fn clone(&self) -> Self {
        let mut detached = SnapshotPublisher::new();
        if let Some(published) = self.latest() {
            detached.publish_with(|snap| snap.clone_from(&published.snapshot));
        }
        detached
    }
}

/// The reader side: a cloneable, thread-safe handle resolving the latest
/// published epoch with one atomic load plus one `Arc` clone — no store
/// access, no shard locks, no waiting out in-flight commits.
///
/// As a [`SnapshotSource`] it serves the *latest* published state regardless
/// of the requested fetch time (the paper's fetcher semantics: "the most
/// recent telemetry snapshot"); historical queries stay on the store-backed
/// sources. [`SnapshotSource::published`] / [`SnapshotSource::published_epoch`]
/// expose the zero-copy path schedulers use.
#[derive(Debug, Clone)]
pub struct PublishedSnapshot {
    shared: Arc<PublishShared>,
}

impl PublishedSnapshot {
    /// The latest published epoch number (one atomic load; 0 = none yet).
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the Release store in `publish_with`,
        // so the slot this epoch points at is fully written before we read it.
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The latest published epoch and its immutable snapshot, or `None`
    /// before the first publish. Epochs observed by one handle across calls
    /// are monotonically non-decreasing.
    pub fn latest(&self) -> Option<PublishedEpoch> {
        loop {
            let epoch = self.epoch();
            if epoch == 0 {
                return None;
            }
            let slot = self.shared.slots[(epoch as usize) % SLOT_COUNT].lock();
            match &*slot {
                Some(published) if published.epoch == epoch => return Some(published.clone()),
                // The writer lapped this read (>= SLOT_COUNT publishes since
                // the epoch load): retry against the then-current epoch.
                _ => {
                    drop(slot);
                    std::hint::spin_loop();
                }
            }
        }
    }
}

impl SnapshotSource for PublishedSnapshot {
    /// Copy the latest published snapshot into `snap` (the trait-compat
    /// path; epoch-aware callers use [`SnapshotSource::published`] and share
    /// the `Arc` without copying). `at` and `rate_window` are ignored — the
    /// published snapshot carries its own scrape time and was assembled with
    /// the ingest side's rate window. Before the first publish this yields an
    /// empty snapshot stamped `at`, matching the other sources' pre-scrape
    /// fallback.
    fn snapshot_into(&self, at: SimTime, _rate_window: SimDuration, snap: &mut ClusterSnapshot) {
        match self.latest() {
            Some(published) => snap.clone_from(&published.snapshot),
            None => {
                snap.clear();
                snap.time = at;
            }
        }
    }

    fn published(&self) -> Option<PublishedEpoch> {
        self.latest()
    }

    fn published_epoch(&self) -> Option<u64> {
        match self.epoch() {
            0 => None,
            epoch => Some(epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::NodeTelemetry;

    fn snap_with_load(load: f64) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(load as u64));
        snap.insert_node(
            "node-1",
            NodeTelemetry {
                cpu_load: load,
                ..Default::default()
            },
        );
        snap
    }

    #[test]
    fn handle_reads_latest_epoch() {
        let mut publisher = SnapshotPublisher::new();
        let handle = publisher.handle();
        assert_eq!(publisher.epoch(), 0);
        assert_eq!(handle.epoch(), 0);
        assert!(handle.latest().is_none());
        assert!(handle.published().is_none());
        assert_eq!(handle.published_epoch(), None);

        publisher.publish_with(|snap| *snap = snap_with_load(1.0));
        publisher.publish_with(|snap| *snap = snap_with_load(2.0));
        assert_eq!(publisher.epoch(), 2);
        let latest = handle.latest().unwrap();
        assert_eq!(latest.epoch, 2);
        assert_eq!(latest.snapshot.node("node-1").unwrap().cpu_load, 2.0);
        assert_eq!(handle.published_epoch(), Some(2));
        // The trait-compat copy path serves the same snapshot.
        let copied = handle.snapshot(SimTime::from_secs(99), SimDuration::from_secs(30));
        assert_eq!(copied, *latest.snapshot);
    }

    #[test]
    fn snapshot_into_before_first_publish_is_empty_at_requested_time() {
        let publisher = SnapshotPublisher::new();
        let handle = publisher.handle();
        let snap = handle.snapshot(SimTime::from_secs(7), SimDuration::from_secs(30));
        assert!(snap.is_empty());
        assert_eq!(snap.time, SimTime::from_secs(7));
    }

    #[test]
    fn steady_state_publishing_mutates_buffers_in_place() {
        let mut publisher = SnapshotPublisher::new();
        let handle = publisher.handle();
        // Cycle far past the slot ring while a reader takes (and drops) the
        // latest epoch each round: every buffer must be uniquely owned again
        // by the time it cycles back, so make_mut never deep-copies.
        let mut last_ptr = None;
        for i in 0..20u64 {
            publisher.publish_with(|snap| *snap = snap_with_load(i as f64));
            let latest = handle.latest().unwrap();
            assert_eq!(latest.epoch, i + 1);
            last_ptr = Some(Arc::as_ptr(&latest.snapshot));
        }
        // Publishing SLOT_COUNT more epochs reuses the exact same buffer
        // allocation for the same slot index.
        let before = last_ptr.unwrap();
        for i in 20..20 + SLOT_COUNT as u64 {
            publisher.publish_with(|snap| *snap = snap_with_load(i as f64));
        }
        let after = Arc::as_ptr(&handle.latest().unwrap().snapshot);
        assert_eq!(before, after, "slot buffer must be reused, not reallocated");
    }

    #[test]
    fn retained_epoch_is_never_mutated() {
        let mut publisher = SnapshotPublisher::new();
        let handle = publisher.handle();
        publisher.publish_with(|snap| *snap = snap_with_load(1.0));
        let retained = handle.latest().unwrap();
        // Publish enough epochs to cycle back onto epoch 1's buffer while a
        // reader still holds it: copy-on-write must leave the retained
        // snapshot untouched.
        for i in 0..2 * SLOT_COUNT as u64 {
            publisher.publish_with(|snap| *snap = snap_with_load(10.0 + i as f64));
        }
        assert_eq!(retained.epoch, 1);
        assert_eq!(retained.snapshot.node("node-1").unwrap().cpu_load, 1.0);
        let latest = handle.latest().unwrap();
        assert_eq!(latest.epoch, 1 + 2 * SLOT_COUNT as u64);
        assert_ne!(
            Arc::as_ptr(&retained.snapshot),
            Arc::as_ptr(&latest.snapshot)
        );
    }

    #[test]
    fn cloned_publisher_is_detached() {
        let mut publisher = SnapshotPublisher::new();
        publisher.publish_with(|snap| *snap = snap_with_load(3.0));
        let original_handle = publisher.handle();

        let mut clone = publisher.clone();
        assert_eq!(clone.epoch(), 1);
        assert_eq!(
            clone
                .latest()
                .unwrap()
                .snapshot
                .node("node-1")
                .unwrap()
                .cpu_load,
            3.0
        );
        // Publishing on the clone is invisible to the original's handles.
        clone.publish_with(|snap| *snap = snap_with_load(4.0));
        assert_eq!(original_handle.latest().unwrap().epoch, 1);
        assert_eq!(clone.latest().unwrap().epoch, 2);

        // A never-published publisher clones to a never-published one.
        let empty = SnapshotPublisher::new().clone();
        assert_eq!(empty.epoch(), 0);
    }

    #[test]
    fn concurrent_readers_observe_monotone_epochs() {
        let mut publisher = SnapshotPublisher::new();
        let handle = publisher.handle();
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        let mut last = 0u64;
                        let mut observed = Vec::new();
                        while last < 500 {
                            if let Some(p) = handle.latest() {
                                observed.push(p.epoch);
                                last = p.epoch;
                            }
                        }
                        observed
                    })
                })
                .collect();
            for i in 0..500u64 {
                publisher.publish_with(|snap| *snap = snap_with_load(i as f64));
            }
            for reader in readers {
                let observed = reader.join().unwrap();
                assert!(
                    observed.windows(2).all(|w| w[0] <= w[1]),
                    "epochs must be monotone"
                );
                assert_eq!(*observed.last().unwrap(), 500);
            }
        });
    }
}
