//! Append-only time-series storage with Prometheus-flavoured queries.
//!
//! The store is the metrics server's hot read path: every scheduling decision
//! queries it, so its cost model matters. Two design points keep per-decision
//! work independent of retained history:
//!
//! * **Interned series identity.** Every [`SeriesKey`] is interned once into a
//!   small copyable [`SeriesId`] (its index in the store's key table). All
//!   queries have an `*_id` fast path that skips the key comparison entirely,
//!   and a per-metric-name index makes "all series of metric X"
//!   ([`TimeSeriesStore::ids_for_name`]) a direct bucket lookup instead of a
//!   full-keyspace scan.
//! * **Windowed queries without intermediate allocation.** `range`, `rate`
//!   and `avg_over` slice the time-ordered point vector with two
//!   `partition_point` binary searches and operate on the borrowed window —
//!   no `Vec` is built per query. [`TimeSeriesStore::range`] returns the
//!   borrowed slice directly; [`TimeSeriesStore::range_vec`] is the owning
//!   shim for serde-ish consumers that need a `Vec`.

use crate::metrics::{MetricKind, Sample, SeriesKey};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Interned series identity: a dense index into the store's key table.
///
/// `SeriesId`s are assigned in intern order and are stable for the lifetime
/// of the store (series are never removed). They are deliberately tiny and
/// `Copy` so exporters and snapshot assembly can address series without
/// touching `String`s — the same pattern as `cluster::NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesId(pub u32);

impl SeriesId {
    /// The id as a usize index into the store's series table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a table index.
    pub fn from_index(index: usize) -> Self {
        SeriesId(index as u32)
    }
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s#{}", self.0)
    }
}

/// One stored series: its kind and time-ordered points.
///
/// Retention pruning is **amortized**: pruned points are first skipped via
/// `start` (an O(log n) bound advance per append) and only physically
/// drained once they exceed half the buffer — so steady-state appends never
/// pay a per-point `memmove` of the whole retained window. Every read path
/// goes through [`Series::live`], which hides pruned points, so the
/// observable semantics are identical to eager pruning.
#[derive(Debug, Clone)]
struct Series {
    kind: MetricKind,
    points: Vec<(SimTime, f64)>,
    /// Index of the first live (non-pruned) point in `points`.
    start: usize,
}

impl Series {
    /// The live (retention-respecting) points of this series.
    fn live(&self) -> &[(SimTime, f64)] {
        &self.points[self.start..]
    }

    /// Advance the live window past points older than `cutoff`, draining the
    /// pruned prefix when it dominates the buffer. The scan is linear from
    /// `start` — in steady state each append expires at most one point, so
    /// this is O(1) amortized (every point is skipped exactly once).
    fn prune(&mut self, cutoff: SimTime) {
        while self.start < self.points.len() && self.points[self.start].0 < cutoff {
            self.start += 1;
        }
        if self.start > PRUNE_DRAIN_THRESHOLD && self.start * 2 > self.points.len() {
            self.points.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Pruned-prefix length beyond which (together with dominating half the
/// buffer) the prefix is physically drained — bounding memory at ~2× the
/// live window while keeping the per-append cost amortized O(1).
const PRUNE_DRAIN_THRESHOLD: usize = 32;

/// The time-series database backing the metrics server.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesStore {
    /// Series key per [`SeriesId`] (intern order).
    keys: Vec<SeriesKey>,
    /// Series data per [`SeriesId`].
    series: Vec<Series>,
    /// Key → id intern index (sorted; drives [`TimeSeriesStore::keys`]).
    key_index: BTreeMap<SeriesKey, u32>,
    /// Metric name → ids of all series with that name, in intern order.
    name_index: BTreeMap<String, Vec<SeriesId>>,
    retention: Option<SimDuration>,
    /// Newest timestamp ever accepted (or observed via
    /// [`TimeSeriesStore::observe_time`]). The retention cutoff is derived
    /// from this watermark, not from each incoming sample, so a late
    /// out-of-order append can never move the cutoff backwards.
    max_ts: SimTime,
}

impl TimeSeriesStore {
    /// Create an empty store with unlimited retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store that prunes points older than `retention` behind the
    /// latest appended timestamp.
    pub fn with_retention(retention: SimDuration) -> Self {
        TimeSeriesStore {
            retention: Some(retention),
            ..Self::default()
        }
    }

    /// Intern a series key, returning its stable [`SeriesId`]. The kind is
    /// fixed by the first intern; later interns of the same key return the
    /// existing id unchanged.
    pub fn intern(&mut self, key: &SeriesKey, kind: MetricKind) -> SeriesId {
        if let Some(&id) = self.key_index.get(key) {
            return SeriesId(id);
        }
        let id = SeriesId(self.keys.len() as u32);
        self.key_index.insert(key.clone(), id.0);
        self.name_index
            .entry(key.name.clone())
            .or_default()
            .push(id);
        self.keys.push(key.clone());
        self.series.push(Series {
            kind,
            points: Vec::new(),
            start: 0,
        });
        id
    }

    /// Resolve a key to its interned id, if the series exists.
    pub fn series_id(&self, key: &SeriesKey) -> Option<SeriesId> {
        self.key_index.get(key).copied().map(SeriesId)
    }

    /// The key of an interned series.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this store.
    pub fn key(&self, id: SeriesId) -> &SeriesKey {
        &self.keys[id.index()]
    }

    /// The kind of an interned series.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this store.
    pub fn kind(&self, id: SeriesId) -> MetricKind {
        self.series[id.index()].kind
    }

    /// Ids of every series with the given metric name, in intern order.
    pub fn ids_for_name(&self, name: &str) -> &[SeriesId] {
        self.name_index.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Append one sample, interning its key. Prefer
    /// [`TimeSeriesStore::append_value`] with a pre-interned id on hot paths.
    pub fn append(&mut self, sample: Sample) {
        let id = self.intern(&sample.key, sample.kind);
        self.append_value(id, sample.value, sample.timestamp);
    }

    /// Append a value to a pre-interned series. Out-of-order samples (older
    /// than the series tail) and duplicate samples for the tail timestamp are
    /// dropped, mirroring Prometheus's "out of order sample" / "duplicate
    /// sample for timestamp" ingestion rules.
    ///
    /// The retention cutoff is **monotone**: it is derived from the newest
    /// timestamp the store has ever seen (`max_ts - retention`), not from the
    /// incoming sample's timestamp. A series that receives a late sample
    /// (valid for *it*, but older than another series' tail) is therefore
    /// pruned exactly as far as any earlier append already pruned, and a
    /// late sample older than the retention window is itself discarded.
    pub fn append_value(&mut self, id: SeriesId, value: f64, timestamp: SimTime) {
        if !self.push_point(id, value, timestamp) {
            return;
        }
        if let Some(cutoff) = self.retention_cutoff() {
            self.series[id.index()].prune(cutoff);
        }
    }

    /// Append without pruning the series afterwards — the bulk-ingest path:
    /// a writer applying a whole committed chunk appends every sample first
    /// and prunes each shard once per chunk
    /// ([`TimeSeriesStore::prune_all_to_watermark`]). Because the cutoff is
    /// monotone in the watermark, pruning once against the final watermark
    /// yields exactly the same live window as pruning after every append —
    /// and nothing can observe the intermediate states, which only exist
    /// inside an uncommitted chunk.
    pub(crate) fn append_value_deferred_prune(&mut self, id: SeriesId, value: f64, ts: SimTime) {
        self.push_point(id, value, ts);
    }

    /// Prune every series against the current watermark cutoff (the batch
    /// companion of [`TimeSeriesStore::append_value_deferred_prune`]).
    pub(crate) fn prune_all_to_watermark(&mut self) {
        if let Some(cutoff) = self.retention_cutoff() {
            for series in &mut self.series {
                series.prune(cutoff);
            }
        }
    }

    /// The current retention cutoff (`watermark - retention`), if retention
    /// is configured.
    fn retention_cutoff(&self) -> Option<SimTime> {
        let retention = self.retention?;
        Some(SimTime::from_nanos(
            self.max_ts.as_nanos().saturating_sub(retention.as_nanos()),
        ))
    }

    /// Shared ingestion body: apply the out-of-order/duplicate drop rules,
    /// advance the watermark and push the point. Returns false when the
    /// sample was dropped.
    fn push_point(&mut self, id: SeriesId, value: f64, timestamp: SimTime) -> bool {
        let series = &mut self.series[id.index()];
        if series.start < series.points.len() {
            // The live tail is always the physical tail (pruning only skips
            // a prefix), so the ingestion-order check reads the last point.
            let (last_t, _) = series.points[series.points.len() - 1];
            if timestamp <= last_t {
                return false;
            }
        } else if series.start > 0 {
            // Every point was pruned: reset the buffer so the stale physical
            // entries (which may be newer than this sample) cannot break the
            // time ordering — eager pruning would have left an empty vector
            // here, and empty series accept any timestamp.
            series.points.clear();
            series.start = 0;
        }
        if timestamp > self.max_ts {
            self.max_ts = timestamp;
        }
        series.points.push((timestamp, value));
        true
    }

    /// Advance the retention watermark without appending a sample.
    ///
    /// Sharded deployments call this so every shard prunes against the
    /// *global* newest timestamp (a shard only ingesting slow-moving metrics
    /// would otherwise retain more history than the flat store it replaces).
    pub fn observe_time(&mut self, timestamp: SimTime) {
        if timestamp > self.max_ts {
            self.max_ts = timestamp;
        }
    }

    /// The newest timestamp ever accepted or observed (`SimTime::ZERO` for an
    /// empty store): the watermark retention prunes against.
    pub fn max_timestamp(&self) -> SimTime {
        self.max_ts
    }

    /// Append many samples.
    pub fn append_all(&mut self, samples: impl IntoIterator<Item = Sample>) {
        for s in samples {
            self.append(s);
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total number of stored points across all series.
    pub fn point_count(&self) -> usize {
        self.series.iter().map(|s| s.live().len()).sum()
    }

    /// Latest value of a series at or before `at`.
    pub fn instant(&self, key: &SeriesKey, at: SimTime) -> Option<f64> {
        self.instant_id(self.series_id(key)?, at)
    }

    /// Latest value of a pre-interned series at or before `at`.
    ///
    /// The common per-decision query asks for the freshest sample (`at` at or
    /// past the series tail) and is answered in O(1) from the tail; older
    /// instants fall back to a binary search.
    pub fn instant_id(&self, id: SeriesId, at: SimTime) -> Option<f64> {
        let points = self.series[id.index()].live();
        match points.last() {
            None => None,
            Some(&(t, v)) if t <= at => Some(v),
            _ => {
                let idx = points.partition_point(|&(t, _)| t <= at);
                if idx == 0 {
                    None
                } else {
                    Some(points[idx - 1].1)
                }
            }
        }
    }

    /// All points of a series with timestamps in `[from, to]`, as a borrowed
    /// slice of the series storage (no allocation).
    pub fn range(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> &[(SimTime, f64)] {
        match self.series_id(key) {
            Some(id) => self.range_id(id, from, to),
            None => &[],
        }
    }

    /// Borrowed window `[from, to]` of a pre-interned series.
    ///
    /// Decision-path windows (rate lookbacks) end at the series tail and span
    /// a handful of points, so the bounds are found by a short backward walk
    /// from the tail — O(window), cache-local, independent of how much
    /// history retention keeps. Windows deeper in history fall back to
    /// `partition_point` binary searches.
    pub fn range_id(&self, id: SeriesId, from: SimTime, to: SimTime) -> &[(SimTime, f64)] {
        let points = self.series[id.index()].live();
        let hi = match points.last() {
            Some(&(t, _)) if t > to => points.partition_point(|&(t, _)| t <= to),
            _ => points.len(),
        };
        let mut lo = hi;
        let mut steps = 0usize;
        while lo > 0 && points[lo - 1].0 >= from {
            lo -= 1;
            steps += 1;
            if steps > 32 {
                lo = points[..hi].partition_point(|&(t, _)| t < from);
                break;
            }
        }
        &points[lo..hi]
    }

    /// Owning variant of [`TimeSeriesStore::range`] for consumers that need a
    /// `Vec` (serde payloads, archival exports). Hot paths use the borrowed
    /// slice.
    pub fn range_vec(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        self.range(key, from, to).to_vec()
    }

    /// Prometheus-style `rate()`: the per-second increase of a counter over
    /// the window `[at - window, at]`. Returns `None` when fewer than two
    /// points fall in the window or the series is not a counter.
    pub fn rate(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        self.rate_id(self.series_id(key)?, at, window)
    }

    /// `rate()` over a pre-interned counter series.
    pub fn rate_id(&self, id: SeriesId, at: SimTime, window: SimDuration) -> Option<f64> {
        if self.series[id.index()].kind != MetricKind::Counter {
            return None;
        }
        let from_nanos = at.as_nanos().saturating_sub(window.as_nanos());
        let pts = self.range_id(id, SimTime::from_nanos(from_nanos), at);
        if pts.len() < 2 {
            return None;
        }
        let (t0, v0) = pts[0];
        let (t1, v1) = pts[pts.len() - 1];
        let dt = (t1 - t0).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        // Counters never decrease in our exporters; clamp defensively anyway.
        Some(((v1 - v0).max(0.0)) / dt)
    }

    /// Latest gauge value per matching series: every series with the given
    /// metric name (resolved through the per-name bucket index, not a
    /// full-keyspace scan), with its interned id. Resolve ids back to keys
    /// with [`TimeSeriesStore::key`] at the edges.
    pub fn instant_by_name(&self, name: &str, at: SimTime) -> Vec<(SeriesId, f64)> {
        self.ids_for_name(name)
            .iter()
            .filter_map(|&id| self.instant_id(id, at).map(|v| (id, v)))
            .collect()
    }

    /// Average of a series over `[at - window, at]` (gauges).
    pub fn avg_over(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        self.avg_over_id(self.series_id(key)?, at, window)
    }

    /// Average over a pre-interned series.
    pub fn avg_over_id(&self, id: SeriesId, at: SimTime, window: SimDuration) -> Option<f64> {
        let from_nanos = at.as_nanos().saturating_sub(window.as_nanos());
        let pts = self.range_id(id, SimTime::from_nanos(from_nanos), at);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64)
    }

    /// All series keys (sorted).
    pub fn keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.key_index.keys()
    }
}

/// One serialized series entry: key, kind and time-ordered points.
type SeriesEntry = (SeriesKey, MetricKind, Vec<(SimTime, f64)>);

/// The store serializes in a canonical form — retention, the watermark and a
/// `(key, kind, points)` list in intern order — and deserialization rebuilds
/// the intern tables (key table, key index, per-name buckets) and re-appends
/// every point through the ingestion rules, so an archive can never smuggle
/// in an inconsistent index layout: every internal invariant is
/// re-established by construction. The watermark is carried explicitly
/// because it can run ahead of every stored sample
/// ([`TimeSeriesStore::observe_time`]) and the retention cutoff depends on
/// it.
impl Serialize for TimeSeriesStore {
    fn serialize_value(&self) -> serde::Value {
        let series: Vec<SeriesEntry> = self
            .keys
            .iter()
            .zip(&self.series)
            .map(|(key, series)| (key.clone(), series.kind, series.live().to_vec()))
            .collect();
        serde::Value::Map(vec![
            (
                serde::Value::Str("retention".to_string()),
                self.retention.serialize_value(),
            ),
            (
                serde::Value::Str("watermark".to_string()),
                self.max_ts.serialize_value(),
            ),
            (
                serde::Value::Str("series".to_string()),
                series.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for TimeSeriesStore {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for TimeSeriesStore"))?;
        let retention: Option<SimDuration> =
            Deserialize::deserialize_value(serde::get_field(map, "retention")?)?;
        let watermark = SimTime::deserialize_value(serde::get_field(map, "watermark")?)?;
        let series: Vec<SeriesEntry> =
            Deserialize::deserialize_value(serde::get_field(map, "series")?)?;
        let mut store = match retention {
            Some(r) => TimeSeriesStore::with_retention(r),
            None => TimeSeriesStore::new(),
        };
        // Re-ingest in global timestamp order (stable across series), not
        // series-by-series: the retention cutoff is monotone in the newest
        // timestamp seen, so replaying one fully-caught-up series before an
        // older one would prune the older series' entire history. Points of
        // one series are already time-ordered, and a stable sort keeps them
        // that way, so this replays the archive exactly as a live store
        // ingesting samples in time order would have seen them.
        let mut replay: Vec<(SimTime, SeriesId, f64)> = Vec::new();
        for (key, kind, points) in series {
            let id = store.intern(&key, kind);
            replay.extend(points.into_iter().map(|(t, value)| (t, id, value)));
        }
        replay.sort_by_key(|&(t, _, _)| t);
        for (t, id, value) in replay {
            store.append_value(id, value, t);
        }
        // Restore a watermark that ran ahead of every stored sample (e.g. a
        // sharded deployment observing the global newest timestamp); replayed
        // samples already advanced it at least to their own maximum.
        store.observe_time(watermark);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, node: &str) -> SeriesKey {
        SeriesKey::per_node(name, node)
    }

    #[test]
    fn append_and_instant_query() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        store.append(Sample::gauge(k.clone(), 0.5, SimTime::from_secs(10)));
        store.append(Sample::gauge(k.clone(), 0.9, SimTime::from_secs(20)));
        assert_eq!(store.instant(&k, SimTime::from_secs(5)), None);
        assert_eq!(store.instant(&k, SimTime::from_secs(10)), Some(0.5));
        assert_eq!(store.instant(&k, SimTime::from_secs(15)), Some(0.5));
        assert_eq!(store.instant(&k, SimTime::from_secs(25)), Some(0.9));
        assert_eq!(store.series_count(), 1);
        assert_eq!(store.point_count(), 2);
        // Unknown series.
        assert_eq!(
            store.instant(&key("nope", "node-1"), SimTime::from_secs(30)),
            None
        );
    }

    #[test]
    fn interning_is_stable_and_resolvable() {
        let mut store = TimeSeriesStore::new();
        let a = store.intern(&key("m", "node-1"), MetricKind::Gauge);
        let b = store.intern(&key("m", "node-2"), MetricKind::Gauge);
        assert_ne!(a, b);
        // Re-interning returns the same id and does not change the kind.
        assert_eq!(store.intern(&key("m", "node-1"), MetricKind::Counter), a);
        assert_eq!(store.kind(a), MetricKind::Gauge);
        assert_eq!(store.series_id(&key("m", "node-1")), Some(a));
        assert_eq!(store.series_id(&key("m", "node-9")), None);
        assert_eq!(store.key(b), &key("m", "node-2"));
        assert_eq!(store.ids_for_name("m"), &[a, b]);
        assert!(store.ids_for_name("other").is_empty());
        assert_eq!(SeriesId::from_index(7).index(), 7);
        assert_eq!(format!("{}", SeriesId(4)), "s#4");
    }

    #[test]
    fn out_of_order_and_duplicate_samples_are_dropped() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        store.append(Sample::gauge(k.clone(), 1.0, SimTime::from_secs(10)));
        store.append(Sample::gauge(k.clone(), 2.0, SimTime::from_secs(5)));
        assert_eq!(store.point_count(), 1);
        assert_eq!(store.instant(&k, SimTime::from_secs(30)), Some(1.0));
        // A duplicate sample for the tail timestamp is dropped (Prometheus's
        // "duplicate sample for timestamp" rule): the first write wins and the
        // instant is not double-counted by windowed aggregations.
        store.append(Sample::gauge(k.clone(), 3.0, SimTime::from_secs(10)));
        assert_eq!(store.point_count(), 1);
        assert_eq!(store.instant(&k, SimTime::from_secs(30)), Some(1.0));
        assert_eq!(
            store.avg_over(&k, SimTime::from_secs(10), SimDuration::from_secs(10)),
            Some(1.0)
        );
    }

    #[test]
    fn range_query_filters_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-2");
        for i in 0..10u64 {
            store.append(Sample::gauge(
                k.clone(),
                i as f64,
                SimTime::from_secs(i * 10),
            ));
        }
        let pts = store.range(&k, SimTime::from_secs(25), SimTime::from_secs(55));
        assert_eq!(pts.len(), 3); // t = 30, 40, 50
        assert_eq!(pts[0].1, 3.0);
        assert_eq!(pts[2].1, 5.0);
        assert!(store
            .range(&key("x", "y"), SimTime::ZERO, SimTime::MAX)
            .is_empty());
        // The owning shim returns the same window.
        assert_eq!(
            store.range_vec(&k, SimTime::from_secs(25), SimTime::from_secs(55)),
            pts.to_vec()
        );
    }

    #[test]
    fn rate_over_counter_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_network_transmit_bytes_total", "node-1");
        // 1000 bytes/sec for 60 seconds, scraped every 15 s.
        for i in 0..=4u64 {
            store.append(Sample::counter(
                k.clone(),
                (i * 15_000) as f64,
                SimTime::from_secs(i * 15),
            ));
        }
        let rate = store
            .rate(&k, SimTime::from_secs(60), SimDuration::from_secs(30))
            .unwrap();
        assert!((rate - 1000.0).abs() < 1e-9);
        // Window too small for two samples.
        assert_eq!(
            store.rate(&k, SimTime::from_secs(60), SimDuration::from_secs(10)),
            None
        );
        // Gauges have no rate.
        let g = key("node_load1", "node-1");
        store.append(Sample::gauge(g.clone(), 1.0, SimTime::from_secs(0)));
        store.append(Sample::gauge(g.clone(), 2.0, SimTime::from_secs(30)));
        assert_eq!(
            store.rate(&g, SimTime::from_secs(60), SimDuration::from_secs(60)),
            None
        );
    }

    #[test]
    fn rate_clamps_counter_resets() {
        let mut store = TimeSeriesStore::new();
        let k = key("ctr", "node-1");
        store.append(Sample::counter(k.clone(), 1000.0, SimTime::from_secs(0)));
        store.append(Sample::counter(k.clone(), 10.0, SimTime::from_secs(10)));
        let r = store
            .rate(&k, SimTime::from_secs(10), SimDuration::from_secs(20))
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn retention_prunes_old_points() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(30));
        let k = key("node_load1", "node-1");
        for i in 0..10u64 {
            store.append(Sample::gauge(
                k.clone(),
                i as f64,
                SimTime::from_secs(i * 10),
            ));
        }
        // Last timestamp is 90 s; retention 30 s keeps points at >= 60 s.
        assert_eq!(store.point_count(), 4);
        assert_eq!(store.instant(&k, SimTime::from_secs(55)), None);
        assert_eq!(store.instant(&k, SimTime::from_secs(95)), Some(9.0));
    }

    #[test]
    fn retention_cutoff_is_monotone_across_series() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(30));
        let a = key("node_load1", "node-a");
        let b = key("node_load1", "node-b");
        store.append(Sample::gauge(b.clone(), 1.0, SimTime::from_secs(60)));
        store.append(Sample::gauge(a.clone(), 1.0, SimTime::from_secs(100)));
        assert_eq!(store.max_timestamp(), SimTime::from_secs(100));
        // A late sample for series b (in order for *b*) must prune b against
        // the watermark cutoff (100 - 30 = 70), not against its own stale
        // timestamp: the t = 60 point falls out even though 60 >= 75 - 30.
        store.append(Sample::gauge(b.clone(), 2.0, SimTime::from_secs(75)));
        assert_eq!(store.instant(&b, SimTime::MAX), Some(2.0));
        assert_eq!(store.range(&b, SimTime::ZERO, SimTime::MAX).len(), 1);
        // A late sample older than the whole retention window is discarded
        // outright rather than resurrecting already-pruned history.
        let c = key("node_load1", "node-c");
        store.append(Sample::gauge(c.clone(), 3.0, SimTime::from_secs(50)));
        assert_eq!(store.instant(&c, SimTime::MAX), None);
        assert!(store.range(&c, SimTime::ZERO, SimTime::MAX).is_empty());
        // The watermark never regressed.
        assert_eq!(store.max_timestamp(), SimTime::from_secs(100));
    }

    #[test]
    fn observe_time_advances_the_retention_watermark() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(30));
        let k = key("node_load1", "node-1");
        let id = store.intern(&k, MetricKind::Gauge);
        store.observe_time(SimTime::from_secs(100));
        assert_eq!(store.max_timestamp(), SimTime::from_secs(100));
        // Observing an older time never moves the watermark backwards.
        store.observe_time(SimTime::from_secs(10));
        assert_eq!(store.max_timestamp(), SimTime::from_secs(100));
        // Appends against the observed watermark prune as if the newest
        // sample lived in this store.
        store.append_value(id, 1.0, SimTime::from_secs(50));
        assert_eq!(store.instant(&k, SimTime::MAX), None);
        store.append_value(id, 2.0, SimTime::from_secs(80));
        assert_eq!(store.instant(&k, SimTime::MAX), Some(2.0));
        // A watermark that runs ahead of every stored sample survives a
        // serialization roundtrip (it cannot be rebuilt from the points).
        let back: TimeSeriesStore =
            serde_json::from_str(&serde_json::to_string(&store).unwrap()).unwrap();
        assert_eq!(back.max_timestamp(), SimTime::from_secs(100));
    }

    #[test]
    fn roundtrip_replays_archive_in_timestamp_order() {
        // Series a is fully caught up (t = 100); series b last saw t = 90.
        // Serialization lists a before b; a timestamp-ordered replay must
        // not let a's watermark wipe b's retained window.
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(30));
        let a = key("node_load1", "node-a");
        let b = key("node_load1", "node-b");
        for t in [40u64, 60, 80, 90] {
            store.append(Sample::gauge(b.clone(), t as f64, SimTime::from_secs(t)));
        }
        for t in [50u64, 100] {
            store.append(Sample::gauge(a.clone(), t as f64, SimTime::from_secs(t)));
        }
        let back: TimeSeriesStore =
            serde_json::from_str(&serde_json::to_string(&store).unwrap()).unwrap();
        assert_eq!(back.point_count(), store.point_count());
        assert_eq!(
            back.range(&b, SimTime::ZERO, SimTime::MAX),
            store.range(&b, SimTime::ZERO, SimTime::MAX)
        );
        assert_eq!(
            back.range(&a, SimTime::ZERO, SimTime::MAX),
            store.range(&a, SimTime::ZERO, SimTime::MAX)
        );
        assert_eq!(back.max_timestamp(), store.max_timestamp());
    }

    #[test]
    fn instant_by_name_collects_all_nodes() {
        let mut store = TimeSeriesStore::new();
        for node in ["node-1", "node-2", "node-3"] {
            store.append(Sample::gauge(
                key("node_load1", node),
                1.0,
                SimTime::from_secs(10),
            ));
        }
        store.append(Sample::gauge(
            key("other_metric", "node-1"),
            5.0,
            SimTime::from_secs(10),
        ));
        let got = store.instant_by_name("node_load1", SimTime::from_secs(20));
        assert_eq!(got.len(), 3);
        assert!(got
            .iter()
            .all(|&(id, v)| store.key(id).name == "node_load1" && v == 1.0));
        // The per-name bucket and the instant query agree.
        assert_eq!(store.ids_for_name("node_load1").len(), 3);
    }

    #[test]
    fn avg_over_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        for (t, v) in [(10u64, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)] {
            store.append(Sample::gauge(k.clone(), v, SimTime::from_secs(t)));
        }
        let avg = store
            .avg_over(&k, SimTime::from_secs(40), SimDuration::from_secs(20))
            .unwrap();
        assert!((avg - 3.0).abs() < 1e-9); // points at 20, 30, 40
        assert_eq!(
            store.avg_over(&k, SimTime::from_secs(5), SimDuration::from_secs(2)),
            None
        );
    }

    #[test]
    fn keys_iterates_sorted() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(key("b_metric", "node-1"), 1.0, SimTime::ZERO));
        store.append(Sample::gauge(key("a_metric", "node-1"), 1.0, SimTime::ZERO));
        let names: Vec<&str> = store.keys().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["a_metric", "b_metric"]);
    }

    #[test]
    fn json_roundtrip_rebuilds_intern_tables() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(300));
        for node in ["node-1", "node-2"] {
            for i in 0..5u64 {
                store.append(Sample::counter(
                    key("ctr", node),
                    (i * 100) as f64,
                    SimTime::from_secs(i * 10),
                ));
                store.append(Sample::gauge(
                    key("g", node),
                    i as f64,
                    SimTime::from_secs(i * 10),
                ));
            }
        }
        let json = serde_json::to_string(&store).unwrap();
        let back: TimeSeriesStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series_count(), store.series_count());
        assert_eq!(back.point_count(), store.point_count());
        let k = key("ctr", "node-1");
        let at = SimTime::from_secs(45);
        assert_eq!(back.instant(&k, at), store.instant(&k, at));
        assert_eq!(
            back.rate(&k, at, SimDuration::from_secs(60)),
            store.rate(&k, at, SimDuration::from_secs(60))
        );
        assert_eq!(back.kind(back.series_id(&k).unwrap()), MetricKind::Counter);
        assert_eq!(back.ids_for_name("g").len(), 2);
        // Malformed payloads are rejected rather than trusted.
        assert!(serde_json::from_str::<TimeSeriesStore>("{\"retention\":null}").is_err());
        assert!(serde_json::from_str::<TimeSeriesStore>("[]").is_err());
    }

    #[test]
    fn id_queries_match_key_queries() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(500));
        let k = key("ctr", "node-1");
        for i in 0..40u64 {
            store.append(Sample::counter(
                k.clone(),
                (i * i) as f64,
                SimTime::from_secs(i * 7),
            ));
        }
        let id = store.series_id(&k).unwrap();
        for t in [0u64, 35, 100, 273, 500] {
            let at = SimTime::from_secs(t);
            assert_eq!(store.instant(&k, at), store.instant_id(id, at));
            let w = SimDuration::from_secs(60);
            assert_eq!(store.rate(&k, at, w), store.rate_id(id, at, w));
            assert_eq!(store.avg_over(&k, at, w), store.avg_over_id(id, at, w));
            assert_eq!(
                store.range(&k, SimTime::from_secs(t / 2), at),
                store.range_id(id, SimTime::from_secs(t / 2), at)
            );
        }
    }
}
