//! Append-only time-series storage with Prometheus-flavoured queries.
//!
//! The store is the metrics server's hot read path: every scheduling decision
//! queries it, so its cost model matters. Two design points keep per-decision
//! work independent of retained history:
//!
//! * **Interned series identity.** Every [`SeriesKey`] is interned once into a
//!   small copyable [`SeriesId`] (its index in the store's key table). All
//!   queries have an `*_id` fast path that skips the key comparison entirely,
//!   and a per-metric-name index makes "all series of metric X"
//!   ([`TimeSeriesStore::ids_for_name`]) a direct bucket lookup instead of a
//!   full-keyspace scan.
//! * **Windowed queries without intermediate allocation.** `range`, `rate`
//!   and `avg_over` slice the time-ordered point vector with two
//!   `partition_point` binary searches and operate on the borrowed window —
//!   no `Vec` is built per query. [`TimeSeriesStore::range`] returns the
//!   borrowed slice directly; [`TimeSeriesStore::range_vec`] is the owning
//!   shim for serde-ish consumers that need a `Vec`.

use crate::metrics::{MetricKind, Sample, SeriesKey};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Interned series identity: a dense index into the store's key table.
///
/// `SeriesId`s are assigned in intern order and are stable for the lifetime
/// of the store (series are never removed). They are deliberately tiny and
/// `Copy` so exporters and snapshot assembly can address series without
/// touching `String`s — the same pattern as `cluster::NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesId(pub u32);

impl SeriesId {
    /// The id as a usize index into the store's series table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a table index.
    pub fn from_index(index: usize) -> Self {
        SeriesId(index as u32)
    }
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s#{}", self.0)
    }
}

/// One stored series: its kind and time-ordered points.
#[derive(Debug, Clone)]
struct Series {
    kind: MetricKind,
    points: Vec<(SimTime, f64)>,
}

/// The time-series database backing the metrics server.
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesStore {
    /// Series key per [`SeriesId`] (intern order).
    keys: Vec<SeriesKey>,
    /// Series data per [`SeriesId`].
    series: Vec<Series>,
    /// Key → id intern index (sorted; drives [`TimeSeriesStore::keys`]).
    key_index: BTreeMap<SeriesKey, u32>,
    /// Metric name → ids of all series with that name, in intern order.
    name_index: BTreeMap<String, Vec<SeriesId>>,
    retention: Option<SimDuration>,
}

impl TimeSeriesStore {
    /// Create an empty store with unlimited retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store that prunes points older than `retention` behind the
    /// latest appended timestamp.
    pub fn with_retention(retention: SimDuration) -> Self {
        TimeSeriesStore {
            retention: Some(retention),
            ..Self::default()
        }
    }

    /// Intern a series key, returning its stable [`SeriesId`]. The kind is
    /// fixed by the first intern; later interns of the same key return the
    /// existing id unchanged.
    pub fn intern(&mut self, key: &SeriesKey, kind: MetricKind) -> SeriesId {
        if let Some(&id) = self.key_index.get(key) {
            return SeriesId(id);
        }
        let id = SeriesId(self.keys.len() as u32);
        self.key_index.insert(key.clone(), id.0);
        self.name_index
            .entry(key.name.clone())
            .or_default()
            .push(id);
        self.keys.push(key.clone());
        self.series.push(Series {
            kind,
            points: Vec::new(),
        });
        id
    }

    /// Resolve a key to its interned id, if the series exists.
    pub fn series_id(&self, key: &SeriesKey) -> Option<SeriesId> {
        self.key_index.get(key).copied().map(SeriesId)
    }

    /// The key of an interned series.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this store.
    pub fn key(&self, id: SeriesId) -> &SeriesKey {
        &self.keys[id.index()]
    }

    /// The kind of an interned series.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this store.
    pub fn kind(&self, id: SeriesId) -> MetricKind {
        self.series[id.index()].kind
    }

    /// Ids of every series with the given metric name, in intern order.
    pub fn ids_for_name(&self, name: &str) -> &[SeriesId] {
        self.name_index.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Append one sample, interning its key. Prefer
    /// [`TimeSeriesStore::append_value`] with a pre-interned id on hot paths.
    pub fn append(&mut self, sample: Sample) {
        let id = self.intern(&sample.key, sample.kind);
        self.append_value(id, sample.value, sample.timestamp);
    }

    /// Append a value to a pre-interned series. Out-of-order samples (older
    /// than the series tail) and duplicate samples for the tail timestamp are
    /// dropped, mirroring Prometheus's "out of order sample" / "duplicate
    /// sample for timestamp" ingestion rules.
    pub fn append_value(&mut self, id: SeriesId, value: f64, timestamp: SimTime) {
        let series = &mut self.series[id.index()];
        if let Some(&(last_t, _)) = series.points.last() {
            if timestamp <= last_t {
                return;
            }
        }
        series.points.push((timestamp, value));
        if let Some(retention) = self.retention {
            let cutoff_nanos = timestamp.as_nanos().saturating_sub(retention.as_nanos());
            let cutoff = SimTime::from_nanos(cutoff_nanos);
            let keep_from = series.points.partition_point(|&(t, _)| t < cutoff);
            if keep_from > 0 {
                series.points.drain(..keep_from);
            }
        }
    }

    /// Append many samples.
    pub fn append_all(&mut self, samples: impl IntoIterator<Item = Sample>) {
        for s in samples {
            self.append(s);
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total number of stored points across all series.
    pub fn point_count(&self) -> usize {
        self.series.iter().map(|s| s.points.len()).sum()
    }

    /// Latest value of a series at or before `at`.
    pub fn instant(&self, key: &SeriesKey, at: SimTime) -> Option<f64> {
        self.instant_id(self.series_id(key)?, at)
    }

    /// Latest value of a pre-interned series at or before `at`.
    ///
    /// The common per-decision query asks for the freshest sample (`at` at or
    /// past the series tail) and is answered in O(1) from the tail; older
    /// instants fall back to a binary search.
    pub fn instant_id(&self, id: SeriesId, at: SimTime) -> Option<f64> {
        let points = &self.series[id.index()].points;
        match points.last() {
            None => None,
            Some(&(t, v)) if t <= at => Some(v),
            _ => {
                let idx = points.partition_point(|&(t, _)| t <= at);
                if idx == 0 {
                    None
                } else {
                    Some(points[idx - 1].1)
                }
            }
        }
    }

    /// All points of a series with timestamps in `[from, to]`, as a borrowed
    /// slice of the series storage (no allocation).
    pub fn range(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> &[(SimTime, f64)] {
        match self.series_id(key) {
            Some(id) => self.range_id(id, from, to),
            None => &[],
        }
    }

    /// Borrowed window `[from, to]` of a pre-interned series.
    ///
    /// Decision-path windows (rate lookbacks) end at the series tail and span
    /// a handful of points, so the bounds are found by a short backward walk
    /// from the tail — O(window), cache-local, independent of how much
    /// history retention keeps. Windows deeper in history fall back to
    /// `partition_point` binary searches.
    pub fn range_id(&self, id: SeriesId, from: SimTime, to: SimTime) -> &[(SimTime, f64)] {
        let points = &self.series[id.index()].points;
        let hi = match points.last() {
            Some(&(t, _)) if t > to => points.partition_point(|&(t, _)| t <= to),
            _ => points.len(),
        };
        let mut lo = hi;
        let mut steps = 0usize;
        while lo > 0 && points[lo - 1].0 >= from {
            lo -= 1;
            steps += 1;
            if steps > 32 {
                lo = points[..hi].partition_point(|&(t, _)| t < from);
                break;
            }
        }
        &points[lo..hi]
    }

    /// Owning variant of [`TimeSeriesStore::range`] for consumers that need a
    /// `Vec` (serde payloads, archival exports). Hot paths use the borrowed
    /// slice.
    pub fn range_vec(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        self.range(key, from, to).to_vec()
    }

    /// Prometheus-style `rate()`: the per-second increase of a counter over
    /// the window `[at - window, at]`. Returns `None` when fewer than two
    /// points fall in the window or the series is not a counter.
    pub fn rate(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        self.rate_id(self.series_id(key)?, at, window)
    }

    /// `rate()` over a pre-interned counter series.
    pub fn rate_id(&self, id: SeriesId, at: SimTime, window: SimDuration) -> Option<f64> {
        if self.series[id.index()].kind != MetricKind::Counter {
            return None;
        }
        let from_nanos = at.as_nanos().saturating_sub(window.as_nanos());
        let pts = self.range_id(id, SimTime::from_nanos(from_nanos), at);
        if pts.len() < 2 {
            return None;
        }
        let (t0, v0) = pts[0];
        let (t1, v1) = pts[pts.len() - 1];
        let dt = (t1 - t0).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        // Counters never decrease in our exporters; clamp defensively anyway.
        Some(((v1 - v0).max(0.0)) / dt)
    }

    /// Latest gauge value per matching series: every series with the given
    /// metric name (resolved through the per-name bucket index, not a
    /// full-keyspace scan), with its interned id. Resolve ids back to keys
    /// with [`TimeSeriesStore::key`] at the edges.
    pub fn instant_by_name(&self, name: &str, at: SimTime) -> Vec<(SeriesId, f64)> {
        self.ids_for_name(name)
            .iter()
            .filter_map(|&id| self.instant_id(id, at).map(|v| (id, v)))
            .collect()
    }

    /// Average of a series over `[at - window, at]` (gauges).
    pub fn avg_over(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        self.avg_over_id(self.series_id(key)?, at, window)
    }

    /// Average over a pre-interned series.
    pub fn avg_over_id(&self, id: SeriesId, at: SimTime, window: SimDuration) -> Option<f64> {
        let from_nanos = at.as_nanos().saturating_sub(window.as_nanos());
        let pts = self.range_id(id, SimTime::from_nanos(from_nanos), at);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64)
    }

    /// All series keys (sorted).
    pub fn keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.key_index.keys()
    }
}

/// One serialized series entry: key, kind and time-ordered points.
type SeriesEntry = (SeriesKey, MetricKind, Vec<(SimTime, f64)>);

/// The store serializes in a canonical form — retention plus a
/// `(key, kind, points)` list in intern order — and deserialization rebuilds
/// the intern tables (key table, key index, per-name buckets) and re-appends
/// every point through the ingestion rules, so an archive can never smuggle
/// in an inconsistent index layout: every internal invariant is
/// re-established by construction.
impl Serialize for TimeSeriesStore {
    fn serialize_value(&self) -> serde::Value {
        let series: Vec<SeriesEntry> = self
            .keys
            .iter()
            .zip(&self.series)
            .map(|(key, series)| (key.clone(), series.kind, series.points.clone()))
            .collect();
        serde::Value::Map(vec![
            (
                serde::Value::Str("retention".to_string()),
                self.retention.serialize_value(),
            ),
            (
                serde::Value::Str("series".to_string()),
                series.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for TimeSeriesStore {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for TimeSeriesStore"))?;
        let retention: Option<SimDuration> =
            Deserialize::deserialize_value(serde::get_field(map, "retention")?)?;
        let series: Vec<SeriesEntry> =
            Deserialize::deserialize_value(serde::get_field(map, "series")?)?;
        let mut store = match retention {
            Some(r) => TimeSeriesStore::with_retention(r),
            None => TimeSeriesStore::new(),
        };
        for (key, kind, points) in series {
            let id = store.intern(&key, kind);
            for (t, value) in points {
                store.append_value(id, value, t);
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, node: &str) -> SeriesKey {
        SeriesKey::per_node(name, node)
    }

    #[test]
    fn append_and_instant_query() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        store.append(Sample::gauge(k.clone(), 0.5, SimTime::from_secs(10)));
        store.append(Sample::gauge(k.clone(), 0.9, SimTime::from_secs(20)));
        assert_eq!(store.instant(&k, SimTime::from_secs(5)), None);
        assert_eq!(store.instant(&k, SimTime::from_secs(10)), Some(0.5));
        assert_eq!(store.instant(&k, SimTime::from_secs(15)), Some(0.5));
        assert_eq!(store.instant(&k, SimTime::from_secs(25)), Some(0.9));
        assert_eq!(store.series_count(), 1);
        assert_eq!(store.point_count(), 2);
        // Unknown series.
        assert_eq!(
            store.instant(&key("nope", "node-1"), SimTime::from_secs(30)),
            None
        );
    }

    #[test]
    fn interning_is_stable_and_resolvable() {
        let mut store = TimeSeriesStore::new();
        let a = store.intern(&key("m", "node-1"), MetricKind::Gauge);
        let b = store.intern(&key("m", "node-2"), MetricKind::Gauge);
        assert_ne!(a, b);
        // Re-interning returns the same id and does not change the kind.
        assert_eq!(store.intern(&key("m", "node-1"), MetricKind::Counter), a);
        assert_eq!(store.kind(a), MetricKind::Gauge);
        assert_eq!(store.series_id(&key("m", "node-1")), Some(a));
        assert_eq!(store.series_id(&key("m", "node-9")), None);
        assert_eq!(store.key(b), &key("m", "node-2"));
        assert_eq!(store.ids_for_name("m"), &[a, b]);
        assert!(store.ids_for_name("other").is_empty());
        assert_eq!(SeriesId::from_index(7).index(), 7);
        assert_eq!(format!("{}", SeriesId(4)), "s#4");
    }

    #[test]
    fn out_of_order_and_duplicate_samples_are_dropped() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        store.append(Sample::gauge(k.clone(), 1.0, SimTime::from_secs(10)));
        store.append(Sample::gauge(k.clone(), 2.0, SimTime::from_secs(5)));
        assert_eq!(store.point_count(), 1);
        assert_eq!(store.instant(&k, SimTime::from_secs(30)), Some(1.0));
        // A duplicate sample for the tail timestamp is dropped (Prometheus's
        // "duplicate sample for timestamp" rule): the first write wins and the
        // instant is not double-counted by windowed aggregations.
        store.append(Sample::gauge(k.clone(), 3.0, SimTime::from_secs(10)));
        assert_eq!(store.point_count(), 1);
        assert_eq!(store.instant(&k, SimTime::from_secs(30)), Some(1.0));
        assert_eq!(
            store.avg_over(&k, SimTime::from_secs(10), SimDuration::from_secs(10)),
            Some(1.0)
        );
    }

    #[test]
    fn range_query_filters_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-2");
        for i in 0..10u64 {
            store.append(Sample::gauge(
                k.clone(),
                i as f64,
                SimTime::from_secs(i * 10),
            ));
        }
        let pts = store.range(&k, SimTime::from_secs(25), SimTime::from_secs(55));
        assert_eq!(pts.len(), 3); // t = 30, 40, 50
        assert_eq!(pts[0].1, 3.0);
        assert_eq!(pts[2].1, 5.0);
        assert!(store
            .range(&key("x", "y"), SimTime::ZERO, SimTime::MAX)
            .is_empty());
        // The owning shim returns the same window.
        assert_eq!(
            store.range_vec(&k, SimTime::from_secs(25), SimTime::from_secs(55)),
            pts.to_vec()
        );
    }

    #[test]
    fn rate_over_counter_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_network_transmit_bytes_total", "node-1");
        // 1000 bytes/sec for 60 seconds, scraped every 15 s.
        for i in 0..=4u64 {
            store.append(Sample::counter(
                k.clone(),
                (i * 15_000) as f64,
                SimTime::from_secs(i * 15),
            ));
        }
        let rate = store
            .rate(&k, SimTime::from_secs(60), SimDuration::from_secs(30))
            .unwrap();
        assert!((rate - 1000.0).abs() < 1e-9);
        // Window too small for two samples.
        assert_eq!(
            store.rate(&k, SimTime::from_secs(60), SimDuration::from_secs(10)),
            None
        );
        // Gauges have no rate.
        let g = key("node_load1", "node-1");
        store.append(Sample::gauge(g.clone(), 1.0, SimTime::from_secs(0)));
        store.append(Sample::gauge(g.clone(), 2.0, SimTime::from_secs(30)));
        assert_eq!(
            store.rate(&g, SimTime::from_secs(60), SimDuration::from_secs(60)),
            None
        );
    }

    #[test]
    fn rate_clamps_counter_resets() {
        let mut store = TimeSeriesStore::new();
        let k = key("ctr", "node-1");
        store.append(Sample::counter(k.clone(), 1000.0, SimTime::from_secs(0)));
        store.append(Sample::counter(k.clone(), 10.0, SimTime::from_secs(10)));
        let r = store
            .rate(&k, SimTime::from_secs(10), SimDuration::from_secs(20))
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn retention_prunes_old_points() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(30));
        let k = key("node_load1", "node-1");
        for i in 0..10u64 {
            store.append(Sample::gauge(
                k.clone(),
                i as f64,
                SimTime::from_secs(i * 10),
            ));
        }
        // Last timestamp is 90 s; retention 30 s keeps points at >= 60 s.
        assert_eq!(store.point_count(), 4);
        assert_eq!(store.instant(&k, SimTime::from_secs(55)), None);
        assert_eq!(store.instant(&k, SimTime::from_secs(95)), Some(9.0));
    }

    #[test]
    fn instant_by_name_collects_all_nodes() {
        let mut store = TimeSeriesStore::new();
        for node in ["node-1", "node-2", "node-3"] {
            store.append(Sample::gauge(
                key("node_load1", node),
                1.0,
                SimTime::from_secs(10),
            ));
        }
        store.append(Sample::gauge(
            key("other_metric", "node-1"),
            5.0,
            SimTime::from_secs(10),
        ));
        let got = store.instant_by_name("node_load1", SimTime::from_secs(20));
        assert_eq!(got.len(), 3);
        assert!(got
            .iter()
            .all(|&(id, v)| store.key(id).name == "node_load1" && v == 1.0));
        // The per-name bucket and the instant query agree.
        assert_eq!(store.ids_for_name("node_load1").len(), 3);
    }

    #[test]
    fn avg_over_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        for (t, v) in [(10u64, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)] {
            store.append(Sample::gauge(k.clone(), v, SimTime::from_secs(t)));
        }
        let avg = store
            .avg_over(&k, SimTime::from_secs(40), SimDuration::from_secs(20))
            .unwrap();
        assert!((avg - 3.0).abs() < 1e-9); // points at 20, 30, 40
        assert_eq!(
            store.avg_over(&k, SimTime::from_secs(5), SimDuration::from_secs(2)),
            None
        );
    }

    #[test]
    fn keys_iterates_sorted() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(key("b_metric", "node-1"), 1.0, SimTime::ZERO));
        store.append(Sample::gauge(key("a_metric", "node-1"), 1.0, SimTime::ZERO));
        let names: Vec<&str> = store.keys().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["a_metric", "b_metric"]);
    }

    #[test]
    fn json_roundtrip_rebuilds_intern_tables() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(300));
        for node in ["node-1", "node-2"] {
            for i in 0..5u64 {
                store.append(Sample::counter(
                    key("ctr", node),
                    (i * 100) as f64,
                    SimTime::from_secs(i * 10),
                ));
                store.append(Sample::gauge(
                    key("g", node),
                    i as f64,
                    SimTime::from_secs(i * 10),
                ));
            }
        }
        let json = serde_json::to_string(&store).unwrap();
        let back: TimeSeriesStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.series_count(), store.series_count());
        assert_eq!(back.point_count(), store.point_count());
        let k = key("ctr", "node-1");
        let at = SimTime::from_secs(45);
        assert_eq!(back.instant(&k, at), store.instant(&k, at));
        assert_eq!(
            back.rate(&k, at, SimDuration::from_secs(60)),
            store.rate(&k, at, SimDuration::from_secs(60))
        );
        assert_eq!(back.kind(back.series_id(&k).unwrap()), MetricKind::Counter);
        assert_eq!(back.ids_for_name("g").len(), 2);
        // Malformed payloads are rejected rather than trusted.
        assert!(serde_json::from_str::<TimeSeriesStore>("{\"retention\":null}").is_err());
        assert!(serde_json::from_str::<TimeSeriesStore>("[]").is_err());
    }

    #[test]
    fn id_queries_match_key_queries() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(500));
        let k = key("ctr", "node-1");
        for i in 0..40u64 {
            store.append(Sample::counter(
                k.clone(),
                (i * i) as f64,
                SimTime::from_secs(i * 7),
            ));
        }
        let id = store.series_id(&k).unwrap();
        for t in [0u64, 35, 100, 273, 500] {
            let at = SimTime::from_secs(t);
            assert_eq!(store.instant(&k, at), store.instant_id(id, at));
            let w = SimDuration::from_secs(60);
            assert_eq!(store.rate(&k, at, w), store.rate_id(id, at, w));
            assert_eq!(store.avg_over(&k, at, w), store.avg_over_id(id, at, w));
            assert_eq!(
                store.range(&k, SimTime::from_secs(t / 2), at),
                store.range_id(id, SimTime::from_secs(t / 2), at)
            );
        }
    }
}
