//! Append-only time-series storage with Prometheus-flavoured queries.

use crate::metrics::{MetricKind, Sample, SeriesKey};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One stored series: its kind and time-ordered points.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Series {
    kind: MetricKind,
    points: Vec<(SimTime, f64)>,
}

/// The time-series database backing the metrics server.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeriesStore {
    series: BTreeMap<SeriesKey, Series>,
    retention: Option<SimDuration>,
}

impl TimeSeriesStore {
    /// Create an empty store with unlimited retention.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a store that prunes points older than `retention` behind the
    /// latest appended timestamp.
    pub fn with_retention(retention: SimDuration) -> Self {
        TimeSeriesStore {
            series: BTreeMap::new(),
            retention: Some(retention),
        }
    }

    /// Append one sample. Out-of-order samples (older than the series tail)
    /// are dropped, mirroring Prometheus behaviour.
    pub fn append(&mut self, sample: Sample) {
        let series = self
            .series
            .entry(sample.key.clone())
            .or_insert_with(|| Series {
                kind: sample.kind,
                points: Vec::new(),
            });
        if let Some(&(last_t, _)) = series.points.last() {
            if sample.timestamp < last_t {
                return;
            }
        }
        series.points.push((sample.timestamp, sample.value));
        if let Some(retention) = self.retention {
            let cutoff_nanos = sample
                .timestamp
                .as_nanos()
                .saturating_sub(retention.as_nanos());
            let cutoff = SimTime::from_nanos(cutoff_nanos);
            let keep_from = series.points.partition_point(|&(t, _)| t < cutoff);
            if keep_from > 0 {
                series.points.drain(..keep_from);
            }
        }
    }

    /// Append many samples.
    pub fn append_all(&mut self, samples: impl IntoIterator<Item = Sample>) {
        for s in samples {
            self.append(s);
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total number of stored points across all series.
    pub fn point_count(&self) -> usize {
        self.series.values().map(|s| s.points.len()).sum()
    }

    /// Latest value of a series at or before `at`.
    pub fn instant(&self, key: &SeriesKey, at: SimTime) -> Option<f64> {
        let series = self.series.get(key)?;
        let idx = series.points.partition_point(|&(t, _)| t <= at);
        if idx == 0 {
            None
        } else {
            Some(series.points[idx - 1].1)
        }
    }

    /// All points of a series with timestamps in `[from, to]`.
    pub fn range(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        let Some(series) = self.series.get(key) else {
            return Vec::new();
        };
        series
            .points
            .iter()
            .copied()
            .filter(|&(t, _)| t >= from && t <= to)
            .collect()
    }

    /// Prometheus-style `rate()`: the per-second increase of a counter over
    /// the window `[at - window, at]`. Returns `None` when fewer than two
    /// points fall in the window or the series is not a counter.
    pub fn rate(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        let series = self.series.get(key)?;
        if series.kind != MetricKind::Counter {
            return None;
        }
        let from_nanos = at.as_nanos().saturating_sub(window.as_nanos());
        let from = SimTime::from_nanos(from_nanos);
        let pts: Vec<(SimTime, f64)> = series
            .points
            .iter()
            .copied()
            .filter(|&(t, _)| t >= from && t <= at)
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let (t0, v0) = pts[0];
        let (t1, v1) = pts[pts.len() - 1];
        let dt = (t1 - t0).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        // Counters never decrease in our exporters; clamp defensively anyway.
        Some(((v1 - v0).max(0.0)) / dt)
    }

    /// Latest gauge value per matching series: every series with the given
    /// metric name, returned with its label set.
    pub fn instant_by_name(&self, name: &str, at: SimTime) -> Vec<(SeriesKey, f64)> {
        self.series
            .keys()
            .filter(|k| k.name == name)
            .filter_map(|k| self.instant(k, at).map(|v| (k.clone(), v)))
            .collect()
    }

    /// Average of a series over `[at - window, at]` (gauges).
    pub fn avg_over(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        let from_nanos = at.as_nanos().saturating_sub(window.as_nanos());
        let pts = self.range(key, SimTime::from_nanos(from_nanos), at);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64)
    }

    /// All series keys (sorted).
    pub fn keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.series.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, node: &str) -> SeriesKey {
        SeriesKey::per_node(name, node)
    }

    #[test]
    fn append_and_instant_query() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        store.append(Sample::gauge(k.clone(), 0.5, SimTime::from_secs(10)));
        store.append(Sample::gauge(k.clone(), 0.9, SimTime::from_secs(20)));
        assert_eq!(store.instant(&k, SimTime::from_secs(5)), None);
        assert_eq!(store.instant(&k, SimTime::from_secs(10)), Some(0.5));
        assert_eq!(store.instant(&k, SimTime::from_secs(15)), Some(0.5));
        assert_eq!(store.instant(&k, SimTime::from_secs(25)), Some(0.9));
        assert_eq!(store.series_count(), 1);
        assert_eq!(store.point_count(), 2);
        // Unknown series.
        assert_eq!(
            store.instant(&key("nope", "node-1"), SimTime::from_secs(30)),
            None
        );
    }

    #[test]
    fn out_of_order_samples_are_dropped() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        store.append(Sample::gauge(k.clone(), 1.0, SimTime::from_secs(10)));
        store.append(Sample::gauge(k.clone(), 2.0, SimTime::from_secs(5)));
        assert_eq!(store.point_count(), 1);
        assert_eq!(store.instant(&k, SimTime::from_secs(30)), Some(1.0));
        // Equal timestamps are accepted (last write wins on query order).
        store.append(Sample::gauge(k.clone(), 3.0, SimTime::from_secs(10)));
        assert_eq!(store.point_count(), 2);
    }

    #[test]
    fn range_query_filters_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-2");
        for i in 0..10u64 {
            store.append(Sample::gauge(
                k.clone(),
                i as f64,
                SimTime::from_secs(i * 10),
            ));
        }
        let pts = store.range(&k, SimTime::from_secs(25), SimTime::from_secs(55));
        assert_eq!(pts.len(), 3); // t = 30, 40, 50
        assert_eq!(pts[0].1, 3.0);
        assert_eq!(pts[2].1, 5.0);
        assert!(store
            .range(&key("x", "y"), SimTime::ZERO, SimTime::MAX)
            .is_empty());
    }

    #[test]
    fn rate_over_counter_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_network_transmit_bytes_total", "node-1");
        // 1000 bytes/sec for 60 seconds, scraped every 15 s.
        for i in 0..=4u64 {
            store.append(Sample::counter(
                k.clone(),
                (i * 15_000) as f64,
                SimTime::from_secs(i * 15),
            ));
        }
        let rate = store
            .rate(&k, SimTime::from_secs(60), SimDuration::from_secs(30))
            .unwrap();
        assert!((rate - 1000.0).abs() < 1e-9);
        // Window too small for two samples.
        assert_eq!(
            store.rate(&k, SimTime::from_secs(60), SimDuration::from_secs(10)),
            None
        );
        // Gauges have no rate.
        let g = key("node_load1", "node-1");
        store.append(Sample::gauge(g.clone(), 1.0, SimTime::from_secs(0)));
        store.append(Sample::gauge(g.clone(), 2.0, SimTime::from_secs(30)));
        assert_eq!(
            store.rate(&g, SimTime::from_secs(60), SimDuration::from_secs(60)),
            None
        );
    }

    #[test]
    fn rate_clamps_counter_resets() {
        let mut store = TimeSeriesStore::new();
        let k = key("ctr", "node-1");
        store.append(Sample::counter(k.clone(), 1000.0, SimTime::from_secs(0)));
        store.append(Sample::counter(k.clone(), 10.0, SimTime::from_secs(10)));
        let r = store
            .rate(&k, SimTime::from_secs(10), SimDuration::from_secs(20))
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn retention_prunes_old_points() {
        let mut store = TimeSeriesStore::with_retention(SimDuration::from_secs(30));
        let k = key("node_load1", "node-1");
        for i in 0..10u64 {
            store.append(Sample::gauge(
                k.clone(),
                i as f64,
                SimTime::from_secs(i * 10),
            ));
        }
        // Last timestamp is 90 s; retention 30 s keeps points at >= 60 s.
        assert_eq!(store.point_count(), 4);
        assert_eq!(store.instant(&k, SimTime::from_secs(55)), None);
        assert_eq!(store.instant(&k, SimTime::from_secs(95)), Some(9.0));
    }

    #[test]
    fn instant_by_name_collects_all_nodes() {
        let mut store = TimeSeriesStore::new();
        for node in ["node-1", "node-2", "node-3"] {
            store.append(Sample::gauge(
                key("node_load1", node),
                1.0,
                SimTime::from_secs(10),
            ));
        }
        store.append(Sample::gauge(
            key("other_metric", "node-1"),
            5.0,
            SimTime::from_secs(10),
        ));
        let got = store.instant_by_name("node_load1", SimTime::from_secs(20));
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(k, v)| k.name == "node_load1" && *v == 1.0));
    }

    #[test]
    fn avg_over_window() {
        let mut store = TimeSeriesStore::new();
        let k = key("node_load1", "node-1");
        for (t, v) in [(10u64, 1.0), (20, 2.0), (30, 3.0), (40, 4.0)] {
            store.append(Sample::gauge(k.clone(), v, SimTime::from_secs(t)));
        }
        let avg = store
            .avg_over(&k, SimTime::from_secs(40), SimDuration::from_secs(20))
            .unwrap();
        assert!((avg - 3.0).abs() < 1e-9); // points at 20, 30, 40
        assert_eq!(
            store.avg_over(&k, SimTime::from_secs(5), SimDuration::from_secs(2)),
            None
        );
    }

    #[test]
    fn keys_iterates_sorted() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(key("b_metric", "node-1"), 1.0, SimTime::ZERO));
        store.append(Sample::gauge(key("a_metric", "node-1"), 1.0, SimTime::ZERO));
        let names: Vec<&str> = store.keys().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["a_metric", "b_metric"]);
    }
}
