//! The telemetry snapshot consumed by the scheduler.
//!
//! The paper's Telemetry Fetcher *"queries the Prometheus metrics server at
//! scheduling time to retrieve the most recent telemetry snapshot. It fetches
//! inter-node RTTs from the ping mesh, as well as per-node metrics such as CPU
//! and memory load."* [`ClusterSnapshot::from_store`] performs exactly that
//! query against the [`TimeSeriesStore`], deriving tx/rx *rates* from the
//! cumulative byte counters over the configured rate window.

use crate::metrics::SeriesKey;
use crate::store::TimeSeriesStore;
use crate::{
    METRIC_NODE_LOAD1, METRIC_NODE_MEM_AVAILABLE, METRIC_NODE_RX_BYTES, METRIC_NODE_TX_BYTES,
    METRIC_PING_RTT,
};
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Host-level telemetry for one node at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// 1-minute load average (runnable processes).
    pub cpu_load: f64,
    /// Available memory in bytes.
    pub memory_available_bytes: f64,
    /// Transmit throughput in bytes/sec (derived via `rate()`).
    pub tx_rate: f64,
    /// Receive throughput in bytes/sec (derived via `rate()`).
    pub rx_rate: f64,
}

/// The pairwise RTT mesh in seconds, keyed by `(source, target)` node names.
pub type RttMesh = BTreeMap<(String, String), f64>;

/// A point-in-time view of the whole cluster, as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Snapshot timestamp.
    pub time: SimTime,
    /// Per-node host telemetry, keyed by node name.
    pub nodes: BTreeMap<String, NodeTelemetry>,
    /// Pairwise RTT measurements.
    pub rtt: RttMesh,
}

impl ClusterSnapshot {
    /// Assemble a snapshot from the store at time `at`.
    ///
    /// `rate_window` controls the lookback used to turn tx/rx byte counters
    /// into rates; when fewer than two counter samples exist in the window
    /// the rate is reported as 0 (cold start).
    pub fn from_store(store: &TimeSeriesStore, at: SimTime, rate_window: SimDuration) -> Self {
        let mut nodes: BTreeMap<String, NodeTelemetry> = BTreeMap::new();

        for (key, value) in store.instant_by_name(METRIC_NODE_LOAD1, at) {
            if let Some(instance) = key.label("instance") {
                nodes.entry(instance.to_string()).or_default().cpu_load = value;
            }
        }
        for (key, value) in store.instant_by_name(METRIC_NODE_MEM_AVAILABLE, at) {
            if let Some(instance) = key.label("instance") {
                nodes
                    .entry(instance.to_string())
                    .or_default()
                    .memory_available_bytes = value;
            }
        }
        let node_names: Vec<String> = nodes.keys().cloned().collect();
        for name in &node_names {
            let tx_key = SeriesKey::per_node(METRIC_NODE_TX_BYTES, name);
            let rx_key = SeriesKey::per_node(METRIC_NODE_RX_BYTES, name);
            let entry = nodes.get_mut(name).expect("inserted above");
            entry.tx_rate = store.rate(&tx_key, at, rate_window).unwrap_or(0.0);
            entry.rx_rate = store.rate(&rx_key, at, rate_window).unwrap_or(0.0);
        }

        let mut rtt: RttMesh = BTreeMap::new();
        for (key, value) in store.instant_by_name(METRIC_PING_RTT, at) {
            if let (Some(src), Some(dst)) = (key.label("source"), key.label("target")) {
                rtt.insert((src.to_string(), dst.to_string()), value);
            }
        }

        ClusterSnapshot {
            time: at,
            nodes,
            rtt,
        }
    }

    /// Telemetry for one node.
    pub fn node(&self, name: &str) -> Option<&NodeTelemetry> {
        self.nodes.get(name)
    }

    /// Node names present in the snapshot.
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }

    /// RTT from `source` to `target` in seconds, if probed.
    pub fn rtt_between(&self, source: &str, target: &str) -> Option<f64> {
        self.rtt
            .get(&(source.to_string(), target.to_string()))
            .copied()
    }

    /// All RTTs observed *from* `source` to its peers.
    pub fn rtts_from(&self, source: &str) -> Vec<f64> {
        self.rtt
            .iter()
            .filter(|((s, _), _)| s == source)
            .map(|(_, &v)| v)
            .collect()
    }

    /// Summary statistics (mean, max, std-dev) of the RTTs from `source` —
    /// exactly the three RTT features in Table 1 of the paper.
    pub fn rtt_stats_from(&self, source: &str) -> (f64, f64, f64) {
        let rtts = self.rtts_from(source);
        if rtts.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut stats = simcore::OnlineStats::new();
        for r in &rtts {
            stats.push(*r);
        }
        (stats.mean(), stats.max(), stats.std_dev())
    }

    /// True when the snapshot has no data at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Resolve this name-keyed snapshot against a cluster's node intern table
    /// into a dense, [`cluster::NodeId`]-indexed view.
    ///
    /// This is the scheduler's burst-time amortization point: per-node
    /// telemetry lookups become array indexing and the RTT mesh is scanned
    /// exactly once (instead of once per candidate per decision) to
    /// precompute the Table-1 RTT statistics for every node.
    pub fn index_for(&self, cluster: &cluster::ClusterState) -> IndexedTelemetry {
        let n = cluster.node_count();
        let nodes: Vec<Option<NodeTelemetry>> = cluster
            .nodes()
            .iter()
            .map(|node| self.nodes.get(&node.name).copied())
            .collect();

        let mut stats: Vec<simcore::OnlineStats> = vec![simcore::OnlineStats::new(); n];
        for ((source, _target), &rtt) in &self.rtt {
            if let Some(id) = cluster.node_id(source) {
                stats[id.index()].push(rtt);
            }
        }
        let rtt_stats = stats
            .into_iter()
            .map(|s| {
                if s.count() == 0 {
                    (0.0, 0.0, 0.0)
                } else {
                    (s.mean(), s.max(), s.std_dev())
                }
            })
            .collect();

        IndexedTelemetry { nodes, rtt_stats }
    }
}

/// A dense, [`cluster::NodeId`]-indexed resolution of a [`ClusterSnapshot`]
/// against one cluster's node table. Built once per scheduling burst by
/// [`ClusterSnapshot::index_for`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexedTelemetry {
    /// Host telemetry per node id; `None` when the node was not scraped.
    nodes: Vec<Option<NodeTelemetry>>,
    /// Precomputed (mean, max, std-dev) RTT-from-node statistics per node id.
    rtt_stats: Vec<(f64, f64, f64)>,
}

impl IndexedTelemetry {
    /// Telemetry for a node, `None` when the node was absent from the scrape.
    pub fn node(&self, id: cluster::NodeId) -> Option<&NodeTelemetry> {
        self.nodes.get(id.index()).and_then(|t| t.as_ref())
    }

    /// The Table-1 RTT statistics (mean, max, std-dev) from a node to its
    /// peers; all zeros when the node has no probes.
    pub fn rtt_stats(&self, id: cluster::NodeId) -> (f64, f64, f64) {
        self.rtt_stats
            .get(id.index())
            .copied()
            .unwrap_or((0.0, 0.0, 0.0))
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are indexed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Sample;

    fn build_store() -> TimeSeriesStore {
        let mut store = TimeSeriesStore::new();
        let t0 = SimTime::from_secs(0);
        let t1 = SimTime::from_secs(30);
        for node in ["node-1", "node-2"] {
            store.append(Sample::gauge(
                SeriesKey::per_node(METRIC_NODE_LOAD1, node),
                1.5,
                t1,
            ));
            store.append(Sample::gauge(
                SeriesKey::per_node(METRIC_NODE_MEM_AVAILABLE, node),
                6e9,
                t1,
            ));
            // 2 MB/s tx, 1 MB/s rx over 30 s.
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_TX_BYTES, node),
                0.0,
                t0,
            ));
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_TX_BYTES, node),
                60e6,
                t1,
            ));
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_RX_BYTES, node),
                0.0,
                t0,
            ));
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_RX_BYTES, node),
                30e6,
                t1,
            ));
        }
        store.append(Sample::gauge(
            SeriesKey::new(
                METRIC_PING_RTT,
                &[("source", "node-1"), ("target", "node-2")],
            ),
            0.066,
            t1,
        ));
        store.append(Sample::gauge(
            SeriesKey::new(
                METRIC_PING_RTT,
                &[("source", "node-2"), ("target", "node-1")],
            ),
            0.067,
            t1,
        ));
        store
    }

    #[test]
    fn snapshot_assembles_all_signals() {
        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        assert!(!snap.is_empty());
        assert_eq!(snap.node_names(), vec!["node-1", "node-2"]);
        let n1 = snap.node("node-1").unwrap();
        assert_eq!(n1.cpu_load, 1.5);
        assert_eq!(n1.memory_available_bytes, 6e9);
        assert!((n1.tx_rate - 2e6).abs() < 1.0);
        assert!((n1.rx_rate - 1e6).abs() < 1.0);
        assert_eq!(snap.rtt_between("node-1", "node-2"), Some(0.066));
        assert_eq!(snap.rtt_between("node-2", "node-1"), Some(0.067));
        assert_eq!(snap.rtt_between("node-1", "node-9"), None);
        assert!(snap.node("node-9").is_none());
    }

    #[test]
    fn rates_default_to_zero_without_history() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_LOAD1, "node-1"),
            0.5,
            SimTime::from_secs(10),
        ));
        // Only one counter point: no rate can be derived.
        store.append(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, "node-1"),
            1000.0,
            SimTime::from_secs(10),
        ));
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(12), SimDuration::from_secs(30));
        let n = snap.node("node-1").unwrap();
        assert_eq!(n.tx_rate, 0.0);
        assert_eq!(n.rx_rate, 0.0);
        assert_eq!(n.cpu_load, 0.5);
    }

    #[test]
    fn rtt_stats_match_table1_semantics() {
        let mut store = build_store();
        store.append(Sample::gauge(
            SeriesKey::new(
                METRIC_PING_RTT,
                &[("source", "node-1"), ("target", "node-3")],
            ),
            0.010,
            SimTime::from_secs(30),
        ));
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let rtts = snap.rtts_from("node-1");
        assert_eq!(rtts.len(), 2);
        let (mean, max, std) = snap.rtt_stats_from("node-1");
        assert!((mean - 0.038).abs() < 1e-9);
        assert_eq!(max, 0.066);
        assert!(std > 0.0);
        assert_eq!(snap.rtt_stats_from("node-99"), (0.0, 0.0, 0.0));
    }

    #[test]
    fn indexed_view_matches_name_keyed_lookups() {
        use cluster::{Node, Resources};

        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let mut c = cluster::ClusterState::new();
        // node-3 exists in the cluster but was never scraped.
        for (i, name) in ["node-1", "node-2", "node-3"].iter().enumerate() {
            c.add_node(Node::new(
                *name,
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        let indexed = snap.index_for(&c);
        assert_eq!(indexed.len(), 3);
        assert!(!indexed.is_empty());
        for name in ["node-1", "node-2"] {
            let id = c.node_id(name).unwrap();
            assert_eq!(indexed.node(id), snap.node(name));
            let (mean, max, std) = indexed.rtt_stats(id);
            let (m2, x2, s2) = snap.rtt_stats_from(name);
            assert_eq!((mean, max, std), (m2, x2, s2));
        }
        let unscraped = c.node_id("node-3").unwrap();
        assert_eq!(indexed.node(unscraped), None);
        assert_eq!(indexed.rtt_stats(unscraped), (0.0, 0.0, 0.0));
        // Out-of-table ids degrade gracefully.
        assert_eq!(indexed.node(cluster::NodeId(99)), None);
        assert_eq!(indexed.rtt_stats(cluster::NodeId(99)), (0.0, 0.0, 0.0));
    }

    #[test]
    fn empty_store_yields_empty_snapshot() {
        let store = TimeSeriesStore::new();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(1), SimDuration::from_secs(30));
        assert!(snap.is_empty());
        assert!(snap.node_names().is_empty());
        assert!(snap.rtts_from("node-1").is_empty());
    }
}
