//! The telemetry snapshot consumed by the scheduler.
//!
//! The paper's Telemetry Fetcher *"queries the Prometheus metrics server at
//! scheduling time to retrieve the most recent telemetry snapshot. It fetches
//! inter-node RTTs from the ping mesh, as well as per-node metrics such as CPU
//! and memory load."* [`ClusterSnapshot::from_store`] performs exactly that
//! query against the [`TimeSeriesStore`], deriving tx/rx *rates* from the
//! cumulative byte counters over the configured rate window.
//!
//! Snapshots are **id-indexed**: node telemetry lives in a dense table and the
//! RTT mesh ([`RttMesh`]) is keyed by `(NodeId, NodeId)` pairs, mirroring the
//! cluster's node interning. Names are resolved only at the edges (reports,
//! figures, tests); the scrape→store→snapshot→features path never round-trips
//! through `String`. A snapshot produced by the scrape manager's interned
//! layout uses the cluster's own `NodeId` assignment; hand-built snapshots
//! intern names in insertion order.

use crate::metrics::SeriesKey;
use crate::store::TimeSeriesStore;
use crate::{
    METRIC_NODE_LOAD1, METRIC_NODE_MEM_AVAILABLE, METRIC_NODE_RX_BYTES, METRIC_NODE_TX_BYTES,
    METRIC_PING_RTT,
};
use cluster::NodeId;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// Host-level telemetry for one node at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeTelemetry {
    /// 1-minute load average (runnable processes).
    pub cpu_load: f64,
    /// Available memory in bytes.
    pub memory_available_bytes: f64,
    /// Transmit throughput in bytes/sec (derived via `rate()`).
    pub tx_rate: f64,
    /// Receive throughput in bytes/sec (derived via `rate()`).
    pub rx_rate: f64,
}

/// Node count up to which the mesh stores a dense `n × n` matrix. The paper's
/// worlds (6–64 nodes, fully probed by the ping mesh) stay dense, keeping
/// every existing access pattern — and its floating-point accumulation order —
/// byte-for-byte unchanged. Past this limit a dense matrix is quadratic
/// memory (10k nodes ≈ 1.6 GB of `Option<f64>`), while the 1k–10k scale
/// worlds only probe a sampled peer set, so the mesh switches to a sorted
/// sparse map keyed `(source, target)`.
const DENSE_NODE_LIMIT: usize = 512;

/// Storage behind [`RttMesh`]: dense matrix at paper scale, sorted sparse map
/// at 1k–10k scale. The representation is a pure function of the current
/// dimension (`n <= DENSE_NODE_LIMIT` ⟺ dense), so equality can compare
/// like-for-like.
#[derive(Debug, Clone, PartialEq)]
enum MeshRepr {
    /// Row-major `n × n` values; `None` = pair not probed.
    Dense(Vec<Option<f64>>),
    /// Probed pairs keyed `(source, target)`; the `BTreeMap`'s lexicographic
    /// key order **is** row-major order, so iteration matches the dense form.
    Sparse(std::collections::BTreeMap<(u32, u32), f64>),
}

impl Default for MeshRepr {
    fn default() -> Self {
        MeshRepr::Dense(Vec::new())
    }
}

/// Iterator over all probed `(source, target, rtt)` entries, row-major.
enum MeshIter<'a> {
    Dense {
        values: std::iter::Enumerate<std::slice::Iter<'a, Option<f64>>>,
        n: usize,
    },
    Sparse(std::collections::btree_map::Iter<'a, (u32, u32), f64>),
}

impl Iterator for MeshIter<'_> {
    type Item = (NodeId, NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            MeshIter::Dense { values, n } => {
                for (i, v) in values.by_ref() {
                    if let Some(rtt) = v {
                        return Some((NodeId((i / *n) as u32), NodeId((i % *n) as u32), *rtt));
                    }
                }
                None
            }
            MeshIter::Sparse(iter) => iter.next().map(|(&(s, t), &v)| (NodeId(s), NodeId(t), v)),
        }
    }
}

/// Iterator over one source row's probed `(target, rtt)` entries, in
/// ascending target-id order.
enum RowIter<'a> {
    Dense(std::iter::Enumerate<std::slice::Iter<'a, Option<f64>>>),
    Sparse(std::collections::btree_map::Range<'a, (u32, u32), f64>),
}

impl Iterator for RowIter<'_> {
    type Item = (NodeId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            RowIter::Dense(values) => {
                for (t, v) in values.by_ref() {
                    if let Some(rtt) = v {
                        return Some((NodeId(t as u32), *rtt));
                    }
                }
                None
            }
            RowIter::Sparse(range) => range.next().map(|(&(_, t), &v)| (NodeId(t), v)),
        }
    }
}

/// The pairwise RTT mesh in seconds, keyed by `(source, target)` [`NodeId`]
/// pairs: a dense matrix over the snapshot's node table at paper scale
/// (reusable across fetches without reallocation), a sorted sparse map past
/// [`DENSE_NODE_LIMIT`] nodes where full meshes are neither probed nor
/// affordable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RttMesh {
    /// Matrix dimension (number of interned nodes).
    n: u32,
    /// Dense or sparse values, per [`MeshRepr`].
    repr: MeshRepr,
    /// Number of present entries.
    count: u32,
}

impl RttMesh {
    /// Grow the mesh to hold at least `n` nodes, preserving entries and
    /// migrating dense → sparse when `n` crosses [`DENSE_NODE_LIMIT`].
    fn ensure_nodes(&mut self, n: usize) {
        let old = self.n as usize;
        if n <= old {
            return;
        }
        match &mut self.repr {
            MeshRepr::Sparse(_) => {
                // Sparse keys are dimension-independent; nothing to move.
            }
            MeshRepr::Dense(values) if n <= DENSE_NODE_LIMIT => {
                if old == 0 {
                    // Fresh layout: reuse the existing buffer's capacity.
                    values.clear();
                    values.resize(n * n, None);
                } else {
                    let mut grown = vec![None; n * n];
                    for s in 0..old {
                        for t in 0..old {
                            grown[s * n + t] = values[s * old + t];
                        }
                    }
                    *values = grown;
                }
            }
            MeshRepr::Dense(values) => {
                let mut map = std::collections::BTreeMap::new();
                for s in 0..old {
                    for t in 0..old {
                        if let Some(v) = values[s * old + t] {
                            map.insert((s as u32, t as u32), v);
                        }
                    }
                }
                self.repr = MeshRepr::Sparse(map);
            }
        }
        self.n = n as u32;
    }

    /// Reset all entries to "not probed" without shrinking the mesh.
    fn clear_values(&mut self) {
        match &mut self.repr {
            MeshRepr::Dense(values) => values.iter_mut().for_each(|v| *v = None),
            MeshRepr::Sparse(map) => map.clear(),
        }
        self.count = 0;
    }

    /// Empty the mesh (dimension back to zero) keeping the dense buffer's
    /// allocation for the next layout.
    fn reset(&mut self) {
        self.n = 0;
        self.count = 0;
        match &mut self.repr {
            MeshRepr::Dense(values) => values.clear(),
            // An empty mesh is below the dense limit by definition; restore
            // the representation invariant.
            repr @ MeshRepr::Sparse(_) => *repr = MeshRepr::default(),
        }
    }

    /// True while the mesh stores the dense matrix (paper-scale worlds).
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, MeshRepr::Dense(_))
    }

    /// Record the RTT from `src` to `dst`, growing the mesh if needed.
    pub fn set(&mut self, src: NodeId, dst: NodeId, rtt_seconds: f64) {
        let need = src.index().max(dst.index()) + 1;
        self.ensure_nodes(need);
        match &mut self.repr {
            MeshRepr::Dense(values) => {
                let slot = &mut values[src.index() * self.n as usize + dst.index()];
                if slot.is_none() {
                    self.count += 1;
                }
                *slot = Some(rtt_seconds);
            }
            MeshRepr::Sparse(map) => {
                if map.insert((src.0, dst.0), rtt_seconds).is_none() {
                    self.count += 1;
                }
            }
        }
    }

    /// The RTT from `src` to `dst`, if probed.
    pub fn get(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        if src.index() >= self.n as usize || dst.index() >= self.n as usize {
            return None;
        }
        match &self.repr {
            MeshRepr::Dense(values) => values[src.index() * self.n as usize + dst.index()],
            MeshRepr::Sparse(map) => map.get(&(src.0, dst.0)).copied(),
        }
    }

    /// Number of probed pairs.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when no pair has been probed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// All probed `(source, target, rtt)` entries, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        match &self.repr {
            MeshRepr::Dense(values) => MeshIter::Dense {
                values: values.iter().enumerate(),
                n: self.n as usize,
            },
            MeshRepr::Sparse(map) => MeshIter::Sparse(map.iter()),
        }
    }

    /// One source row's probed `(target, rtt)` entries in ascending
    /// target-id order. For sparse meshes the work is proportional to the
    /// row's entries, which is what keeps snapshot indexing linear at 10k
    /// nodes.
    pub fn row(&self, src: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        match &self.repr {
            MeshRepr::Dense(values) => {
                let n = self.n as usize;
                let start = (src.index() * n).min(values.len());
                let end = (start + n).min(values.len());
                RowIter::Dense(values[start..end].iter().enumerate())
            }
            MeshRepr::Sparse(map) => RowIter::Sparse(map.range((src.0, 0)..=(src.0, u32::MAX))),
        }
    }
}

/// A point-in-time view of the whole cluster, as the scheduler sees it.
///
/// Node telemetry is stored densely by [`NodeId`]; the snapshot owns a small
/// name table so name-based accessors keep working at the edges. Build one
/// with [`ClusterSnapshot::from_store`] (or the scrape manager's interned
/// fast path) or assemble one by hand with [`ClusterSnapshot::insert_node`] /
/// [`ClusterSnapshot::insert_rtt`].
#[derive(Debug, Clone, Default)]
pub struct ClusterSnapshot {
    /// Snapshot timestamp.
    pub time: SimTime,
    /// Node name per id (insertion order).
    names: Vec<String>,
    /// Node ids sorted by name (name-resolution edge + deterministic
    /// name-ordered iteration, matching the pre-interning `BTreeMap` order).
    sorted: Vec<u32>,
    /// Telemetry per node id; `None` = node known (e.g. probed by the ping
    /// mesh) but not scraped.
    nodes: Vec<Option<NodeTelemetry>>,
    /// Pairwise RTT measurements keyed by `(source, target)` node ids.
    rtt: RttMesh,
    /// Generation of the [`crate::ExporterLayout`] that last installed this
    /// snapshot's node table via [`ClusterSnapshot::reset_for_generation`]
    /// (0 = none / table mutated since). Purely an internal fast-path stamp:
    /// excluded from equality and serialization.
    layout_generation: u64,
}

impl ClusterSnapshot {
    /// An empty snapshot stamped with `time`.
    pub fn at(time: SimTime) -> Self {
        ClusterSnapshot {
            time,
            ..Self::default()
        }
    }

    /// Assemble a snapshot from the store at time `at`.
    ///
    /// `rate_window` controls the lookback used to turn tx/rx byte counters
    /// into rates; when fewer than two counter samples exist in the window
    /// the rate is reported as 0 (cold start).
    pub fn from_store(store: &TimeSeriesStore, at: SimTime, rate_window: SimDuration) -> Self {
        let mut snap = ClusterSnapshot::default();
        snap.assemble_from_store(store, at, rate_window);
        snap
    }

    /// Re-assemble this snapshot in place from the store — the generic,
    /// name-resolving path; the scrape manager's interned layout path avoids
    /// the label lookups and re-interning entirely. Vector and mesh buffer
    /// capacity is reused; node names are re-interned.
    pub fn assemble_from_store(
        &mut self,
        store: &TimeSeriesStore,
        at: SimTime,
        rate_window: SimDuration,
    ) {
        self.clear();
        self.time = at;
        for &id in store.ids_for_name(METRIC_NODE_LOAD1) {
            if let Some(value) = store.instant_id(id, at) {
                if let Some(instance) = store.key(id).label("instance") {
                    let node = self.intern(instance);
                    self.entry(node).cpu_load = value;
                }
            }
        }
        for &id in store.ids_for_name(METRIC_NODE_MEM_AVAILABLE) {
            if let Some(value) = store.instant_id(id, at) {
                if let Some(instance) = store.key(id).label("instance") {
                    let node = self.intern(instance);
                    self.entry(node).memory_available_bytes = value;
                }
            }
        }
        for idx in 0..self.names.len() {
            if self.nodes[idx].is_none() {
                continue;
            }
            let tx_key = SeriesKey::per_node(METRIC_NODE_TX_BYTES, &self.names[idx]);
            let rx_key = SeriesKey::per_node(METRIC_NODE_RX_BYTES, &self.names[idx]);
            let tx = store.rate(&tx_key, at, rate_window).unwrap_or(0.0);
            let rx = store.rate(&rx_key, at, rate_window).unwrap_or(0.0);
            let entry = self.nodes[idx].as_mut().expect("checked above");
            entry.tx_rate = tx;
            entry.rx_rate = rx;
        }
        for &id in store.ids_for_name(METRIC_PING_RTT) {
            if let Some(value) = store.instant_id(id, at) {
                let key = store.key(id);
                if let (Some(src), Some(dst)) = (key.label("source"), key.label("target")) {
                    let (src, dst) = (self.intern(src), self.intern(dst));
                    self.rtt.set(src, dst, value);
                }
            }
        }
    }

    /// Fully clear the snapshot (names, telemetry, mesh), keeping the
    /// vectors' and mesh buffer's capacity (node-name `String`s are
    /// re-allocated on the next intern; the id-aligned
    /// [`ClusterSnapshot::reset_for`] path avoids even that).
    pub fn clear(&mut self) {
        self.time = SimTime::ZERO;
        self.names.clear();
        self.sorted.clear();
        self.nodes.clear();
        self.rtt.reset();
        self.layout_generation = 0;
    }

    /// Reset the snapshot for a fresh fetch over a fixed node table: keeps
    /// (or installs) the given names and clears all telemetry/mesh values
    /// without reallocating. This is the scratch-reuse entry point of the
    /// interned scrape path.
    pub fn reset_for(&mut self, time: SimTime, names: &[String]) {
        self.layout_generation = 0;
        self.reset_for_table(time, names);
    }

    /// [`ClusterSnapshot::reset_for`] with a layout-generation fast path:
    /// when the snapshot was last reset by the same layout build (same
    /// non-zero `generation`) the name-table comparison is skipped entirely —
    /// one integer compare instead of O(nodes) string compares. Any mutation
    /// of the node table (a different generation, [`ClusterSnapshot::clear`],
    /// or interning a new name) invalidates the stamp, forcing the slow path.
    pub fn reset_for_generation(&mut self, time: SimTime, generation: u64, names: &[String]) {
        if generation != 0 && generation == self.layout_generation {
            self.time = time;
            self.nodes.iter_mut().for_each(|n| *n = None);
            self.rtt.clear_values();
            return;
        }
        self.reset_for_table(time, names);
        self.layout_generation = generation;
    }

    /// Shared body of the reset entry points: keep the node table when it
    /// already matches `names`, rebuild it otherwise, and clear all values.
    fn reset_for_table(&mut self, time: SimTime, names: &[String]) {
        self.time = time;
        if self.names != names {
            self.clear();
            self.time = time;
            for name in names {
                self.intern(name);
            }
        } else {
            self.nodes.iter_mut().for_each(|n| *n = None);
            self.rtt.clear_values();
        }
    }

    /// Intern a node name, returning its snapshot-local id. The telemetry
    /// entry starts absent (`None`). Growing the table invalidates any
    /// layout-generation stamp (the table no longer matches the layout).
    fn intern(&mut self, name: &str) -> NodeId {
        match self.lookup(name) {
            Ok(pos) => NodeId(self.sorted[pos]),
            Err(pos) => {
                let id = self.names.len() as u32;
                self.names.push(name.to_string());
                self.nodes.push(None);
                self.sorted.insert(pos, id);
                self.layout_generation = 0;
                NodeId(id)
            }
        }
    }

    /// Binary-search `sorted` for a name: `Ok(pos)` when present.
    fn lookup(&self, name: &str) -> Result<usize, usize> {
        self.sorted
            .binary_search_by(|&id| self.names[id as usize].as_str().cmp(name))
    }

    /// Telemetry entry for a node, creating a zeroed one if absent.
    fn entry(&mut self, id: NodeId) -> &mut NodeTelemetry {
        self.nodes[id.index()].get_or_insert_with(NodeTelemetry::default)
    }

    /// Record (or overwrite) one node's telemetry, returning its id.
    pub fn insert_node(&mut self, name: &str, telemetry: NodeTelemetry) -> NodeId {
        let id = self.intern(name);
        self.nodes[id.index()] = Some(telemetry);
        id
    }

    /// Mutable telemetry of a node, if scraped.
    pub fn node_mut(&mut self, name: &str) -> Option<&mut NodeTelemetry> {
        let id = self.node_id(name)?;
        self.nodes[id.index()].as_mut()
    }

    /// Record an RTT probe between two nodes by name (interning both).
    pub fn insert_rtt(&mut self, source: &str, target: &str, rtt_seconds: f64) {
        let (src, dst) = (self.intern(source), self.intern(target));
        self.rtt.set(src, dst, rtt_seconds);
    }

    /// Record an RTT probe between two already-interned node ids.
    pub fn insert_rtt_by_id(&mut self, source: NodeId, target: NodeId, rtt_seconds: f64) {
        self.rtt.set(source, target, rtt_seconds);
    }

    /// Record one node's telemetry by pre-interned id (the interned scrape
    /// path; ids follow the order `reset_for` installed).
    pub fn set_node_by_id(&mut self, id: NodeId, telemetry: NodeTelemetry) {
        self.nodes[id.index()] = Some(telemetry);
    }

    /// Resolve a node name to its snapshot-local id.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.lookup(name).ok().map(|pos| NodeId(self.sorted[pos]))
    }

    /// The name of an interned node id.
    ///
    /// # Panics
    /// Panics if `id` was not interned by this snapshot.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Telemetry for one node, by name.
    pub fn node(&self, name: &str) -> Option<&NodeTelemetry> {
        let id = self.node_id(name)?;
        self.nodes[id.index()].as_ref()
    }

    /// Telemetry for one node, by snapshot-local id.
    pub fn node_by_id(&self, id: NodeId) -> Option<&NodeTelemetry> {
        self.nodes.get(id.index()).and_then(|t| t.as_ref())
    }

    /// Names of all scraped nodes, sorted.
    pub fn node_names(&self) -> Vec<String> {
        self.sorted
            .iter()
            .filter(|&&id| self.nodes[id as usize].is_some())
            .map(|&id| self.names[id as usize].clone())
            .collect()
    }

    /// All scraped nodes as `(name, telemetry)`, in name order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (&str, &NodeTelemetry)> {
        self.sorted.iter().filter_map(move |&id| {
            self.nodes[id as usize]
                .as_ref()
                .map(|t| (self.names[id as usize].as_str(), t))
        })
    }

    /// The RTT mesh.
    pub fn rtt(&self) -> &RttMesh {
        &self.rtt
    }

    /// RTT from `source` to `target` in seconds, if probed.
    pub fn rtt_between(&self, source: &str, target: &str) -> Option<f64> {
        let src = self.node_id(source)?;
        let dst = self.node_id(target)?;
        self.rtt.get(src, dst)
    }

    /// All RTTs observed *from* `source` to its peers, in target-name order.
    pub fn rtts_from(&self, source: &str) -> Vec<f64> {
        let Some(src) = self.node_id(source) else {
            return Vec::new();
        };
        self.sorted
            .iter()
            .filter_map(|&t| self.rtt.get(src, NodeId(t)))
            .collect()
    }

    /// Summary statistics (mean, max, std-dev) of the RTTs from `source` —
    /// exactly the three RTT features in Table 1 of the paper. On dense
    /// meshes accumulation runs in target-name order so results are
    /// bit-identical to the name-keyed mesh this replaced.
    pub fn rtt_stats_from(&self, source: &str) -> (f64, f64, f64) {
        let Some(src) = self.node_id(source) else {
            return (0.0, 0.0, 0.0);
        };
        let mut stats = simcore::OnlineStats::new();
        self.accumulate_rtts_from(src, &mut stats);
        if stats.count() == 0 {
            return (0.0, 0.0, 0.0);
        }
        (stats.mean(), stats.max(), stats.std_dev())
    }

    /// Push every RTT probed from `src` into `stats`. Dense meshes
    /// accumulate in target-name order (the floating-point order the
    /// paper-scale pins depend on); sparse meshes walk the source row in
    /// target-id order so the work is proportional to the row's entries
    /// rather than the node table. Both [`ClusterSnapshot::rtt_stats_from`]
    /// and [`ClusterSnapshot::index_for`] go through here, so the two can
    /// never disagree on accumulation order.
    fn accumulate_rtts_from(&self, src: NodeId, stats: &mut simcore::OnlineStats) {
        if self.rtt.is_dense() {
            for &t in &self.sorted {
                if let Some(rtt) = self.rtt.get(src, NodeId(t)) {
                    stats.push(rtt);
                }
            }
        } else {
            for (_, rtt) in self.rtt.row(src) {
                stats.push(rtt);
            }
        }
    }

    /// True when the snapshot has no scraped node at all.
    pub fn is_empty(&self) -> bool {
        !self.nodes.iter().any(Option::is_some)
    }

    /// True when the snapshot's node table is exactly `cluster`'s node table
    /// in the same id order — the case for snapshots produced by the interned
    /// scrape path, which lets [`ClusterSnapshot::index_for`] skip name
    /// resolution entirely.
    pub fn is_aligned_with(&self, cluster: &cluster::ClusterState) -> bool {
        cluster.names_match(&self.names)
    }

    /// Resolve this snapshot against a cluster's node intern table into a
    /// dense, [`NodeId`]-indexed view.
    ///
    /// This is the scheduler's burst-time amortization point: per-node
    /// telemetry lookups become array indexing and the RTT mesh is scanned
    /// exactly once (instead of once per candidate per decision) to
    /// precompute the Table-1 RTT statistics for every node. When the
    /// snapshot is id-aligned with the cluster (the interned scrape path)
    /// no name is touched at all.
    pub fn index_for(&self, cluster: &cluster::ClusterState) -> IndexedTelemetry {
        let mut out = IndexedTelemetry::default();
        self.index_into(cluster, &mut out);
        out
    }

    /// In-place variant of [`ClusterSnapshot::index_for`]: resolve this
    /// snapshot into `out`, reusing its node table, statistics table and
    /// accumulator scratch. Steady-state bursts over a fixed cluster size
    /// re-index without touching the heap.
    pub fn index_into(&self, cluster: &cluster::ClusterState, out: &mut IndexedTelemetry) {
        let n = cluster.node_count();
        let aligned = self.is_aligned_with(cluster);
        out.nodes.clear();
        if aligned {
            out.nodes.extend_from_slice(&self.nodes);
        } else {
            out.nodes.extend(
                cluster
                    .nodes()
                    .iter()
                    .map(|node| self.node(&node.name).copied()),
            );
        }

        let stats = &mut out.stats_scratch;
        stats.clear();
        stats.resize(n, simcore::OnlineStats::new());
        for src_idx in 0..self.names.len() {
            let cluster_idx = if aligned {
                src_idx
            } else {
                match cluster.node_id(&self.names[src_idx]) {
                    Some(id) => id.index(),
                    None => continue,
                }
            };
            let src = NodeId(src_idx as u32);
            self.accumulate_rtts_from(src, &mut stats[cluster_idx]);
        }
        out.rtt_stats.clear();
        out.rtt_stats.extend(stats.iter().map(|s| {
            if s.count() == 0 {
                (0.0, 0.0, 0.0)
            } else {
                (s.mean(), s.max(), s.std_dev())
            }
        }));
    }
}

/// Snapshots serialize in a canonical, name-resolved form — `time`, a
/// `(name, telemetry)` list in id order and a `(source, target, rtt)` list —
/// and deserialization rebuilds the intern tables from scratch, so archives
/// can never smuggle in an inconsistent `sorted`/`names`/mesh layout (every
/// internal invariant is re-established by construction) and the on-disk
/// shape is independent of the in-memory one.
impl Serialize for ClusterSnapshot {
    fn serialize_value(&self) -> serde::Value {
        let nodes: Vec<(String, Option<NodeTelemetry>)> = self
            .names
            .iter()
            .cloned()
            .zip(self.nodes.iter().copied())
            .collect();
        let rtt: Vec<(String, String, f64)> = self
            .rtt
            .iter()
            .map(|(src, dst, value)| {
                (
                    self.names[src.index()].clone(),
                    self.names[dst.index()].clone(),
                    value,
                )
            })
            .collect();
        serde::Value::Map(vec![
            (
                serde::Value::Str("time".to_string()),
                self.time.serialize_value(),
            ),
            (
                serde::Value::Str("nodes".to_string()),
                nodes.serialize_value(),
            ),
            (serde::Value::Str("rtt".to_string()), rtt.serialize_value()),
        ])
    }
}

impl Deserialize for ClusterSnapshot {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for ClusterSnapshot"))?;
        let time = SimTime::deserialize_value(serde::get_field(map, "time")?)?;
        let nodes: Vec<(String, Option<NodeTelemetry>)> =
            Deserialize::deserialize_value(serde::get_field(map, "nodes")?)?;
        let rtt: Vec<(String, String, f64)> =
            Deserialize::deserialize_value(serde::get_field(map, "rtt")?)?;
        let mut snap = ClusterSnapshot::at(time);
        for (name, telemetry) in nodes {
            let id = snap.intern(&name);
            snap.nodes[id.index()] = telemetry;
        }
        for (source, target, value) in rtt {
            snap.insert_rtt(&source, &target, value);
        }
        Ok(snap)
    }
}

/// Snapshots compare by *observable* telemetry — timestamp, scraped nodes
/// (by name) and probed RTT pairs (by name) — not by internal id assignment,
/// so a hand-built snapshot equals a scrape-produced one with the same
/// contents regardless of intern order, and a node table that was registered
/// but never scraped does not break equality.
impl PartialEq for ClusterSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
            && self.iter_nodes().eq(other.iter_nodes())
            && self.rtt.len() == other.rtt.len()
            && self.rtt.iter().all(|(src, dst, rtt)| {
                other.rtt_between(self.node_name(src), self.node_name(dst)) == Some(rtt)
            })
    }
}

/// Anything the scheduler can fetch a telemetry snapshot from: the
/// synchronous [`crate::ScrapeManager`], the sharded
/// [`crate::ConcurrentScrapeManager`], or a [`crate::TelemetryReader`] handle
/// observing a concurrent ingest from another thread. The telemetry fetcher
/// and scheduler service are generic over this trait, so decision bursts can
/// run against a live concurrent ingest without the core crate knowing which
/// backend is wired in.
pub trait SnapshotSource {
    /// Assemble the snapshot at `at` into `snap`, reusing its storage.
    fn snapshot_into(&self, at: SimTime, rate_window: SimDuration, snap: &mut ClusterSnapshot);

    /// Owning convenience wrapper over
    /// [`SnapshotSource::snapshot_into`].
    fn snapshot(&self, at: SimTime, rate_window: SimDuration) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::default();
        self.snapshot_into(at, rate_window, &mut snap);
        snap
    }

    /// The latest epoch-published immutable snapshot, when this source is
    /// backed by a [`crate::SnapshotPublisher`] (`None` for plain
    /// store-backed sources, and before the first publish). Epoch-aware
    /// readers share the returned `Arc` instead of copying, and use the
    /// epoch number as a freshness stamp.
    fn published(&self) -> Option<crate::publish::PublishedEpoch> {
        None
    }

    /// The latest published epoch number alone (one atomic load — no `Arc`
    /// traffic), for freshness checks. `None` when this source does not
    /// publish epochs or nothing has been published yet.
    fn published_epoch(&self) -> Option<u64> {
        None
    }
}

/// A dense, [`NodeId`]-indexed resolution of a [`ClusterSnapshot`] against
/// one cluster's node table. Built once per scheduling burst by
/// [`ClusterSnapshot::index_for`].
#[derive(Debug, Clone, Default)]
pub struct IndexedTelemetry {
    /// Host telemetry per node id; `None` when the node was not scraped.
    nodes: Vec<Option<NodeTelemetry>>,
    /// Precomputed (mean, max, std-dev) RTT-from-node statistics per node id.
    rtt_stats: Vec<(f64, f64, f64)>,
    /// Accumulator scratch reused by [`ClusterSnapshot::index_into`]; not
    /// part of the observable value.
    stats_scratch: Vec<simcore::OnlineStats>,
}

/// Equality over the observable view (node table + RTT statistics) only; the
/// internal accumulator scratch carries no information.
impl PartialEq for IndexedTelemetry {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.rtt_stats == other.rtt_stats
    }
}

impl IndexedTelemetry {
    /// Telemetry for a node, `None` when the node was absent from the scrape.
    pub fn node(&self, id: NodeId) -> Option<&NodeTelemetry> {
        self.nodes.get(id.index()).and_then(|t| t.as_ref())
    }

    /// The Table-1 RTT statistics (mean, max, std-dev) from a node to its
    /// peers; all zeros when the node has no probes.
    pub fn rtt_stats(&self, id: NodeId) -> (f64, f64, f64) {
        self.rtt_stats
            .get(id.index())
            .copied()
            .unwrap_or((0.0, 0.0, 0.0))
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are indexed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Sample;

    fn build_store() -> TimeSeriesStore {
        let mut store = TimeSeriesStore::new();
        let t0 = SimTime::from_secs(0);
        let t1 = SimTime::from_secs(30);
        for node in ["node-1", "node-2"] {
            store.append(Sample::gauge(
                SeriesKey::per_node(METRIC_NODE_LOAD1, node),
                1.5,
                t1,
            ));
            store.append(Sample::gauge(
                SeriesKey::per_node(METRIC_NODE_MEM_AVAILABLE, node),
                6e9,
                t1,
            ));
            // 2 MB/s tx, 1 MB/s rx over 30 s.
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_TX_BYTES, node),
                0.0,
                t0,
            ));
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_TX_BYTES, node),
                60e6,
                t1,
            ));
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_RX_BYTES, node),
                0.0,
                t0,
            ));
            store.append(Sample::counter(
                SeriesKey::per_node(METRIC_NODE_RX_BYTES, node),
                30e6,
                t1,
            ));
        }
        store.append(Sample::gauge(
            SeriesKey::new(
                METRIC_PING_RTT,
                &[("source", "node-1"), ("target", "node-2")],
            ),
            0.066,
            t1,
        ));
        store.append(Sample::gauge(
            SeriesKey::new(
                METRIC_PING_RTT,
                &[("source", "node-2"), ("target", "node-1")],
            ),
            0.067,
            t1,
        ));
        store
    }

    #[test]
    fn snapshot_assembles_all_signals() {
        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        assert!(!snap.is_empty());
        assert_eq!(snap.node_names(), vec!["node-1", "node-2"]);
        let n1 = snap.node("node-1").unwrap();
        assert_eq!(n1.cpu_load, 1.5);
        assert_eq!(n1.memory_available_bytes, 6e9);
        assert!((n1.tx_rate - 2e6).abs() < 1.0);
        assert!((n1.rx_rate - 1e6).abs() < 1.0);
        assert_eq!(snap.rtt_between("node-1", "node-2"), Some(0.066));
        assert_eq!(snap.rtt_between("node-2", "node-1"), Some(0.067));
        assert_eq!(snap.rtt_between("node-1", "node-9"), None);
        assert!(snap.node("node-9").is_none());
        assert_eq!(snap.rtt().len(), 2);
        assert_eq!(snap.iter_nodes().count(), 2);
    }

    #[test]
    fn id_accessors_mirror_name_accessors() {
        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let id1 = snap.node_id("node-1").unwrap();
        let id2 = snap.node_id("node-2").unwrap();
        assert_eq!(snap.node_name(id1), "node-1");
        assert_eq!(snap.node_by_id(id1), snap.node("node-1"));
        assert_eq!(snap.rtt().get(id1, id2), Some(0.066));
        assert_eq!(snap.node_id("node-9"), None);
        assert_eq!(snap.node_by_id(NodeId(99)), None);
        let pairs: Vec<_> = snap.rtt().iter().collect();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(id1, id2, 0.066)));
    }

    #[test]
    fn reused_snapshot_equals_fresh_assembly() {
        let store = build_store();
        let at = SimTime::from_secs(35);
        let w = SimDuration::from_secs(60);
        let fresh = ClusterSnapshot::from_store(&store, at, w);
        let mut reused = ClusterSnapshot::default();
        for _ in 0..3 {
            reused.assemble_from_store(&store, at, w);
            assert_eq!(reused, fresh);
        }
        // reset_for keeps the node table and clears the values.
        let names: Vec<String> = vec!["node-1".into(), "node-2".into()];
        reused.reset_for(SimTime::from_secs(40), &names);
        assert!(reused.is_empty());
        assert_eq!(reused.node_id("node-2"), Some(NodeId(1)));
        assert_eq!(reused.time, SimTime::from_secs(40));
    }

    #[test]
    fn hand_built_snapshots_intern_in_insertion_order() {
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(9));
        let b = snap.insert_node("node-b", NodeTelemetry::default());
        let a = snap.insert_node(
            "node-a",
            NodeTelemetry {
                cpu_load: 2.0,
                ..Default::default()
            },
        );
        assert_eq!((b, a), (NodeId(0), NodeId(1)));
        // Name-sorted iteration regardless of insertion order.
        assert_eq!(snap.node_names(), vec!["node-a", "node-b"]);
        snap.insert_rtt("node-b", "node-a", 0.5);
        snap.insert_rtt_by_id(a, b, 0.25);
        assert_eq!(snap.rtt_between("node-b", "node-a"), Some(0.5));
        assert_eq!(snap.rtt_between("node-a", "node-b"), Some(0.25));
        snap.node_mut("node-a").unwrap().cpu_load = 3.0;
        assert_eq!(snap.node("node-a").unwrap().cpu_load, 3.0);
        assert!(snap.node_mut("node-z").is_none());
    }

    #[test]
    fn generation_stamp_skips_and_forces_the_name_table_path() {
        let names_ab: Vec<String> = vec!["node-a".into(), "node-b".into()];
        let names_ac: Vec<String> = vec!["node-a".into(), "node-c".into()];
        let mut snap = ClusterSnapshot::default();

        // First reset installs the table and stamps the generation.
        snap.reset_for_generation(SimTime::from_secs(1), 7, &names_ab);
        snap.set_node_by_id(
            NodeId(0),
            NodeTelemetry {
                cpu_load: 1.0,
                ..Default::default()
            },
        );
        // Same generation: fast path keeps the table, clears the values.
        snap.reset_for_generation(SimTime::from_secs(2), 7, &names_ab);
        assert!(snap.is_empty());
        assert_eq!(snap.node_id("node-b"), Some(NodeId(1)));
        assert_eq!(snap.time, SimTime::from_secs(2));

        // A mutated layout (different generation, different names) forces the
        // slow path: the stale table must be replaced, not trusted.
        snap.reset_for_generation(SimTime::from_secs(3), 9, &names_ac);
        assert_eq!(snap.node_id("node-c"), Some(NodeId(1)));
        assert_eq!(snap.node_id("node-b"), None);

        // Hand-mutating the table (interning a new name) invalidates the
        // stamp, so the next same-generation reset re-verifies the names.
        snap.insert_node("node-z", NodeTelemetry::default());
        snap.reset_for_generation(SimTime::from_secs(4), 9, &names_ac);
        assert_eq!(snap.node_id("node-z"), None, "stale name must be dropped");
        assert_eq!(snap.node_id("node-c"), Some(NodeId(1)));

        // Generation 0 (no layout) always takes the slow path.
        snap.reset_for_generation(SimTime::from_secs(5), 0, &names_ab);
        snap.reset_for_generation(SimTime::from_secs(6), 0, &names_ac);
        assert_eq!(snap.node_id("node-c"), Some(NodeId(1)));
    }

    #[test]
    fn rates_default_to_zero_without_history() {
        let mut store = TimeSeriesStore::new();
        store.append(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_LOAD1, "node-1"),
            0.5,
            SimTime::from_secs(10),
        ));
        // Only one counter point: no rate can be derived.
        store.append(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, "node-1"),
            1000.0,
            SimTime::from_secs(10),
        ));
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(12), SimDuration::from_secs(30));
        let n = snap.node("node-1").unwrap();
        assert_eq!(n.tx_rate, 0.0);
        assert_eq!(n.rx_rate, 0.0);
        assert_eq!(n.cpu_load, 0.5);
    }

    #[test]
    fn rtt_stats_match_table1_semantics() {
        let mut store = build_store();
        store.append(Sample::gauge(
            SeriesKey::new(
                METRIC_PING_RTT,
                &[("source", "node-1"), ("target", "node-3")],
            ),
            0.010,
            SimTime::from_secs(30),
        ));
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let rtts = snap.rtts_from("node-1");
        assert_eq!(rtts.len(), 2);
        let (mean, max, std) = snap.rtt_stats_from("node-1");
        assert!((mean - 0.038).abs() < 1e-9);
        assert_eq!(max, 0.066);
        assert!(std > 0.0);
        assert_eq!(snap.rtt_stats_from("node-99"), (0.0, 0.0, 0.0));
        // node-3 was probed but never scraped: known name, absent telemetry.
        assert!(snap.node("node-3").is_none());
        assert_eq!(snap.node_names(), vec!["node-1", "node-2"]);
    }

    #[test]
    fn indexed_view_matches_name_keyed_lookups() {
        use cluster::{Node, Resources};

        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let mut c = cluster::ClusterState::new();
        // node-3 exists in the cluster but was never scraped.
        for (i, name) in ["node-1", "node-2", "node-3"].iter().enumerate() {
            c.add_node(Node::new(
                *name,
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        assert!(!snap.is_aligned_with(&c));
        let indexed = snap.index_for(&c);
        assert_eq!(indexed.len(), 3);
        assert!(!indexed.is_empty());
        for name in ["node-1", "node-2"] {
            let id = c.node_id(name).unwrap();
            assert_eq!(indexed.node(id), snap.node(name));
            let (mean, max, std) = indexed.rtt_stats(id);
            let (m2, x2, s2) = snap.rtt_stats_from(name);
            assert_eq!((mean, max, std), (m2, x2, s2));
        }
        let unscraped = c.node_id("node-3").unwrap();
        assert_eq!(indexed.node(unscraped), None);
        assert_eq!(indexed.rtt_stats(unscraped), (0.0, 0.0, 0.0));
        // Out-of-table ids degrade gracefully.
        assert_eq!(indexed.node(cluster::NodeId(99)), None);
        assert_eq!(indexed.rtt_stats(cluster::NodeId(99)), (0.0, 0.0, 0.0));
    }

    #[test]
    fn aligned_fast_path_matches_name_resolution() {
        use cluster::{Node, Resources};

        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let mut c = cluster::ClusterState::new();
        for (i, name) in ["node-1", "node-2"].iter().enumerate() {
            c.add_node(Node::new(
                *name,
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        assert!(snap.is_aligned_with(&c));
        let indexed = snap.index_for(&c);
        for name in ["node-1", "node-2"] {
            let id = c.node_id(name).unwrap();
            assert_eq!(indexed.node(id), snap.node(name));
            assert_eq!(indexed.rtt_stats(id), snap.rtt_stats_from(name));
        }
    }

    #[test]
    fn snapshot_json_roundtrip_preserves_contents_and_ids() {
        let store = build_store();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(35), SimDuration::from_secs(60));
        let json = serde_json::to_string(&snap).unwrap();
        let back: ClusterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        // Id assignment survives the roundtrip (names serialize in id order,
        // deserialization re-interns them in the same order).
        assert_eq!(back.node_id("node-2"), snap.node_id("node-2"));
        assert_eq!(back.rtt_between("node-1", "node-2"), Some(0.066));
        // Malformed payloads are rejected rather than trusted.
        assert!(serde_json::from_str::<ClusterSnapshot>("{\"time\":0}").is_err());
        assert!(serde_json::from_str::<ClusterSnapshot>("[1,2]").is_err());
        // Empty snapshots roundtrip too.
        let empty = ClusterSnapshot::at(SimTime::from_secs(3));
        let back: ClusterSnapshot =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn sparse_mesh_matches_dense_semantics() {
        // Same probes recorded twice: once within the dense limit, once
        // shifted past it so the mesh goes sparse. Every accessor must agree.
        let probes = [
            (0u32, 3u32, 0.010),
            (3, 0, 0.011),
            (1, 2, 0.020),
            (5, 5, 0.0),
        ];
        let mut dense = RttMesh::default();
        let mut sparse = RttMesh::default();
        let shift = super::DENSE_NODE_LIMIT as u32 + 100;
        for &(s, t, v) in &probes {
            dense.set(NodeId(s), NodeId(t), v);
            sparse.set(NodeId(s + shift), NodeId(t + shift), v);
        }
        assert!(dense.is_dense());
        assert!(!sparse.is_dense());
        assert_eq!(dense.len(), sparse.len());
        for &(s, t, v) in &probes {
            assert_eq!(dense.get(NodeId(s), NodeId(t)), Some(v));
            assert_eq!(sparse.get(NodeId(s + shift), NodeId(t + shift)), Some(v));
        }
        assert_eq!(sparse.get(NodeId(0), NodeId(3)), None);
        // Row-major full iteration and per-row iteration line up.
        let dense_iter: Vec<_> = dense.iter().collect();
        let sparse_iter: Vec<_> = sparse
            .iter()
            .map(|(s, t, v)| (NodeId(s.0 - shift), NodeId(t.0 - shift), v))
            .collect();
        assert_eq!(dense_iter, sparse_iter);
        let dense_row: Vec<_> = dense.row(NodeId(0)).collect();
        let sparse_row: Vec<_> = sparse
            .row(NodeId(shift))
            .map(|(t, v)| (NodeId(t.0 - shift), v))
            .collect();
        assert_eq!(dense_row, vec![(NodeId(3), 0.010)]);
        assert_eq!(dense_row, sparse_row);
        // Overwrites do not double-count in either representation.
        dense.set(NodeId(0), NodeId(3), 0.9);
        sparse.set(NodeId(shift), NodeId(3 + shift), 0.9);
        assert_eq!(dense.len(), sparse.len());
        // Out-of-range rows are empty, not a panic.
        assert_eq!(dense.row(NodeId(9999)).count(), 0);
        assert_eq!(sparse.row(NodeId(9999)).count(), 0);
    }

    #[test]
    fn dense_mesh_migrates_to_sparse_preserving_entries() {
        let mut mesh = RttMesh::default();
        mesh.set(NodeId(0), NodeId(1), 0.001);
        mesh.set(NodeId(1), NodeId(0), 0.002);
        assert!(mesh.is_dense());
        // Growing past the dense limit migrates without losing probes.
        mesh.set(NodeId(super::DENSE_NODE_LIMIT as u32), NodeId(0), 0.003);
        assert!(!mesh.is_dense());
        assert_eq!(mesh.len(), 3);
        assert_eq!(mesh.get(NodeId(0), NodeId(1)), Some(0.001));
        assert_eq!(mesh.get(NodeId(1), NodeId(0)), Some(0.002));
        assert_eq!(
            mesh.get(NodeId(super::DENSE_NODE_LIMIT as u32), NodeId(0)),
            Some(0.003)
        );
    }

    #[test]
    fn large_snapshot_stats_and_roundtrip_use_sparse_mesh() {
        use cluster::{Node, Resources};

        // A world past the dense limit with a sampled (non-full) RTT mesh.
        let n = super::DENSE_NODE_LIMIT + 8;
        let mut snap = ClusterSnapshot::at(SimTime::from_secs(1));
        let mut c = cluster::ClusterState::new();
        for i in 0..n {
            let name = format!("node-{i:05}");
            c.add_node(Node::new(
                &name,
                simnet::NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
            snap.insert_node(
                &name,
                NodeTelemetry {
                    cpu_load: i as f64 * 0.01,
                    ..Default::default()
                },
            );
        }
        // Each node probes 3 peers.
        for i in 0..n {
            for k in 1..=3usize {
                snap.insert_rtt(
                    &format!("node-{i:05}"),
                    &format!("node-{:05}", (i + k * 7) % n),
                    0.001 * (i % 17 + k) as f64,
                );
            }
        }
        assert!(!snap.rtt().is_dense());
        assert_eq!(snap.rtt().len(), 3 * n);
        assert!(snap.is_aligned_with(&c));

        let indexed = snap.index_for(&c);
        for i in [0usize, 17, n - 1] {
            let name = format!("node-{i:05}");
            let id = c.node_id(&name).unwrap();
            assert_eq!(indexed.node(id), snap.node(&name));
            assert_eq!(indexed.rtt_stats(id), snap.rtt_stats_from(&name));
            let (mean, max, _) = indexed.rtt_stats(id);
            assert!(mean > 0.0 && max >= mean);
        }

        // Canonical serialization survives the sparse representation.
        let json = serde_json::to_string(&snap).unwrap();
        let back: ClusterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_store_yields_empty_snapshot() {
        let store = TimeSeriesStore::new();
        let snap =
            ClusterSnapshot::from_store(&store, SimTime::from_secs(1), SimDuration::from_secs(30));
        assert!(snap.is_empty());
        assert!(snap.node_names().is_empty());
        assert!(snap.rtts_from("node-1").is_empty());
        assert!(snap.rtt().is_empty());
    }
}
