//! Sharding the time-series store by metric name.
//!
//! [`TimeSeriesStore`] is one flat series table; on clusters beyond a few
//! hundred nodes every append and every retention prune serializes on it. The
//! store's per-metric-name `SeriesId` buckets are the natural split, so this
//! module shards by metric name:
//!
//! * [`ShardRouter`] — the stable name → shard mapping (FNV-1a over the
//!   metric name, modulo the shard count). Every series of one metric name
//!   lands in one shard, so per-name queries still touch a single bucket.
//! * [`ShardedSeriesId`] — a [`SeriesId`] qualified with its shard: the
//!   interned identity handed out by sharded stores.
//! * [`ShardedTimeSeriesStore`] — a drop-in value-type replacement for the
//!   flat store: same append/ingestion rules, same query surface, answers
//!   exactly equal to a flat store fed the same samples. The concurrent
//!   ingest pipeline (`crate::ingest`) uses the same router over a
//!   lock-per-shard layout so writer workers append in parallel.
//!
//! **Retention equivalence.** The flat store's retention cutoff is monotone
//! in the newest timestamp it has seen. A shard only sees its own metric
//! names, so the sharded store forwards the *global* watermark to each shard
//! ([`TimeSeriesStore::observe_time`]) before appending — without this, a
//! shard ingesting slow-moving metrics would prune less than the flat store
//! it replaces.

use crate::metrics::{MetricKind, Sample, SeriesKey};
use crate::store::{SeriesId, TimeSeriesStore};
use simcore::{SimDuration, SimTime};
use std::fmt;

/// Stable metric-name → shard routing: FNV-1a over the name bytes, modulo the
/// shard count. Deterministic across runs and processes (no `RandomState`),
/// so shard assignment — and therefore store layout — is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shard_count: usize,
}

impl ShardRouter {
    /// A router over `shard_count` shards (clamped to at least 1).
    pub fn new(shard_count: usize) -> Self {
        ShardRouter {
            shard_count: shard_count.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard a metric name routes to. All series of one metric name land
    /// in the same shard, preserving the per-name bucket locality the flat
    /// store's `ids_for_name` relies on.
    pub fn shard_of(&self, metric_name: &str) -> usize {
        // FNV-1a, 64-bit.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in metric_name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % self.shard_count as u64) as usize
    }
}

/// Interned series identity in a sharded store: which shard, plus the
/// shard-local [`SeriesId`]. Same role (and same `Copy` discipline) as
/// [`SeriesId`] in the flat store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardedSeriesId {
    /// Index of the owning shard.
    pub shard: u16,
    /// Series id within that shard's intern table.
    pub series: SeriesId,
}

impl fmt::Display for ShardedSeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}/{}", self.shard, self.series)
    }
}

/// A time-series store sharded by metric name.
///
/// Single-threaded value type with the flat store's exact semantics; the
/// concurrent ingest pipeline puts the same shards behind per-shard locks.
#[derive(Debug, Clone)]
pub struct ShardedTimeSeriesStore {
    router: ShardRouter,
    shards: Vec<TimeSeriesStore>,
    /// Global newest-timestamp watermark, forwarded to every shard so
    /// retention cutoffs match the flat store's.
    max_ts: SimTime,
}

impl ShardedTimeSeriesStore {
    /// An unbounded-retention store over `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        let router = ShardRouter::new(shard_count);
        ShardedTimeSeriesStore {
            shards: (0..router.shard_count())
                .map(|_| TimeSeriesStore::new())
                .collect(),
            router,
            max_ts: SimTime::ZERO,
        }
    }

    /// A store that prunes points older than `retention` behind the global
    /// newest-timestamp watermark.
    pub fn with_retention(shard_count: usize, retention: SimDuration) -> Self {
        let router = ShardRouter::new(shard_count);
        ShardedTimeSeriesStore {
            shards: (0..router.shard_count())
                .map(|_| TimeSeriesStore::with_retention(retention))
                .collect(),
            router,
            max_ts: SimTime::ZERO,
        }
    }

    /// The router in use.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &TimeSeriesStore {
        &self.shards[shard]
    }

    /// Intern a series key into its metric name's shard.
    pub fn intern(&mut self, key: &SeriesKey, kind: MetricKind) -> ShardedSeriesId {
        let shard = self.router.shard_of(&key.name);
        ShardedSeriesId {
            shard: shard as u16,
            series: self.shards[shard].intern(key, kind),
        }
    }

    /// Resolve a key to its interned id, if the series exists.
    pub fn series_id(&self, key: &SeriesKey) -> Option<ShardedSeriesId> {
        let shard = self.router.shard_of(&key.name);
        self.shards[shard]
            .series_id(key)
            .map(|series| ShardedSeriesId {
                shard: shard as u16,
                series,
            })
    }

    /// The key of an interned series.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this store.
    pub fn key(&self, id: ShardedSeriesId) -> &SeriesKey {
        self.shards[id.shard as usize].key(id.series)
    }

    /// The kind of an interned series.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this store.
    pub fn kind(&self, id: ShardedSeriesId) -> MetricKind {
        self.shards[id.shard as usize].kind(id.series)
    }

    /// Ids of every series with the given metric name, in intern order.
    pub fn ids_for_name(&self, name: &str) -> Vec<ShardedSeriesId> {
        let shard = self.router.shard_of(name);
        self.shards[shard]
            .ids_for_name(name)
            .iter()
            .map(|&series| ShardedSeriesId {
                shard: shard as u16,
                series,
            })
            .collect()
    }

    /// Append one sample, interning its key.
    pub fn append(&mut self, sample: Sample) {
        let id = self.intern(&sample.key, sample.kind);
        self.append_value(id, sample.value, sample.timestamp);
    }

    /// Append a value to a pre-interned series, with the flat store's exact
    /// ingestion and (watermark-monotone) retention rules.
    pub fn append_value(&mut self, id: ShardedSeriesId, value: f64, timestamp: SimTime) {
        if timestamp > self.max_ts {
            self.max_ts = timestamp;
        }
        let shard = &mut self.shards[id.shard as usize];
        shard.observe_time(self.max_ts);
        shard.append_value(id.series, value, timestamp);
    }

    /// Append many samples.
    pub fn append_all(&mut self, samples: impl IntoIterator<Item = Sample>) {
        for s in samples {
            self.append(s);
        }
    }

    /// The newest timestamp ever accepted, across all shards.
    pub fn max_timestamp(&self) -> SimTime {
        self.max_ts
    }

    /// Number of distinct series across all shards.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(TimeSeriesStore::series_count).sum()
    }

    /// Total number of stored points across all shards.
    pub fn point_count(&self) -> usize {
        self.shards.iter().map(TimeSeriesStore::point_count).sum()
    }

    /// Latest value of a series at or before `at`.
    pub fn instant(&self, key: &SeriesKey, at: SimTime) -> Option<f64> {
        self.instant_id(self.series_id(key)?, at)
    }

    /// Latest value of a pre-interned series at or before `at`.
    pub fn instant_id(&self, id: ShardedSeriesId, at: SimTime) -> Option<f64> {
        self.shards[id.shard as usize].instant_id(id.series, at)
    }

    /// All points of a series with timestamps in `[from, to]`, borrowed.
    pub fn range(&self, key: &SeriesKey, from: SimTime, to: SimTime) -> &[(SimTime, f64)] {
        match self.series_id(key) {
            Some(id) => self.range_id(id, from, to),
            None => &[],
        }
    }

    /// Borrowed window `[from, to]` of a pre-interned series.
    pub fn range_id(&self, id: ShardedSeriesId, from: SimTime, to: SimTime) -> &[(SimTime, f64)] {
        self.shards[id.shard as usize].range_id(id.series, from, to)
    }

    /// Prometheus-style `rate()` over a counter window.
    pub fn rate(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        self.rate_id(self.series_id(key)?, at, window)
    }

    /// `rate()` over a pre-interned counter series.
    pub fn rate_id(&self, id: ShardedSeriesId, at: SimTime, window: SimDuration) -> Option<f64> {
        self.shards[id.shard as usize].rate_id(id.series, at, window)
    }

    /// Average of a series over `[at - window, at]`.
    pub fn avg_over(&self, key: &SeriesKey, at: SimTime, window: SimDuration) -> Option<f64> {
        self.avg_over_id(self.series_id(key)?, at, window)
    }

    /// Average over a pre-interned series.
    pub fn avg_over_id(
        &self,
        id: ShardedSeriesId,
        at: SimTime,
        window: SimDuration,
    ) -> Option<f64> {
        self.shards[id.shard as usize].avg_over_id(id.series, at, window)
    }

    /// Latest gauge value per series of the given metric name (one shard's
    /// bucket — never a cross-shard scan).
    pub fn instant_by_name(&self, name: &str, at: SimTime) -> Vec<(ShardedSeriesId, f64)> {
        let shard = self.router.shard_of(name);
        self.shards[shard]
            .instant_by_name(name, at)
            .into_iter()
            .map(|(series, value)| {
                (
                    ShardedSeriesId {
                        shard: shard as u16,
                        series,
                    },
                    value,
                )
            })
            .collect()
    }

    /// All series keys across shards, sorted (the flat store's `keys` order).
    pub fn keys(&self) -> Vec<&SeriesKey> {
        let mut keys: Vec<&SeriesKey> = self.shards.iter().flat_map(|shard| shard.keys()).collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(name: &str, node: &str) -> SeriesKey {
        SeriesKey::per_node(name, node)
    }

    #[test]
    fn router_is_stable_and_in_range() {
        for count in [1usize, 2, 5, 8] {
            let router = ShardRouter::new(count);
            assert_eq!(router.shard_count(), count);
            for name in ["node_load1", "ping_rtt_seconds", "x", ""] {
                let shard = router.shard_of(name);
                assert!(shard < count);
                assert_eq!(shard, router.shard_of(name), "routing must be stable");
            }
        }
        // Zero shards clamps to one.
        assert_eq!(ShardRouter::new(0).shard_count(), 1);
        assert_eq!(ShardRouter::new(0).shard_of("anything"), 0);
    }

    #[test]
    fn one_metric_name_lands_in_one_shard() {
        let mut store = ShardedTimeSeriesStore::new(4);
        let ids: Vec<ShardedSeriesId> = (0..6)
            .map(|i| store.intern(&key("node_load1", &format!("node-{i}")), MetricKind::Gauge))
            .collect();
        let shard = ids[0].shard;
        assert!(ids.iter().all(|id| id.shard == shard));
        assert_eq!(store.ids_for_name("node_load1"), ids);
        assert!(store.ids_for_name("missing").is_empty());
        assert_eq!(format!("{}", ids[0]), format!("shard#{shard}/s#0"));
    }

    #[test]
    fn sharded_queries_match_flat_store() {
        let mut sharded = ShardedTimeSeriesStore::with_retention(3, SimDuration::from_secs(120));
        let mut flat = TimeSeriesStore::with_retention(SimDuration::from_secs(120));
        let keys = [
            (key("node_load1", "node-1"), MetricKind::Gauge),
            (key("bytes_total", "node-1"), MetricKind::Counter),
            (key("bytes_total", "node-2"), MetricKind::Counter),
        ];
        for step in 0..40u64 {
            let (k, kind) = &keys[(step % 3) as usize];
            let t = SimTime::from_secs(step * 7 % 150);
            let sample = match kind {
                MetricKind::Counter => Sample::counter(k.clone(), (step * step) as f64, t),
                MetricKind::Gauge => Sample::gauge(k.clone(), step as f64, t),
            };
            sharded.append(sample.clone());
            flat.append(sample);
        }
        assert_eq!(sharded.series_count(), flat.series_count());
        assert_eq!(sharded.point_count(), flat.point_count());
        assert_eq!(sharded.max_timestamp(), flat.max_timestamp());
        let window = SimDuration::from_secs(60);
        for (k, _) in &keys {
            for t in [0u64, 50, 100, 200] {
                let at = SimTime::from_secs(t);
                assert_eq!(sharded.instant(k, at), flat.instant(k, at));
                assert_eq!(sharded.rate(k, at, window), flat.rate(k, at, window));
                assert_eq!(
                    sharded.avg_over(k, at, window),
                    flat.avg_over(k, at, window)
                );
                assert_eq!(
                    sharded.range(k, SimTime::from_secs(t / 2), at),
                    flat.range(k, SimTime::from_secs(t / 2), at)
                );
            }
            let id = sharded.series_id(k).unwrap();
            assert_eq!(sharded.key(id), k);
            assert_eq!(sharded.kind(id), flat.kind(flat.series_id(k).unwrap()));
        }
        let sharded_keys: Vec<&SeriesKey> = sharded.keys();
        let flat_keys: Vec<&SeriesKey> = flat.keys().collect();
        assert_eq!(sharded_keys, flat_keys);
    }
}
