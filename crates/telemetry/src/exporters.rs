//! The two exporters the paper deploys.
//!
//! * **Node exporter** — per-node host metrics: 1-minute load average,
//!   available memory, cumulative transmit/receive byte counters.
//! * **Ping-mesh exporter** — a DaemonSet probing every other node and
//!   exporting the observed RTT (the paper uses `ping_exporter`).
//!
//! Both are pure functions over the simulated cluster and network state, so
//! they can be called from the scrape loop or directly from tests.

use crate::metrics::{Sample, SeriesKey};
use crate::{
    METRIC_NODE_LOAD1, METRIC_NODE_MEM_AVAILABLE, METRIC_NODE_RX_BYTES, METRIC_NODE_TX_BYTES,
    METRIC_PING_RTT,
};
use cluster::ClusterState;
use simcore::SimTime;
use simnet::Network;

/// Collect node-exporter samples for every node in the cluster.
///
/// Counters (tx/rx bytes) come from the network's interface counters; gauges
/// (load, available memory) come from the cluster's host-load model.
pub fn node_exporter_samples(
    cluster: &ClusterState,
    network: &Network,
    now: SimTime,
) -> Vec<Sample> {
    let mut samples = Vec::with_capacity(cluster.nodes().len() * 4);
    for node in cluster.nodes() {
        let instance = node.name.as_str();
        let counters = network.counters(node.net_id);
        samples.push(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_LOAD1, instance),
            node.cpu_load(),
            now,
        ));
        samples.push(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_MEM_AVAILABLE, instance),
            node.memory_available(),
            now,
        ));
        samples.push(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, instance),
            counters.tx_bytes,
            now,
        ));
        samples.push(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_RX_BYTES, instance),
            counters.rx_bytes,
            now,
        ));
    }
    samples
}

/// Collect full-mesh ping samples: one `ping_rtt_seconds{source, target}`
/// gauge per ordered node pair (excluding self-pairs).
///
/// The jitter seed mixes the pair identity and the scrape time so repeated
/// scrapes see realistic variation while remaining reproducible.
pub fn ping_mesh_samples(cluster: &ClusterState, network: &Network, now: SimTime) -> Vec<Sample> {
    let nodes = cluster.nodes();
    let mut samples = Vec::with_capacity(nodes.len() * nodes.len());
    for a in nodes {
        for b in nodes {
            if a.name == b.name {
                continue;
            }
            let seed = pair_seed(a.net_id.0 as u64, b.net_id.0 as u64, now);
            let rtt = network.current_rtt(a.net_id, b.net_id, seed);
            samples.push(Sample::gauge(
                SeriesKey::new(
                    METRIC_PING_RTT,
                    &[("source", a.name.as_str()), ("target", b.name.as_str())],
                ),
                rtt.as_secs_f64(),
                now,
            ));
        }
    }
    samples
}

/// Deterministic jitter seed for a (source, target, time) triple.
fn pair_seed(a: u64, b: u64, now: SimTime) -> u64 {
    let mut h = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= now.as_nanos().wrapping_mul(0x1656_67B1_9E37_79F9);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Node, Resources};
    use simcore::SimDuration;
    use simnet::{gbps, mbps, FlowId, NodeId, TopologyBuilder};

    fn setup() -> (ClusterState, Network) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-3", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(33), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        for (i, name) in ["node-1", "node-2", "node-3"].iter().enumerate() {
            cluster.add_node(Node::new(
                *name,
                NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                if i < 2 { "UCSD" } else { "FIU" },
            ));
        }
        (cluster, network)
    }

    #[test]
    fn node_exporter_emits_four_metrics_per_node() {
        let (cluster, network) = setup();
        let samples = node_exporter_samples(&cluster, &network, SimTime::from_secs(5));
        assert_eq!(samples.len(), 3 * 4);
        let load_samples: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.key.name == METRIC_NODE_LOAD1)
            .collect();
        assert_eq!(load_samples.len(), 3);
        assert!(load_samples.iter().all(|s| s.value > 0.0));
        let mem: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.key.name == METRIC_NODE_MEM_AVAILABLE)
            .collect();
        assert!(mem.iter().all(|s| s.value > 6.0 * 1024.0 * 1024.0 * 1024.0));
        // Idle network: counters are zero.
        assert!(samples
            .iter()
            .filter(|s| s.key.name == METRIC_NODE_TX_BYTES)
            .all(|s| s.value == 0.0));
    }

    #[test]
    fn tx_counters_grow_after_traffic() {
        let (cluster, mut network) = setup();
        let _: FlowId = network.start_flow(
            NodeId(0),
            NodeId(2),
            10_000_000.0,
            simnet::flow::FlowKind::Background,
        );
        network.advance_to(SimTime::from_secs(5));
        let samples = node_exporter_samples(&cluster, &network, SimTime::from_secs(5));
        let tx_node1 = samples
            .iter()
            .find(|s| {
                s.key.name == METRIC_NODE_TX_BYTES && s.key.label("instance") == Some("node-1")
            })
            .unwrap();
        assert!(tx_node1.value > 0.0);
        let rx_node3 = samples
            .iter()
            .find(|s| {
                s.key.name == METRIC_NODE_RX_BYTES && s.key.label("instance") == Some("node-3")
            })
            .unwrap();
        assert!((rx_node3.value - tx_node1.value).abs() < 1.0);
    }

    #[test]
    fn ping_mesh_covers_all_ordered_pairs() {
        let (cluster, network) = setup();
        let samples = ping_mesh_samples(&cluster, &network, SimTime::from_secs(1));
        assert_eq!(samples.len(), 3 * 2);
        // Inter-site pairs see the WAN RTT (~66 ms), intra-site pairs are sub-millisecond.
        let inter = samples
            .iter()
            .find(|s| {
                s.key.label("source") == Some("node-1") && s.key.label("target") == Some("node-3")
            })
            .unwrap();
        assert!(inter.value > 0.05, "inter-site RTT {}", inter.value);
        let intra = samples
            .iter()
            .find(|s| {
                s.key.label("source") == Some("node-1") && s.key.label("target") == Some("node-2")
            })
            .unwrap();
        assert!(intra.value < 0.005, "intra-site RTT {}", intra.value);
        // No self-pings.
        assert!(!samples
            .iter()
            .any(|s| s.key.label("source") == s.key.label("target")));
    }

    #[test]
    fn ping_mesh_is_deterministic_for_same_time() {
        let (cluster, network) = setup();
        let a = ping_mesh_samples(&cluster, &network, SimTime::from_secs(7));
        let b = ping_mesh_samples(&cluster, &network, SimTime::from_secs(7));
        assert_eq!(a, b);
        let c = ping_mesh_samples(&cluster, &network, SimTime::from_secs(8));
        // Jitter varies with the scrape time (values differ even if close).
        assert_ne!(a, c);
    }
}
