//! The two exporters the paper deploys.
//!
//! * **Node exporter** — per-node host metrics: 1-minute load average,
//!   available memory, cumulative transmit/receive byte counters.
//! * **Ping-mesh exporter** — a DaemonSet probing every other node and
//!   exporting the observed RTT (the paper uses `ping_exporter`).
//!
//! Two forms are provided:
//!
//! * [`node_exporter_samples`] / [`ping_mesh_samples`] are pure functions
//!   returning owned [`Sample`]s — the reference implementation, handy in
//!   tests and one-off probes.
//! * [`ExporterLayout`] is the interned fast path the scrape loop uses: it
//!   interns every series key into the store **once** and caches the
//!   [`SeriesId`]s, so each subsequent scrape appends raw values without
//!   constructing a single `SeriesKey` or `String` — and the snapshot can be
//!   assembled back out of the store through the same ids.

use crate::metrics::{MetricKind, Sample, SeriesKey};
use crate::snapshot::{ClusterSnapshot, NodeTelemetry};
use crate::store::{SeriesId, TimeSeriesStore};
use crate::{
    METRIC_NODE_LOAD1, METRIC_NODE_MEM_AVAILABLE, METRIC_NODE_RX_BYTES, METRIC_NODE_TX_BYTES,
    METRIC_PING_RTT,
};
use cluster::ClusterState;
use simcore::{SimDuration, SimTime};
use simnet::Network;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide generation source for [`ExporterLayout`] stamps. Starts at 1
/// so 0 can mean "no layout" on the snapshot side.
static LAYOUT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Collect node-exporter samples for every node in the cluster.
///
/// Counters (tx/rx bytes) come from the network's interface counters; gauges
/// (load, available memory) come from the cluster's host-load model.
pub fn node_exporter_samples(
    cluster: &ClusterState,
    network: &Network,
    now: SimTime,
) -> Vec<Sample> {
    let mut samples = Vec::with_capacity(cluster.nodes().len() * 4);
    for node in cluster.nodes() {
        let instance = node.name.as_str();
        let counters = network.counters(node.net_id);
        samples.push(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_LOAD1, instance),
            node.cpu_load(),
            now,
        ));
        samples.push(Sample::gauge(
            SeriesKey::per_node(METRIC_NODE_MEM_AVAILABLE, instance),
            node.memory_available(),
            now,
        ));
        samples.push(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_TX_BYTES, instance),
            counters.tx_bytes,
            now,
        ));
        samples.push(Sample::counter(
            SeriesKey::per_node(METRIC_NODE_RX_BYTES, instance),
            counters.rx_bytes,
            now,
        ));
    }
    samples
}

/// Collect full-mesh ping samples: one `ping_rtt_seconds{source, target}`
/// gauge per ordered node pair (excluding self-pairs).
///
/// The jitter seed mixes the pair identity and the scrape time so repeated
/// scrapes see realistic variation while remaining reproducible.
pub fn ping_mesh_samples(cluster: &ClusterState, network: &Network, now: SimTime) -> Vec<Sample> {
    let nodes = cluster.nodes();
    let mut samples = Vec::with_capacity(nodes.len() * nodes.len());
    for a in nodes {
        for b in nodes {
            if a.name == b.name {
                continue;
            }
            let seed = pair_seed(a.net_id.0 as u64, b.net_id.0 as u64, now);
            let rtt = network.current_rtt(a.net_id, b.net_id, seed);
            samples.push(Sample::gauge(
                SeriesKey::new(
                    METRIC_PING_RTT,
                    &[("source", a.name.as_str()), ("target", b.name.as_str())],
                ),
                rtt.as_secs_f64(),
                now,
            ));
        }
    }
    samples
}

/// Deterministic jitter seed for a (source, target, time) triple.
pub(crate) fn pair_seed(a: u64, b: u64, now: SimTime) -> u64 {
    let mut h = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    h ^= now.as_nanos().wrapping_mul(0x1656_67B1_9E37_79F9);
    h
}

/// The interned exporter set for one cluster: every series the node and
/// ping-mesh exporters emit, pre-interned into a store.
///
/// Built once (and rebuilt only if the cluster's node table changes); after
/// that, scraping ([`ExporterLayout::scrape_into`]) and snapshot assembly
/// ([`ExporterLayout::snapshot_into`]) are pure id-indexed work: no
/// `SeriesKey` construction, no label lookups, no `String` round-trips.
///
/// The layout is generic over the interned id type: the flat store's
/// [`SeriesId`] by default, the sharded pipeline's
/// [`crate::shards::ShardedSeriesId`] in `crate::ingest`. Every build stamps
/// a process-unique **generation** so downstream consumers (snapshot scratch
/// reuse) can detect "same layout as last time" with one integer compare
/// instead of a name-table comparison.
#[derive(Debug, Clone)]
pub struct ExporterLayout<Id = SeriesId> {
    /// Process-unique build stamp (never 0).
    pub(crate) generation: u64,
    /// Node names in cluster [`cluster::NodeId`] order.
    pub(crate) node_names: Vec<String>,
    /// Network interface of each node, aligned with `node_names`.
    pub(crate) net_ids: Vec<simnet::NodeId>,
    /// `node_load1` series per node.
    pub(crate) load1: Vec<Id>,
    /// `node_memory_MemAvailable_bytes` series per node.
    pub(crate) mem: Vec<Id>,
    /// `node_network_transmit_bytes_total` series per node.
    pub(crate) tx: Vec<Id>,
    /// `node_network_receive_bytes_total` series per node.
    pub(crate) rx: Vec<Id>,
    /// `(source index, target index, series)` per ordered ping pair.
    pub(crate) pings: Vec<(u32, u32, Id)>,
}

impl<Id: Copy> ExporterLayout<Id> {
    /// Intern every exporter series for `cluster` through `intern` and
    /// capture the resulting ids. Intern order matches the legacy sample
    /// order (per node: load, memory, tx, rx; then the ordered ping pairs) so
    /// the store's per-name buckets stay in cluster order.
    pub fn build_with(
        cluster: &ClusterState,
        mut intern: impl FnMut(&SeriesKey, MetricKind) -> Id,
    ) -> Self {
        let nodes = cluster.nodes();
        let mut layout = ExporterLayout {
            // ordering: Relaxed — the generation is only a uniqueness tag for
            // cache invalidation; no memory is published through it.
            generation: LAYOUT_GENERATION.fetch_add(1, Ordering::Relaxed),
            node_names: Vec::with_capacity(nodes.len()),
            net_ids: Vec::with_capacity(nodes.len()),
            load1: Vec::with_capacity(nodes.len()),
            mem: Vec::with_capacity(nodes.len()),
            tx: Vec::with_capacity(nodes.len()),
            rx: Vec::with_capacity(nodes.len()),
            pings: Vec::with_capacity(nodes.len() * nodes.len().saturating_sub(1)),
        };
        for node in nodes {
            let instance = node.name.as_str();
            layout.node_names.push(node.name.clone());
            layout.net_ids.push(node.net_id);
            layout.load1.push(intern(
                &SeriesKey::per_node(METRIC_NODE_LOAD1, instance),
                MetricKind::Gauge,
            ));
            layout.mem.push(intern(
                &SeriesKey::per_node(METRIC_NODE_MEM_AVAILABLE, instance),
                MetricKind::Gauge,
            ));
            layout.tx.push(intern(
                &SeriesKey::per_node(METRIC_NODE_TX_BYTES, instance),
                MetricKind::Counter,
            ));
            layout.rx.push(intern(
                &SeriesKey::per_node(METRIC_NODE_RX_BYTES, instance),
                MetricKind::Counter,
            ));
        }
        for (a, node_a) in nodes.iter().enumerate() {
            for (b, node_b) in nodes.iter().enumerate() {
                if a == b {
                    continue;
                }
                let id = intern(
                    &SeriesKey::new(
                        METRIC_PING_RTT,
                        &[
                            ("source", node_a.name.as_str()),
                            ("target", node_b.name.as_str()),
                        ],
                    ),
                    MetricKind::Gauge,
                );
                layout.pings.push((a as u32, b as u32, id));
            }
        }
        layout
    }

    /// True when this layout still describes `cluster`'s node table — same
    /// names in the same order *and* the same network interfaces (a rebuilt
    /// cluster can keep node names while permuting `net_id`s; reusing the
    /// cached ids would then scrape the wrong interface's counters).
    pub fn matches(&self, cluster: &ClusterState) -> bool {
        cluster.names_match(&self.node_names)
            && cluster
                .nodes()
                .iter()
                .zip(&self.net_ids)
                .all(|(node, &net_id)| node.net_id == net_id)
    }

    /// Node names in cluster id order.
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// This build's process-unique generation stamp (never 0). Two layouts
    /// share a generation only when they are clones of the same build, so an
    /// unchanged generation proves an unchanged node table.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Shared snapshot-assembly body, generic over the store accessors (the
    /// same pattern [`ExporterLayout::build_with`] uses for interning): the
    /// flat path reads one store, the sharded path reads per-shard guards.
    /// Keeping the loop in one place keeps the two paths float-op-identical,
    /// which the "concurrent snapshots are byte-identical to sequential"
    /// guarantee depends on.
    pub(crate) fn assemble_with(
        &self,
        at: SimTime,
        snap: &mut ClusterSnapshot,
        mut instant: impl FnMut(Id, SimTime) -> Option<f64>,
        mut rate: impl FnMut(Id, SimTime) -> Option<f64>,
    ) {
        snap.reset_for_generation(at, self.generation, &self.node_names);
        for i in 0..self.node_names.len() {
            let load = instant(self.load1[i], at);
            let mem = instant(self.mem[i], at);
            if load.is_none() && mem.is_none() {
                continue;
            }
            snap.set_node_by_id(
                cluster::NodeId(i as u32),
                NodeTelemetry {
                    cpu_load: load.unwrap_or(0.0),
                    memory_available_bytes: mem.unwrap_or(0.0),
                    tx_rate: rate(self.tx[i], at).unwrap_or(0.0),
                    rx_rate: rate(self.rx[i], at).unwrap_or(0.0),
                },
            );
        }
        for &(a, b, id) in &self.pings {
            if let Some(rtt) = instant(id, at) {
                snap.insert_rtt_by_id(cluster::NodeId(a), cluster::NodeId(b), rtt);
            }
        }
    }
}

impl ExporterLayout {
    /// Intern every exporter series for `cluster` into `store` and capture
    /// the resulting ids (see [`ExporterLayout::build_with`]).
    pub fn build(cluster: &ClusterState, store: &mut TimeSeriesStore) -> Self {
        Self::build_with(cluster, |key, kind| store.intern(key, kind))
    }

    /// Scrape all exporters at `now`, appending through pre-interned ids.
    /// Emits exactly the samples [`node_exporter_samples`] and
    /// [`ping_mesh_samples`] would, without building any of them.
    pub fn scrape_into(
        &self,
        cluster: &ClusterState,
        network: &Network,
        now: SimTime,
        store: &mut TimeSeriesStore,
    ) {
        for (i, node) in cluster.nodes().iter().enumerate() {
            let counters = network.counters(self.net_ids[i]);
            store.append_value(self.load1[i], node.cpu_load(), now);
            store.append_value(self.mem[i], node.memory_available(), now);
            store.append_value(self.tx[i], counters.tx_bytes, now);
            store.append_value(self.rx[i], counters.rx_bytes, now);
        }
        for &(a, b, id) in &self.pings {
            let (src, dst) = (self.net_ids[a as usize], self.net_ids[b as usize]);
            let seed = pair_seed(src.0 as u64, dst.0 as u64, now);
            let rtt = network.current_rtt(src, dst, seed);
            store.append_value(id, rtt.as_secs_f64(), now);
        }
    }

    /// Assemble the scheduler-facing snapshot at `at` straight through the
    /// interned ids, reusing `snap`'s storage. Produces exactly what
    /// [`ClusterSnapshot::from_store`] would, minus every name lookup. A
    /// scratch snapshot last reset by this same layout build skips the
    /// name-table comparison entirely (generation fast path).
    pub fn snapshot_into(
        &self,
        store: &TimeSeriesStore,
        at: SimTime,
        rate_window: SimDuration,
        snap: &mut ClusterSnapshot,
    ) {
        self.assemble_with(
            at,
            snap,
            |id, at| store.instant_id(id, at),
            |id, at| store.rate_id(id, at, rate_window),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{Node, Resources};
    use simcore::SimDuration;
    use simnet::{gbps, mbps, FlowId, NodeId, TopologyBuilder};

    fn setup() -> (ClusterState, Network) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-3", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(33), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        for (i, name) in ["node-1", "node-2", "node-3"].iter().enumerate() {
            cluster.add_node(Node::new(
                *name,
                NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                if i < 2 { "UCSD" } else { "FIU" },
            ));
        }
        (cluster, network)
    }

    #[test]
    fn node_exporter_emits_four_metrics_per_node() {
        let (cluster, network) = setup();
        let samples = node_exporter_samples(&cluster, &network, SimTime::from_secs(5));
        assert_eq!(samples.len(), 3 * 4);
        let load_samples: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.key.name == METRIC_NODE_LOAD1)
            .collect();
        assert_eq!(load_samples.len(), 3);
        assert!(load_samples.iter().all(|s| s.value > 0.0));
        let mem: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.key.name == METRIC_NODE_MEM_AVAILABLE)
            .collect();
        assert!(mem.iter().all(|s| s.value > 6.0 * 1024.0 * 1024.0 * 1024.0));
        // Idle network: counters are zero.
        assert!(samples
            .iter()
            .filter(|s| s.key.name == METRIC_NODE_TX_BYTES)
            .all(|s| s.value == 0.0));
    }

    #[test]
    fn tx_counters_grow_after_traffic() {
        let (cluster, mut network) = setup();
        let _: FlowId = network.start_flow(
            NodeId(0),
            NodeId(2),
            10_000_000.0,
            simnet::flow::FlowKind::Background,
        );
        network.advance_to(SimTime::from_secs(5));
        let samples = node_exporter_samples(&cluster, &network, SimTime::from_secs(5));
        let tx_node1 = samples
            .iter()
            .find(|s| {
                s.key.name == METRIC_NODE_TX_BYTES && s.key.label("instance") == Some("node-1")
            })
            .unwrap();
        assert!(tx_node1.value > 0.0);
        let rx_node3 = samples
            .iter()
            .find(|s| {
                s.key.name == METRIC_NODE_RX_BYTES && s.key.label("instance") == Some("node-3")
            })
            .unwrap();
        assert!((rx_node3.value - tx_node1.value).abs() < 1.0);
    }

    #[test]
    fn ping_mesh_covers_all_ordered_pairs() {
        let (cluster, network) = setup();
        let samples = ping_mesh_samples(&cluster, &network, SimTime::from_secs(1));
        assert_eq!(samples.len(), 3 * 2);
        // Inter-site pairs see the WAN RTT (~66 ms), intra-site pairs are sub-millisecond.
        let inter = samples
            .iter()
            .find(|s| {
                s.key.label("source") == Some("node-1") && s.key.label("target") == Some("node-3")
            })
            .unwrap();
        assert!(inter.value > 0.05, "inter-site RTT {}", inter.value);
        let intra = samples
            .iter()
            .find(|s| {
                s.key.label("source") == Some("node-1") && s.key.label("target") == Some("node-2")
            })
            .unwrap();
        assert!(intra.value < 0.005, "intra-site RTT {}", intra.value);
        // No self-pings.
        assert!(!samples
            .iter()
            .any(|s| s.key.label("source") == s.key.label("target")));
    }

    #[test]
    fn ping_mesh_is_deterministic_for_same_time() {
        let (cluster, network) = setup();
        let a = ping_mesh_samples(&cluster, &network, SimTime::from_secs(7));
        let b = ping_mesh_samples(&cluster, &network, SimTime::from_secs(7));
        assert_eq!(a, b);
        let c = ping_mesh_samples(&cluster, &network, SimTime::from_secs(8));
        // Jitter varies with the scrape time (values differ even if close).
        assert_ne!(a, c);
    }

    #[test]
    fn interned_scrape_matches_sample_building_path() {
        let (cluster, network) = setup();
        let times = [SimTime::from_secs(1), SimTime::from_secs(6)];

        // Reference path: build owned samples and append them.
        let mut reference = TimeSeriesStore::new();
        for &t in &times {
            reference.append_all(node_exporter_samples(&cluster, &network, t));
            reference.append_all(ping_mesh_samples(&cluster, &network, t));
        }

        // Interned path: intern once, then append raw values.
        let mut interned = TimeSeriesStore::new();
        let layout = ExporterLayout::build(&cluster, &mut interned);
        assert!(layout.matches(&cluster));
        assert_eq!(layout.node_names(), &cluster.node_names()[..]);
        for &t in &times {
            layout.scrape_into(&cluster, &network, t, &mut interned);
        }

        assert_eq!(reference.series_count(), interned.series_count());
        assert_eq!(reference.point_count(), interned.point_count());
        for key in reference.keys() {
            let at = SimTime::from_secs(10);
            assert_eq!(
                reference.instant(key, at),
                interned.instant(key, at),
                "{key}"
            );
        }

        // And the id-indexed snapshot equals the generic store assembly.
        let at = SimTime::from_secs(8);
        let window = SimDuration::from_secs(30);
        let generic = ClusterSnapshot::from_store(&interned, at, window);
        let mut fast = ClusterSnapshot::default();
        layout.snapshot_into(&interned, at, window, &mut fast);
        assert_eq!(fast, generic);
        // Scratch reuse converges to the same value.
        layout.snapshot_into(&interned, at, window, &mut fast);
        assert_eq!(fast, generic);
    }

    #[test]
    fn layout_generations_are_unique_and_gate_the_snapshot_fast_path() {
        let (cluster, network) = setup();
        let mut store = TimeSeriesStore::new();
        let layout = ExporterLayout::build(&cluster, &mut store);
        let rebuilt = ExporterLayout::build(&cluster, &mut store);
        // Every build gets a fresh stamp, even over an identical cluster; a
        // clone shares its origin's stamp (same ids, same table).
        assert_ne!(layout.generation(), rebuilt.generation());
        assert_ne!(layout.generation(), 0);
        assert_eq!(layout.clone().generation(), layout.generation());

        layout.scrape_into(&cluster, &network, SimTime::from_secs(5), &mut store);
        let at = SimTime::from_secs(6);
        let window = SimDuration::from_secs(30);
        let mut snap = ClusterSnapshot::default();
        layout.snapshot_into(&store, at, window, &mut snap);
        let fresh = ClusterSnapshot::from_store(&store, at, window);
        assert_eq!(snap, fresh);
        // Generation fast path (same layout, reused scratch) converges.
        layout.snapshot_into(&store, at, window, &mut snap);
        assert_eq!(snap, fresh);

        // A mutated layout (smaller cluster) forces the slow path: the
        // scratch's node table must shrink to the new layout's names.
        let mut small = ClusterState::new();
        small.add_node(cluster.nodes()[0].clone());
        let mut small_store = TimeSeriesStore::new();
        let small_layout = ExporterLayout::build(&small, &mut small_store);
        small_layout.scrape_into(&small, &network, SimTime::from_secs(5), &mut small_store);
        small_layout.snapshot_into(&small_store, at, window, &mut snap);
        assert_eq!(snap.node_names(), vec!["node-1"]);
        assert!(snap.node("node-2").is_none());
    }

    #[test]
    fn layout_detects_cluster_changes() {
        let (cluster, _network) = setup();
        let mut store = TimeSeriesStore::new();
        let layout = ExporterLayout::build(&cluster, &mut store);
        let mut grown = cluster.clone();
        grown.add_node(Node::new(
            "node-4",
            NodeId(3),
            Resources::from_cores_and_gib(6, 8),
            "FIU",
        ));
        assert!(!layout.matches(&grown));
    }
}
