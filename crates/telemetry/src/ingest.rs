//! Sharded, concurrent telemetry ingest.
//!
//! [`crate::ScrapeManager`] is synchronous and single-owner: scraping
//! serializes with decision bursts, which is exactly the scale gap on
//! clusters beyond a few hundred nodes. [`ConcurrentScrapeManager`] removes
//! it by combining the metric-name sharding of [`crate::shards`] with a
//! writer/epoch pipeline:
//!
//! * **Shards.** The store is split by metric name behind per-shard locks
//!   ([`crate::ShardRouter`]), so appends and retention pruning of different
//!   metric names never contend.
//! * **Writer pipeline.** [`ConcurrentScrapeManager::ingest`] runs a scrape
//!   schedule through a two-stage pipeline over `crossbeam` scoped threads
//!   and bounded channels: *evaluation workers* run the exporters for whole
//!   scrape rounds in parallel (the exporters are pure functions of
//!   `(cluster, network, t)`, so rounds evaluate independently), and
//!   *per-shard writer workers* drain bounded queues of evaluated batches
//!   into their shard. A dispatcher commits batches strictly in schedule
//!   order, so the stored bytes are identical to a sequential scrape no
//!   matter how the threads interleave.
//! * **Epoch counter.** Commits are bracketed by a seqlock-style generation
//!   counter (odd = round in flight). Readers ([`TelemetryReader`],
//!   obtainable while ingest runs on another thread) retry until they observe
//!   the same even epoch before and after assembly — a snapshot therefore
//!   reflects only fully-committed scrape rounds, never a torn one.
//!
//! The synchronous [`crate::ScrapeManager`] remains the single-owner wrapper
//! (same cadence grid, flat store) for callers that don't need overlap.

use crate::exporters::ExporterLayout;
use crate::publish::{PublishedEpoch, PublishedSnapshot, SnapshotPublisher};
use crate::scrape::{ScrapeCadence, ScrapeConfig};
use crate::shards::{ShardRouter, ShardedSeriesId};
use crate::snapshot::{ClusterSnapshot, SnapshotSource};
use crate::store::{SeriesId, TimeSeriesStore};
use cluster::ClusterState;
use crossbeam::channel;
use parking_lot::{Mutex, MutexGuard};
use simcore::{SimDuration, SimTime};
use simnet::Network;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The exporter layout with sharded series identities.
type ShardedLayout = ExporterLayout<ShardedSeriesId>;

/// One evaluated append: shard-local series, value, timestamp.
type Append = (SeriesId, f64, SimTime);

/// Tuning knobs of the concurrent ingest pipeline.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Number of store shards (metric names are routed across these).
    pub shard_count: usize,
    /// Number of exporter-evaluation workers used by
    /// [`ConcurrentScrapeManager::ingest`] (scoped per call: they borrow the
    /// cluster and network).
    pub eval_workers: usize,
    /// Number of long-lived writer workers draining append batches into the
    /// shards (each worker owns a fixed subset of shards).
    pub writer_workers: usize,
    /// Bounded-queue depth between pipeline stages (in chunks): the
    /// backpressure that keeps evaluation from outrunning the writers.
    pub queue_depth: usize,
    /// Scrape rounds committed per epoch flip. Batching rounds amortizes the
    /// per-commit channel and epoch traffic; readers still only ever observe
    /// whole rounds (a chunk boundary is a round boundary).
    pub chunk_rounds: usize,
    /// Adaptive fallback: when one scrape round evaluates fewer than this
    /// many series (exporter series per round — `4 × nodes + ping pairs`),
    /// [`ConcurrentScrapeManager::ingest`] routes the schedule through the
    /// synchronous inline path instead of the worker pipeline. Small worlds
    /// (the 8-node paper testbed evaluates 88 series per round) sit below
    /// the cross-thread overhead floor, so the fallback makes the concurrent
    /// manager unconditionally safe to default to. Set to 0 to force the
    /// pipeline regardless of size.
    pub sync_work_threshold: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let cores = simcore::parallel::default_workers();
        IngestConfig {
            shard_count: 8,
            // On a two-core box a single evaluation lane (inline on the
            // dispatcher, overlapped with the writer) beats spawning
            // evaluation threads; wider machines fan evaluation out.
            eval_workers: if cores <= 2 { 1 } else { (cores - 1).min(8) },
            writer_workers: (cores / 2).clamp(1, 8),
            queue_depth: 4,
            chunk_rounds: 32,
            // Between the 8-node paper world (88 series/round, loses to
            // sequential even on wide boxes) and the 64-node world
            // (4288 series/round, where the pipeline wins ≥2× on 2 cores).
            sync_work_threshold: 1024,
        }
    }
}

/// State shared between the ingest side and every [`TelemetryReader`].
#[derive(Debug)]
struct IngestShared {
    /// Seqlock-style commit counter: odd while a round (or chunk of rounds)
    /// is being applied to the shards, even when fully committed.
    epoch: AtomicU64,
    router: ShardRouter,
    /// One flat store per shard, each behind its own lock.
    shards: Vec<Mutex<TimeSeriesStore>>,
    /// The current exporter layout (swapped atomically on cluster changes;
    /// readers clone the `Arc` and never see a half-built layout).
    layout: Mutex<Option<Arc<ShardedLayout>>>,
}

impl IngestShared {
    fn new(config: &ScrapeConfig, ingest: &IngestConfig) -> Self {
        let router = ShardRouter::new(ingest.shard_count);
        let shards = (0..router.shard_count())
            .map(|_| match config.retention {
                Some(r) => Mutex::new(TimeSeriesStore::with_retention(r)),
                None => Mutex::new(TimeSeriesStore::new()),
            })
            .collect();
        IngestShared {
            epoch: AtomicU64::new(0),
            router,
            shards,
            layout: Mutex::new(None),
        }
    }

    /// Mark a commit as in flight (epoch becomes odd).
    fn begin_commit(&self) {
        // ordering: AcqRel — the Release half orders the odd flip before any
        // shard mutation; the Acquire half pairs with `end_commit`.
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Mark the in-flight commit as complete (epoch becomes even).
    fn end_commit(&self) {
        // ordering: AcqRel — the Release half publishes every shard write of
        // this commit before the even flip readers wait for.
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Assemble a consistent snapshot: retry until the same even epoch is
    /// observed before and after reading the shards, so only fully-committed
    /// rounds are ever visible.
    fn snapshot_into(&self, at: SimTime, rate_window: SimDuration, snap: &mut ClusterSnapshot) {
        let mut waits = 0u32;
        loop {
            // ordering: Acquire pairs with the AcqRel epoch flips so an even
            // value here means the prior commit's shard writes are visible.
            let before = self.epoch.load(Ordering::Acquire);
            if before & 1 == 1 {
                // Apply phases last microseconds: spin first, fall back to
                // yielding only when the wait drags on (e.g. an oversubscribed
                // box where the writers lost the CPU mid-apply).
                waits += 1;
                if waits > 512 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                continue;
            }
            let layout = self.layout.lock().clone();
            match layout {
                None => {
                    // No scrape yet: an empty snapshot stamped with `at`,
                    // matching the synchronous manager's pre-scrape fallback.
                    snap.clear();
                    snap.time = at;
                }
                Some(layout) => {
                    // Lock every shard in index order (writers only ever hold
                    // one shard lock at a time, so this cannot deadlock) and
                    // assemble exactly what the sequential interned path
                    // would.
                    let guards: Vec<MutexGuard<'_, TimeSeriesStore>> =
                        self.shards.iter().map(Mutex::lock).collect();
                    assemble_sharded(&layout, &guards, at, rate_window, snap);
                }
            }
            // ordering: Acquire — an unchanged even epoch proves no commit
            // overlapped the reads above, so the assembled snapshot is
            // consistent.
            let after = self.epoch.load(Ordering::Acquire);
            if before == after {
                return;
            }
        }
    }
}

/// [`ExporterLayout::snapshot_into`]'s shared assembly body over locked
/// shard guards: the loops (and therefore the float operations) are the
/// flat sequential path's own, so the assembled snapshot is byte-identical
/// given identical stored points.
fn assemble_sharded(
    layout: &ShardedLayout,
    shards: &[MutexGuard<'_, TimeSeriesStore>],
    at: SimTime,
    rate_window: SimDuration,
    snap: &mut ClusterSnapshot,
) {
    layout.assemble_with(
        at,
        snap,
        |id, at| shards[id.shard as usize].instant_id(id.series, at),
        |id, at| shards[id.shard as usize].rate_id(id.series, at, rate_window),
    );
}

/// Evaluate one scrape round (every exporter series at `now`) into per-shard
/// append batches, appending onto `batches`. Pure with respect to the shards:
/// exporters only read `(cluster, network, now)`, which is what lets rounds
/// evaluate concurrently.
fn evaluate_round_into(
    layout: &ShardedLayout,
    cluster: &ClusterState,
    network: &Network,
    now: SimTime,
    batches: &mut [Vec<Append>],
) {
    for (i, node) in cluster.nodes().iter().enumerate() {
        let counters = network.counters(layout.net_ids[i]);
        let push = |batches: &mut [Vec<Append>], id: ShardedSeriesId, value: f64| {
            batches[id.shard as usize].push((id.series, value, now));
        };
        push(batches, layout.load1[i], node.cpu_load());
        push(batches, layout.mem[i], node.memory_available());
        push(batches, layout.tx[i], counters.tx_bytes);
        push(batches, layout.rx[i], counters.rx_bytes);
    }
    for &(a, b, id) in &layout.pings {
        let (src, dst) = (layout.net_ids[a as usize], layout.net_ids[b as usize]);
        let seed = crate::exporters::pair_seed(src.0 as u64, dst.0 as u64, now);
        let rtt = network.current_rtt(src, dst, seed);
        batches[id.shard as usize].push((id.series, rtt.as_secs_f64(), now));
    }
}

/// Per-chunk commit coordination between the writer workers of one chunk:
/// the *lead* writer flips the epoch odd before any shard is touched, the
/// last writer to finish flips it even. Readers therefore see the epoch odd
/// exactly for the duration of the apply phase — never while the dispatcher
/// is evaluating the next chunk.
#[derive(Debug)]
struct ChunkToken {
    /// Set by the lead writer once the epoch has been flipped odd; the other
    /// writers of the chunk spin (nanoseconds) until it is.
    begin_done: std::sync::atomic::AtomicBool,
    /// Writers still to finish their part of the chunk.
    pending: AtomicUsize,
}

/// One dispatch to a writer worker: the chunk's commit token, whether this
/// worker leads the commit, and the `(shard, appends)` batches for the
/// shards it owns.
struct WriterMsg {
    token: Arc<ChunkToken>,
    lead: bool,
    groups: Vec<(usize, Vec<Append>)>,
}

impl std::fmt::Debug for WriterMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WriterMsg { .. }")
    }
}

/// The long-lived writer workers: spawned once (lazily, on the first
/// [`ConcurrentScrapeManager::ingest`]) and kept across calls, because
/// thread spawn costs dwarf a scrape round. Each worker owns a fixed subset
/// of shards (`assignment[shard] → worker`), drains its bounded queue and
/// acks every applied batch.
#[derive(Debug)]
struct WriterPool {
    txs: Vec<channel::Sender<WriterMsg>>,
    ack_rx: channel::Receiver<()>,
    /// Shard index → owning writer index.
    assignment: Vec<usize>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WriterPool {
    fn spawn(shared: &Arc<IngestShared>, writer_workers: usize, queue_depth: usize) -> Self {
        let shard_count = shared.shards.len();
        let workers = writer_workers.clamp(1, shard_count);
        let assignment: Vec<usize> = (0..shard_count).map(|shard| shard % workers).collect();
        let (ack_tx, ack_rx) = channel::bounded::<()>(workers.max(1));
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::bounded::<WriterMsg>(queue_depth.max(1));
            txs.push(tx);
            let ack_tx = ack_tx.clone();
            let shared = Arc::clone(shared);
            handles.push(std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    if msg.lead {
                        shared.begin_commit();
                        // ordering: Release orders the odd epoch flip above
                        // before the flag the follower writers wait on.
                        msg.token.begin_done.store(true, Ordering::Release);
                    } else {
                        // The lead writer of this chunk flips the epoch odd
                        // before anyone touches a shard; wait for it. The
                        // window is nanoseconds unless the lead lost the CPU,
                        // so fall back to yielding rather than burning the
                        // core the lead needs.
                        let mut spins = 0u32;
                        // ordering: Acquire pairs with the lead's Release
                        // store, so the epoch is odd before we touch a shard.
                        while !msg.token.begin_done.load(Ordering::Acquire) {
                            spins += 1;
                            if spins > 512 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                    for (shard, appends) in msg.groups {
                        let mut store = shared.shards[shard].lock();
                        for (id, value, t) in appends {
                            store.append_value_deferred_prune(id, value, t);
                        }
                        // One prune per shard per chunk instead of one per
                        // append: the monotone cutoff makes the final live
                        // window identical, and nothing observes the
                        // intermediate states of an uncommitted chunk.
                        store.prune_all_to_watermark();
                    }
                    // ordering: AcqRel — Release publishes this writer's shard
                    // appends; Acquire on the final decrement makes every
                    // peer's appends visible before `end_commit` flips even.
                    if msg.token.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        shared.end_commit();
                    }
                    if ack_tx.send(()).is_err() {
                        break;
                    }
                }
            }));
        }
        WriterPool {
            txs,
            ack_rx,
            assignment,
            handles,
        }
    }

    /// Dispatch one chunk's batches to the owning writers (the first one
    /// leads the commit), returning how many acks to collect. The commit
    /// itself — epoch flips included — is performed by the writers, so the
    /// caller is free to evaluate the next chunk while this one applies.
    fn dispatch(&self, batches: Vec<Vec<Append>>) -> usize {
        let mut msgs: Vec<Vec<(usize, Vec<Append>)>> =
            (0..self.txs.len()).map(|_| Vec::new()).collect();
        for (shard, appends) in batches.into_iter().enumerate() {
            if !appends.is_empty() {
                msgs[self.assignment[shard]].push((shard, appends));
            }
        }
        let dispatched = msgs.iter().filter(|m| !m.is_empty()).count();
        if dispatched == 0 {
            return 0;
        }
        let token = Arc::new(ChunkToken {
            begin_done: std::sync::atomic::AtomicBool::new(false),
            pending: AtomicUsize::new(dispatched),
        });
        let mut lead = true;
        for (writer, groups) in msgs.into_iter().enumerate() {
            if groups.is_empty() {
                continue;
            }
            self.txs[writer]
                .send(WriterMsg {
                    token: Arc::clone(&token),
                    lead,
                    groups,
                })
                .expect("writer workers alive");
            lead = false;
        }
        dispatched
    }
}

/// A sharded scrape manager whose ingest runs concurrently with readers.
///
/// Same cadence grid and exporter set as [`crate::ScrapeManager`]; the store
/// is sharded by metric name behind per-shard locks, single rounds commit
/// through the epoch protocol, and [`ConcurrentScrapeManager::ingest`]
/// pipelines whole scrape schedules across worker threads. Hand a
/// [`TelemetryReader`] to the scheduler (it implements
/// [`SnapshotSource`]) and decision bursts overlap with scraping.
#[derive(Debug)]
pub struct ConcurrentScrapeManager {
    config: ScrapeConfig,
    ingest: IngestConfig,
    shared: Arc<IngestShared>,
    layout: Option<Arc<ShardedLayout>>,
    writers: Option<WriterPool>,
    cadence: ScrapeCadence,
    scrape_count: u64,
    /// Epoch publisher, activated lazily by
    /// [`ConcurrentScrapeManager::published_handle`]: once a handle has been handed
    /// out, every committed round (or pipelined chunk) also publishes an
    /// immutable snapshot, so published readers never touch the shards.
    publisher: Option<SnapshotPublisher>,
    /// Timestamp of the last committed scrape round (publish-on-activation:
    /// a handle requested after scrapes immediately observes current state).
    last_scrape: Option<SimTime>,
}

impl Drop for ConcurrentScrapeManager {
    fn drop(&mut self) {
        if let Some(pool) = self.writers.take() {
            // Disconnect the queues so the workers observe shutdown, then
            // join them (they only hold `Arc`s, but a clean join keeps the
            // thread count honest in tests and benches).
            drop(pool.txs);
            drop(pool.ack_rx);
            for handle in pool.handles {
                let _ = handle.join();
            }
        }
    }
}

impl ConcurrentScrapeManager {
    /// Create a manager with the given scrape configuration and default
    /// ingest tuning.
    pub fn new(config: ScrapeConfig) -> Self {
        Self::with_ingest(config, IngestConfig::default())
    }

    /// Create a manager with explicit ingest tuning.
    pub fn with_ingest(config: ScrapeConfig, ingest: IngestConfig) -> Self {
        let shared = Arc::new(IngestShared::new(&config, &ingest));
        ConcurrentScrapeManager {
            config,
            ingest,
            shared,
            layout: None,
            writers: None,
            cadence: ScrapeCadence::default(),
            scrape_count: 0,
            publisher: None,
            last_scrape: None,
        }
    }

    /// The scrape configuration.
    pub fn config(&self) -> &ScrapeConfig {
        &self.config
    }

    /// The ingest tuning.
    pub fn ingest_config(&self) -> &IngestConfig {
        &self.ingest
    }

    /// Number of scrape rounds performed.
    pub fn scrape_count(&self) -> u64 {
        self.scrape_count
    }

    /// When the next periodic scrape is due (immediately if never scraped).
    pub fn next_scrape_due(&self) -> SimTime {
        self.cadence.next_due()
    }

    /// Number of distinct series across all shards.
    pub fn series_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.lock().series_count())
            .sum()
    }

    /// Total number of retained points across all shards.
    pub fn point_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.lock().point_count())
            .sum()
    }

    /// A cheap cloneable read handle usable from other threads while this
    /// manager ingests.
    pub fn reader(&self) -> TelemetryReader {
        TelemetryReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A cheap cloneable handle over **epoch-published immutable snapshots**
    /// (see [`crate::publish`]): one consistent [`ClusterSnapshot`] per
    /// committed round, resolved by readers with a single atomic load and an
    /// `Arc` clone — no shard locks, no waiting out in-flight commits, so
    /// fetch latency is flat under live ingest.
    ///
    /// Publishing activates on the first call (scrape managers without a
    /// handle outstanding pay nothing); state committed before activation is
    /// published immediately, so the handle never lags the store at the
    /// moment it is taken. Snapshots are published at each committed round's
    /// own scrape time with the configured rate window — byte-identical to
    /// what [`SnapshotSource::snapshot_into`] would assemble at that time.
    pub fn published_handle(&mut self) -> PublishedSnapshot {
        if self.publisher.is_none() {
            let mut publisher = SnapshotPublisher::new();
            if let Some(at) = self.last_scrape {
                let shared = &self.shared;
                let rate_window = self.config.rate_window;
                publisher.publish_with(|snap| shared.snapshot_into(at, rate_window, snap));
            }
            self.publisher = Some(publisher);
        }
        self.publisher.as_ref().expect("publisher active").handle()
    }

    /// Record a committed round at `at` and, when publishing is active,
    /// materialize + publish the next epoch's snapshot (copy-on-write over
    /// the previous epoch; in steady state only the values that scrape
    /// changed are rewritten, via the layout-generation fast path).
    fn publish_round(&mut self, at: SimTime) {
        self.last_scrape = Some(at);
        if let Some(publisher) = &mut self.publisher {
            let shared = &self.shared;
            let rate_window = self.config.rate_window;
            publisher.publish_with(|snap| shared.snapshot_into(at, rate_window, snap));
        }
    }

    /// Build (or rebuild) the sharded exporter layout when the cluster's node
    /// table changed, swapping it in atomically for readers.
    fn ensure_layout(&mut self, cluster: &ClusterState) -> Arc<ShardedLayout> {
        let rebuild = match &self.layout {
            Some(layout) => !layout.matches(cluster),
            None => true,
        };
        if rebuild {
            let shared = &self.shared;
            let layout = Arc::new(ExporterLayout::build_with(cluster, |key, kind| {
                let shard = shared.router.shard_of(&key.name);
                ShardedSeriesId {
                    shard: shard as u16,
                    series: shared.shards[shard].lock().intern(key, kind),
                }
            }));
            *self.shared.layout.lock() = Some(Arc::clone(&layout));
            self.layout = Some(layout);
        }
        self.layout.as_ref().expect("layout built above").clone()
    }

    /// Apply one chunk of evaluated batches under the epoch protocol,
    /// appending each shard's batch sequentially on the caller thread. Each
    /// batch is drained in place so the caller can reuse the buffers (and
    /// their capacity) across rounds.
    fn commit_inline(&self, batches: &mut [Vec<Append>]) {
        self.shared.begin_commit();
        for (shard, appends) in batches.iter_mut().enumerate() {
            if appends.is_empty() {
                continue;
            }
            let mut store = self.shared.shards[shard].lock();
            for (id, value, t) in appends.drain(..) {
                store.append_value(id, value, t);
            }
        }
        self.shared.end_commit();
    }

    /// Perform one scrape round at `now`, re-anchoring the periodic grid
    /// (the synchronous entry point, mirroring [`crate::ScrapeManager::scrape`]).
    pub fn scrape(&mut self, cluster: &ClusterState, network: &Network, now: SimTime) {
        let layout = self.ensure_layout(cluster);
        let mut batches = vec![Vec::new(); self.shared.router.shard_count()];
        evaluate_round_into(&layout, cluster, network, now, &mut batches);
        self.commit_inline(&mut batches);
        self.publish_round(now);
        self.scrape_count += 1;
        self.cadence.reanchor(now, self.config.interval);
    }

    /// Scrape only if the grid-aligned due time has been reached (same
    /// cadence semantics as [`crate::ScrapeManager::scrape_if_due`]).
    pub fn scrape_if_due(
        &mut self,
        cluster: &ClusterState,
        network: &Network,
        now: SimTime,
    ) -> bool {
        if !self.cadence.is_due(now) {
            return false;
        }
        let layout = self.ensure_layout(cluster);
        let mut batches = vec![Vec::new(); self.shared.router.shard_count()];
        evaluate_round_into(&layout, cluster, network, now, &mut batches);
        self.commit_inline(&mut batches);
        self.publish_round(now);
        self.scrape_count += 1;
        self.cadence.advance_on_grid(now, self.config.interval);
        true
    }

    /// Run a whole scrape schedule (`times` must be sorted ascending) through
    /// the concurrent pipeline: exporter evaluation for chunks of rounds runs
    /// in parallel (on scoped workers, or inline on the dispatcher when
    /// `eval_workers <= 1`), long-lived per-shard writer workers drain
    /// bounded queues into their shards, and chunks commit strictly in
    /// schedule order under the epoch protocol. The dispatcher always
    /// evaluates/fetches the *next* chunk before waiting for the previous
    /// chunk's acks, so evaluation and shard appends overlap even with a
    /// single evaluation lane.
    ///
    /// Store contents afterwards are **byte-identical** to calling
    /// [`ConcurrentScrapeManager::scrape`] (or the synchronous manager) once
    /// per time: parallelism changes wall-clock, never results. Readers
    /// holding a [`TelemetryReader`] observe only whole committed rounds
    /// throughout.
    pub fn ingest(&mut self, cluster: &ClusterState, network: &Network, times: &[SimTime]) {
        if times.is_empty() {
            return;
        }
        let layout = self.ensure_layout(cluster);

        // Adaptive fallback: a round on a small world evaluates so few
        // series that channel and epoch traffic dominates — route it through
        // the synchronous inline path. Store contents, committed-round
        // visibility and cadence are identical either way (the crossover is
        // pinned byte-identical by test), only the wall-clock differs.
        let series_per_round = 4 * cluster.node_count() + layout.pings.len();
        if series_per_round < self.ingest.sync_work_threshold {
            // One set of per-shard batch buffers reused (with capacity)
            // across every round: the fallback path stays allocation-free in
            // steady state.
            let mut batches = vec![Vec::new(); self.shared.router.shard_count()];
            for &t in times {
                evaluate_round_into(&layout, cluster, network, t, &mut batches);
                self.commit_inline(&mut batches);
                self.publish_round(t);
            }
            self.scrape_count += times.len() as u64;
            self.cadence
                .reanchor(*times.last().expect("non-empty"), self.config.interval);
            return;
        }

        if self.writers.is_none() {
            self.writers = Some(WriterPool::spawn(
                &self.shared,
                self.ingest.writer_workers,
                self.ingest.queue_depth,
            ));
        }
        let pool = self.writers.as_ref().expect("writer pool spawned above");
        let shard_count = self.shared.router.shard_count();
        let chunk_rounds = self.ingest.chunk_rounds.max(1);
        let chunks: Vec<&[SimTime]> = times.chunks(chunk_rounds).collect();
        let eval_workers = self.ingest.eval_workers.clamp(1, chunks.len());
        let queue_depth = self.ingest.queue_depth.max(1);
        let layout = &layout;
        let cursor = AtomicUsize::new(0);
        // Publishing, when active, happens on the dispatcher thread between
        // chunks — right after a chunk's acks are collected the epoch is even
        // and the writers are idle, so assembly never contends with appends.
        // A chunk boundary is a round boundary, so every published epoch is a
        // whole committed prefix of the schedule.
        let mut publisher = self.publisher.take();
        let publish_shared = Arc::clone(&self.shared);
        let rate_window = self.config.rate_window;

        // Exact per-shard series counts, so chunk batches are allocated at
        // final size instead of growing through reallocation.
        let mut series_per_shard = vec![0usize; shard_count];
        for ids in [&layout.load1, &layout.mem, &layout.tx, &layout.rx] {
            for id in ids.iter() {
                series_per_shard[id.shard as usize] += 1;
            }
        }
        for &(_, _, id) in &layout.pings {
            series_per_shard[id.shard as usize] += 1;
        }
        let series_per_shard = &series_per_shard;

        let evaluate_chunk = move |rounds: &[SimTime]| {
            let mut batches: Vec<Vec<Append>> = series_per_shard
                .iter()
                .map(|&series| Vec::with_capacity(series * rounds.len()))
                .collect();
            for &t in rounds {
                evaluate_round_into(layout, cluster, network, t, &mut batches);
            }
            batches
        };

        crossbeam::thread::scope(|scope| {
            // Optional stage 1: scoped evaluation workers pull chunk indices
            // from a cursor and evaluate whole rounds out of order (scoped
            // per call because they borrow the cluster and network). With a
            // single evaluation lane the dispatcher evaluates inline instead
            // and no thread is spawned at all.
            let eval_rx = if eval_workers > 1 {
                let (eval_tx, eval_rx) =
                    channel::bounded::<(usize, Vec<Vec<Append>>)>(queue_depth * eval_workers);
                let cursor = &cursor;
                let chunks_ref = &chunks;
                for _ in 0..eval_workers {
                    let eval_tx = eval_tx.clone();
                    scope.spawn(move |_| loop {
                        // ordering: Relaxed — the counter only claims chunk
                        // indices; the channel send below synchronizes the
                        // evaluated payload.
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= chunks_ref.len() {
                            break;
                        }
                        if eval_tx
                            .send((idx, evaluate_chunk(chunks_ref[idx])))
                            .is_err()
                        {
                            break;
                        }
                    });
                }
                Some(eval_rx)
            } else {
                None
            };

            // Dispatcher (this thread): obtain chunks in schedule order,
            // collect the previous chunk's acks only *after* the next chunk
            // is in hand, and hand commits to the writer pool. The epoch is
            // odd exactly while writers apply, so concurrent readers only
            // ever wait out an apply phase, never an evaluation.
            let mut pending: BTreeMap<usize, Vec<Vec<Append>>> = BTreeMap::new();
            let mut inflight = 0usize;
            for (next, chunk) in chunks.iter().enumerate() {
                let batches = match &eval_rx {
                    None => evaluate_chunk(chunk),
                    Some(eval_rx) => loop {
                        if let Some(batches) = pending.remove(&next) {
                            break batches;
                        }
                        let (idx, batches) = eval_rx.recv().expect("evaluation workers alive");
                        if idx == next {
                            break batches;
                        }
                        pending.insert(idx, batches);
                    },
                };
                for _ in 0..inflight {
                    pool.ack_rx.recv().expect("writer workers alive");
                }
                if next > 0 {
                    if let Some(publisher) = publisher.as_mut() {
                        let at = *chunks[next - 1].last().expect("chunks are non-empty");
                        publisher.publish_with(|snap| {
                            publish_shared.snapshot_into(at, rate_window, snap)
                        });
                    }
                }
                inflight = pool.dispatch(batches);
            }
            for _ in 0..inflight {
                pool.ack_rx.recv().expect("writer workers alive");
            }
            if let Some(publisher) = publisher.as_mut() {
                let at = *times.last().expect("non-empty");
                publisher.publish_with(|snap| publish_shared.snapshot_into(at, rate_window, snap));
            }
        })
        .expect("ingest workers must not panic");

        self.publisher = publisher;
        self.last_scrape = Some(*times.last().expect("non-empty"));
        self.scrape_count += times.len() as u64;
        self.cadence
            .reanchor(*times.last().expect("non-empty"), self.config.interval);
    }
}

impl SnapshotSource for ConcurrentScrapeManager {
    fn snapshot_into(&self, at: SimTime, rate_window: SimDuration, snap: &mut ClusterSnapshot) {
        self.shared.snapshot_into(at, rate_window, snap);
    }

    fn published(&self) -> Option<PublishedEpoch> {
        self.publisher.as_ref().and_then(SnapshotPublisher::latest)
    }

    fn published_epoch(&self) -> Option<u64> {
        match self.publisher.as_ref().map_or(0, SnapshotPublisher::epoch) {
            0 => None,
            epoch => Some(epoch),
        }
    }
}

/// A cloneable, thread-safe read handle over a [`ConcurrentScrapeManager`]'s
/// shards. Snapshots observe only fully-committed scrape rounds (epoch
/// protocol), even while ingest is running on another thread.
#[derive(Debug, Clone)]
pub struct TelemetryReader {
    shared: Arc<IngestShared>,
}

impl SnapshotSource for TelemetryReader {
    fn snapshot_into(&self, at: SimTime, rate_window: SimDuration, snap: &mut ClusterSnapshot) {
        self.shared.snapshot_into(at, rate_window, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScrapeManager;
    use cluster::{Node, Resources};
    use simnet::{gbps, mbps, NodeId, TopologyBuilder};

    fn setup(nodes: usize) -> (ClusterState, Network) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("A", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("B", SimDuration::from_micros(200), gbps(10.0));
        for i in 0..nodes {
            b.add_node(
                format!("node-{}", i + 1),
                if i % 2 == 0 { s0 } else { s1 },
                gbps(1.0),
                gbps(1.0),
            );
        }
        b.connect_sites(s0, s1, SimDuration::from_millis(10), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        for i in 0..nodes {
            cluster.add_node(Node::new(
                format!("node-{}", i + 1),
                NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                if i % 2 == 0 { "A" } else { "B" },
            ));
        }
        (cluster, network)
    }

    #[test]
    fn single_scrapes_match_sequential_manager() {
        let (cluster, network) = setup(3);
        let mut concurrent = ConcurrentScrapeManager::new(ScrapeConfig::default());
        let mut sequential = ScrapeManager::new(ScrapeConfig::default());
        for i in 0..6u64 {
            let t = SimTime::from_secs(i * 5);
            concurrent.scrape(&cluster, &network, t);
            sequential.scrape(&cluster, &network, t);
        }
        assert_eq!(concurrent.scrape_count(), sequential.scrape_count());
        assert_eq!(concurrent.point_count(), sequential.store().point_count());
        assert_eq!(concurrent.series_count(), sequential.store().series_count());
        let at = SimTime::from_secs(27);
        let window = SimDuration::from_secs(30);
        let mut fast = ClusterSnapshot::default();
        let mut flat = ClusterSnapshot::default();
        SnapshotSource::snapshot_into(&concurrent, at, window, &mut fast);
        sequential.snapshot_into(at, window, &mut flat);
        assert_eq!(fast, flat);
    }

    #[test]
    fn ingest_matches_round_by_round_scrapes() {
        let (cluster, network) = setup(4);
        let times: Vec<SimTime> = (0..40u64).map(|i| SimTime::from_secs(i * 5)).collect();
        let mut pipelined = ConcurrentScrapeManager::with_ingest(
            ScrapeConfig::default(),
            IngestConfig {
                shard_count: 3,
                eval_workers: 4,
                writer_workers: 2,
                queue_depth: 2,
                chunk_rounds: 4,
                sync_work_threshold: 0,
            },
        );
        pipelined.ingest(&cluster, &network, &times);
        let mut one_by_one = ConcurrentScrapeManager::new(ScrapeConfig::default());
        for &t in &times {
            one_by_one.scrape(&cluster, &network, t);
        }
        assert_eq!(pipelined.scrape_count(), 40);
        assert_eq!(pipelined.point_count(), one_by_one.point_count());
        assert_eq!(pipelined.next_scrape_due(), one_by_one.next_scrape_due());
        let at = *times.last().unwrap();
        let window = SimDuration::from_secs(30);
        let a = SnapshotSource::snapshot(&pipelined, at, window);
        let b = SnapshotSource::snapshot(&one_by_one, at, window);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn cadence_matches_sequential_manager() {
        let (cluster, network) = setup(2);
        let config = ScrapeConfig {
            interval: SimDuration::from_secs(15),
            ..Default::default()
        };
        let mut concurrent = ConcurrentScrapeManager::new(config.clone());
        let mut sequential = ScrapeManager::new(config);
        for t in [0u64, 10, 18, 29, 30, 100] {
            let now = SimTime::from_secs(t);
            assert_eq!(
                concurrent.scrape_if_due(&cluster, &network, now),
                sequential.scrape_if_due(&cluster, &network, now),
                "t = {t}"
            );
            assert_eq!(concurrent.next_scrape_due(), sequential.next_scrape_due());
        }
        assert_eq!(concurrent.scrape_count(), sequential.scrape_count());
    }

    #[test]
    fn adaptive_fallback_crossover_is_byte_identical() {
        // 3 nodes → 4·3 + 6 ping pairs = 18 series per round: far below the
        // default threshold, so `ingest` takes the synchronous path; with
        // the threshold forced to 0 the same schedule runs through the
        // worker pipeline. Snapshots either side of the crossover — and
        // against round-by-round scrapes — must be byte-identical.
        let (cluster, network) = setup(3);
        let times: Vec<SimTime> = (0..30u64).map(|i| SimTime::from_secs(i * 5)).collect();

        let mut adaptive = ConcurrentScrapeManager::new(ScrapeConfig::default());
        assert!(adaptive.ingest_config().sync_work_threshold > 18);
        adaptive.ingest(&cluster, &network, &times);
        assert!(
            adaptive.writers.is_none(),
            "below the work threshold no writer pool may be spawned"
        );

        let mut pipelined = ConcurrentScrapeManager::with_ingest(
            ScrapeConfig::default(),
            IngestConfig {
                sync_work_threshold: 0,
                ..IngestConfig::default()
            },
        );
        pipelined.ingest(&cluster, &network, &times);
        assert!(
            pipelined.writers.is_some(),
            "threshold 0 forces the pipeline"
        );

        let mut round_by_round = ConcurrentScrapeManager::new(ScrapeConfig::default());
        for &t in &times {
            round_by_round.scrape(&cluster, &network, t);
        }

        assert_eq!(adaptive.scrape_count(), 30);
        assert_eq!(adaptive.point_count(), pipelined.point_count());
        assert_eq!(adaptive.next_scrape_due(), pipelined.next_scrape_due());
        let at = *times.last().unwrap();
        let window = SimDuration::from_secs(30);
        let sync_snap = SnapshotSource::snapshot(&adaptive, at, window);
        let pipe_snap = SnapshotSource::snapshot(&pipelined, at, window);
        let seq_snap = SnapshotSource::snapshot(&round_by_round, at, window);
        assert_eq!(sync_snap, pipe_snap);
        assert_eq!(sync_snap, seq_snap);
        assert!(!sync_snap.is_empty());
        // The serialized bytes agree too (byte-identical, not just
        // observationally equal).
        assert_eq!(
            serde_json::to_string(&sync_snap).unwrap(),
            serde_json::to_string(&pipe_snap).unwrap()
        );
    }

    #[test]
    fn reader_before_first_scrape_sees_empty_snapshot() {
        let manager = ConcurrentScrapeManager::new(ScrapeConfig::default());
        let reader = manager.reader();
        let snap = reader.snapshot(SimTime::from_secs(3), SimDuration::from_secs(30));
        assert!(snap.is_empty());
        assert_eq!(snap.time, SimTime::from_secs(3));
    }

    #[test]
    fn layout_rebuild_on_cluster_growth() {
        let (cluster, network) = setup(2);
        let mut manager = ConcurrentScrapeManager::new(ScrapeConfig::default());
        manager.scrape(&cluster, &network, SimTime::from_secs(5));
        let series_before = manager.series_count();

        let (grown, grown_network) = setup(3);
        manager.scrape(&grown, &grown_network, SimTime::from_secs(10));
        assert!(manager.series_count() > series_before);
        let snap =
            SnapshotSource::snapshot(&manager, SimTime::from_secs(12), SimDuration::from_secs(30));
        assert_eq!(snap.node_names().len(), 3);
        // The store still answers for the original series too.
        assert!(snap.node("node-1").is_some());
    }
}
