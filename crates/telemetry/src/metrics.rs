//! Metric samples and series identity.

use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A sorted label set (`BTreeMap` so identical label sets hash/compare equal
/// regardless of insertion order).
pub type Labels = BTreeMap<String, String>;

/// Whether a metric is a monotonically increasing counter or a point-in-time gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotonic counter (`*_total`); consumers use `rate()` over a window.
    Counter,
    /// Point-in-time gauge.
    Gauge,
}

/// Identity of a time series: metric name plus label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Metric name (e.g. `node_load1`).
    pub name: String,
    /// Label set (e.g. `{instance: "node-3"}`).
    pub labels: Labels,
}

impl SeriesKey {
    /// Build a key from a name and `(key, value)` label pairs.
    pub fn new(name: impl Into<String>, labels: &[(&str, &str)]) -> Self {
        SeriesKey {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// A key with a single `instance` label — the common per-node shape.
    pub fn per_node(name: impl Into<String>, instance: &str) -> Self {
        SeriesKey::new(name, &[("instance", instance)])
    }

    /// Value of one label.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.name)?;
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{k}=\"{v}\"")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// One scraped sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Series identity.
    pub key: SeriesKey,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Observed value.
    pub value: f64,
    /// Scrape timestamp.
    pub timestamp: SimTime,
}

impl Sample {
    /// Construct a gauge sample.
    pub fn gauge(key: SeriesKey, value: f64, timestamp: SimTime) -> Self {
        Sample {
            key,
            kind: MetricKind::Gauge,
            value,
            timestamp,
        }
    }

    /// Construct a counter sample.
    pub fn counter(key: SeriesKey, value: f64, timestamp: SimTime) -> Self {
        Sample {
            key,
            kind: MetricKind::Counter,
            value,
            timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_key_equality_ignores_insertion_order() {
        let a = SeriesKey::new(
            "ping_rtt_seconds",
            &[("source", "node-1"), ("target", "node-2")],
        );
        let b = SeriesKey::new(
            "ping_rtt_seconds",
            &[("target", "node-2"), ("source", "node-1")],
        );
        assert_eq!(a, b);
        assert_eq!(a.label("source"), Some("node-1"));
        assert_eq!(a.label("missing"), None);
    }

    #[test]
    fn per_node_key_shape() {
        let k = SeriesKey::per_node("node_load1", "node-4");
        assert_eq!(k.label("instance"), Some("node-4"));
        assert_eq!(format!("{k}"), "node_load1{instance=\"node-4\"}");
    }

    #[test]
    fn display_with_multiple_labels() {
        let k = SeriesKey::new("m", &[("b", "2"), ("a", "1")]);
        // BTreeMap sorts keys.
        assert_eq!(format!("{k}"), "m{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn sample_constructors_set_kind() {
        let k = SeriesKey::per_node("node_load1", "node-1");
        let g = Sample::gauge(k.clone(), 1.5, SimTime::from_secs(10));
        assert_eq!(g.kind, MetricKind::Gauge);
        let c = Sample::counter(k, 100.0, SimTime::from_secs(10));
        assert_eq!(c.kind, MetricKind::Counter);
        assert_eq!(c.value, 100.0);
    }
}
