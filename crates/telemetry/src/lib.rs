//! # telemetry — a Prometheus-like metrics substrate
//!
//! The paper's metrics server is *"a Prometheus instance configured to scrape
//! telemetry from multiple sources, including node-exporter for host-level
//! statistics and custom ping mesh exporters for inter-node network latency"*.
//! This crate rebuilds that pipeline for the simulated cluster:
//!
//! * [`metrics`] — metric samples: a name, a sorted label set, a value and a
//!   timestamp, plus the counter/gauge distinction.
//! * [`store`] — an append-only time-series store with interned
//!   [`store::SeriesId`]s, instant queries, windowed (allocation-free) range
//!   queries, `rate()` over counters and retention-based pruning.
//! * [`exporters`] — the two exporters the paper deploys: a node exporter
//!   (CPU load average, available memory, cumulative tx/rx bytes) and a
//!   full-mesh ping exporter (pairwise RTT), both reading the simulated
//!   cluster and network state; [`exporters::ExporterLayout`] is the
//!   pre-interned fast path the scrape loop uses.
//! * [`scrape`] — the scrape manager: drives all exporters on a grid-aligned
//!   interval and appends into the store, exactly like a Prometheus server's
//!   scrape loop.
//! * [`shards`] — the store sharded by metric name: same semantics as the
//!   flat store, per-shard appends and retention pruning.
//! * [`ingest`] — the concurrent scrape pipeline over the shards:
//!   evaluation workers and per-shard writer workers behind bounded queues,
//!   with an epoch counter so readers ([`ingest::TelemetryReader`]) only
//!   ever observe fully-committed scrape rounds.
//! * [`publish`] — epoch-published immutable snapshots: the scrape managers
//!   materialize one copy-on-write [`snapshot::ClusterSnapshot`] per
//!   committed round and publish it behind an atomic epoch counter, so any
//!   number of [`publish::PublishedSnapshot`] readers fetch consistent
//!   cluster state without touching the store or its locks.
//! * [`snapshot`] — the query surface the scheduler consumes: a
//!   [`snapshot::ClusterSnapshot`] with per-node CPU/memory/tx/rx (densely
//!   indexed by `cluster::NodeId`) and the `(NodeId, NodeId)`-keyed RTT
//!   mesh, assembled from the store at decision time via any
//!   [`snapshot::SnapshotSource`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exporters;
pub mod ingest;
pub mod metrics;
pub mod publish;
pub mod scrape;
pub mod shards;
pub mod snapshot;
pub mod store;

pub use exporters::{node_exporter_samples, ping_mesh_samples, ExporterLayout};
pub use ingest::{ConcurrentScrapeManager, IngestConfig, TelemetryReader};
pub use metrics::{Labels, MetricKind, Sample, SeriesKey};
pub use publish::{PublishedEpoch, PublishedSnapshot, SnapshotPublisher};
pub use scrape::{ScrapeConfig, ScrapeManager};
pub use shards::{ShardRouter, ShardedSeriesId, ShardedTimeSeriesStore};
pub use snapshot::{ClusterSnapshot, IndexedTelemetry, NodeTelemetry, RttMesh, SnapshotSource};
pub use store::{SeriesId, TimeSeriesStore};

/// Metric name for the 1-minute load average (node exporter).
pub const METRIC_NODE_LOAD1: &str = "node_load1";
/// Metric name for available memory in bytes (node exporter).
pub const METRIC_NODE_MEM_AVAILABLE: &str = "node_memory_MemAvailable_bytes";
/// Metric name for cumulative transmitted bytes (node exporter).
pub const METRIC_NODE_TX_BYTES: &str = "node_network_transmit_bytes_total";
/// Metric name for cumulative received bytes (node exporter).
pub const METRIC_NODE_RX_BYTES: &str = "node_network_receive_bytes_total";
/// Metric name for ping-mesh round-trip time in seconds.
pub const METRIC_PING_RTT: &str = "ping_rtt_seconds";
