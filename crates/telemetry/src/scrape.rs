//! The scrape manager: the Prometheus server's scrape loop.

use crate::exporters::{node_exporter_samples, ping_mesh_samples};
use crate::store::TimeSeriesStore;
use cluster::ClusterState;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use simnet::Network;

/// Scrape configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapeConfig {
    /// Interval between scrapes (Prometheus default is 15 s; the paper scrapes
    /// frequently enough that decisions see fresh data).
    pub interval: SimDuration,
    /// Window used when deriving rates from counters.
    pub rate_window: SimDuration,
    /// Optional retention limit for the store.
    pub retention: Option<SimDuration>,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            interval: SimDuration::from_secs(5),
            rate_window: SimDuration::from_secs(30),
            retention: Some(SimDuration::from_secs(3600)),
        }
    }
}

/// Drives the exporters on a fixed interval and stores the samples.
#[derive(Debug, Clone)]
pub struct ScrapeManager {
    config: ScrapeConfig,
    store: TimeSeriesStore,
    last_scrape: Option<SimTime>,
    scrape_count: u64,
}

impl ScrapeManager {
    /// Create a manager with the given configuration.
    pub fn new(config: ScrapeConfig) -> Self {
        let store = match config.retention {
            Some(r) => TimeSeriesStore::with_retention(r),
            None => TimeSeriesStore::new(),
        };
        ScrapeManager {
            config,
            store,
            last_scrape: None,
            scrape_count: 0,
        }
    }

    /// The scrape configuration.
    pub fn config(&self) -> &ScrapeConfig {
        &self.config
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// When the next scrape is due (immediately if never scraped).
    pub fn next_scrape_due(&self) -> SimTime {
        match self.last_scrape {
            None => SimTime::ZERO,
            Some(t) => t + self.config.interval,
        }
    }

    /// Number of scrapes performed.
    pub fn scrape_count(&self) -> u64 {
        self.scrape_count
    }

    /// Perform one scrape of all exporters at time `now`.
    pub fn scrape(&mut self, cluster: &ClusterState, network: &Network, now: SimTime) {
        self.store
            .append_all(node_exporter_samples(cluster, network, now));
        self.store
            .append_all(ping_mesh_samples(cluster, network, now));
        self.last_scrape = Some(now);
        self.scrape_count += 1;
    }

    /// Scrape only if the configured interval has elapsed since the last one.
    /// Returns `true` when a scrape happened.
    pub fn scrape_if_due(
        &mut self,
        cluster: &ClusterState,
        network: &Network,
        now: SimTime,
    ) -> bool {
        if now >= self.next_scrape_due() {
            self.scrape(cluster, network, now);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{METRIC_NODE_LOAD1, METRIC_PING_RTT};
    use cluster::{Node, Resources};
    use simnet::{gbps, mbps, NodeId, TopologyBuilder};

    fn setup() -> (ClusterState, Network) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(10), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        cluster.add_node(Node::new(
            "node-1",
            NodeId(0),
            Resources::from_cores_and_gib(6, 8),
            "UCSD",
        ));
        cluster.add_node(Node::new(
            "node-2",
            NodeId(1),
            Resources::from_cores_and_gib(6, 8),
            "FIU",
        ));
        (cluster, network)
    }

    #[test]
    fn scrape_populates_store() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig::default());
        assert_eq!(mgr.scrape_count(), 0);
        mgr.scrape(&cluster, &network, SimTime::from_secs(10));
        assert_eq!(mgr.scrape_count(), 1);
        // 2 nodes x 4 node metrics + 2 ping pairs = 10 series.
        assert_eq!(mgr.store().series_count(), 10);
        assert_eq!(
            mgr.store()
                .instant_by_name(METRIC_NODE_LOAD1, SimTime::from_secs(20))
                .len(),
            2
        );
        assert_eq!(
            mgr.store()
                .instant_by_name(METRIC_PING_RTT, SimTime::from_secs(20))
                .len(),
            2
        );
    }

    #[test]
    fn scrape_if_due_respects_interval() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig {
            interval: SimDuration::from_secs(15),
            ..Default::default()
        });
        assert_eq!(mgr.next_scrape_due(), SimTime::ZERO);
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(0)));
        assert!(!mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(10)));
        assert_eq!(mgr.next_scrape_due(), SimTime::from_secs(15));
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(15)));
        assert_eq!(mgr.scrape_count(), 2);
    }

    #[test]
    fn repeated_scrapes_accumulate_points() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig::default());
        for i in 0..5u64 {
            mgr.scrape(&cluster, &network, SimTime::from_secs(i * 5));
        }
        assert_eq!(mgr.store().point_count(), 10 * 5);
        assert_eq!(mgr.config().rate_window, SimDuration::from_secs(30));
    }

    #[test]
    fn no_retention_config_is_supported() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig {
            retention: None,
            ..Default::default()
        });
        mgr.scrape(&cluster, &network, SimTime::from_secs(1));
        assert!(mgr.store().point_count() > 0);
    }
}
