//! The scrape manager: the Prometheus server's scrape loop.
//!
//! The manager owns the store and an [`ExporterLayout`] — every exporter
//! series pre-interned to a [`crate::SeriesId`] — so steady-state scrapes
//! append raw values with zero key construction, and snapshot assembly
//! ([`ScrapeManager::snapshot_into`]) runs entirely over interned ids.
//!
//! **Cadence.** Periodic scrapes ([`ScrapeManager::scrape_if_due`]) fire on a
//! fixed schedule grid: a tick that arrives late still scrapes immediately,
//! but the *next* due time advances from the grid (`last_due + interval`),
//! not from the actual scrape time — one delayed caller can no longer
//! permanently phase-shift the cadence. An explicit [`ScrapeManager::scrape`]
//! is an operator action and re-anchors the grid at its own timestamp.

use crate::exporters::{node_exporter_samples, ping_mesh_samples, ExporterLayout};
use crate::publish::{PublishedEpoch, PublishedSnapshot, SnapshotPublisher};
use crate::snapshot::{ClusterSnapshot, SnapshotSource};
use crate::store::TimeSeriesStore;
use cluster::ClusterState;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};
use simnet::Network;

/// Scrape configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapeConfig {
    /// Interval between scrapes (Prometheus default is 15 s; the paper scrapes
    /// frequently enough that decisions see fresh data).
    pub interval: SimDuration,
    /// Window used when deriving rates from counters.
    pub rate_window: SimDuration,
    /// Optional retention limit for the store.
    pub retention: Option<SimDuration>,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            interval: SimDuration::from_secs(5),
            rate_window: SimDuration::from_secs(30),
            retention: Some(SimDuration::from_secs(3600)),
        }
    }
}

/// The grid-aligned scrape schedule shared by every scrape-manager flavour
/// (the synchronous [`ScrapeManager`] and the sharded
/// [`crate::ConcurrentScrapeManager`]): tracks when the next periodic scrape
/// is due and advances along the grid without drifting on late ticks.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ScrapeCadence {
    /// When the next periodic scrape is due (`None` = never scraped).
    next_due: Option<SimTime>,
}

impl ScrapeCadence {
    /// When the next scrape is due (immediately if never scraped).
    pub(crate) fn next_due(&self) -> SimTime {
        self.next_due.unwrap_or(SimTime::ZERO)
    }

    /// True when a periodic scrape is due at `now`.
    pub(crate) fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due()
    }

    /// Re-anchor the grid at `now` (an explicit operator scrape).
    pub(crate) fn reanchor(&mut self, now: SimTime, interval: SimDuration) {
        self.next_due = Some(now + interval);
    }

    /// Advance the due time along the schedule grid past `now`
    /// (`due + k·interval`), skipping missed ticks in O(1), so a delayed tick
    /// does not drift the due times of subsequent scrapes.
    pub(crate) fn advance_on_grid(&mut self, now: SimTime, interval: SimDuration) {
        if interval.is_zero() {
            self.next_due = Some(now);
            return;
        }
        let due = self.next_due();
        let gap = now.as_nanos().saturating_sub(due.as_nanos());
        let steps = gap / interval.as_nanos() + 1;
        self.next_due = Some(SimTime::from_nanos(
            due.as_nanos()
                .saturating_add(steps.saturating_mul(interval.as_nanos())),
        ));
    }
}

/// Drives the exporters on a fixed interval and stores the samples.
#[derive(Debug, Clone)]
pub struct ScrapeManager {
    config: ScrapeConfig,
    store: TimeSeriesStore,
    /// Interned exporter series; rebuilt only when the cluster's node table
    /// changes.
    layout: Option<ExporterLayout>,
    cadence: ScrapeCadence,
    scrape_count: u64,
    /// Epoch publisher (see [`crate::publish`]), activated lazily by
    /// [`ScrapeManager::published_handle`]: once active, every scrape also publishes
    /// an immutable snapshot of the new state. Cloning the manager detaches
    /// the clone's publisher (fresh epochs; the original's handles keep
    /// observing only the original).
    publisher: Option<SnapshotPublisher>,
    /// Timestamp of the last scrape (publish-on-activation support).
    last_scrape: Option<SimTime>,
}

impl ScrapeManager {
    /// Create a manager with the given configuration.
    pub fn new(config: ScrapeConfig) -> Self {
        let store = match config.retention {
            Some(r) => TimeSeriesStore::with_retention(r),
            None => TimeSeriesStore::new(),
        };
        ScrapeManager {
            config,
            store,
            layout: None,
            cadence: ScrapeCadence::default(),
            scrape_count: 0,
            publisher: None,
            last_scrape: None,
        }
    }

    /// A cheap cloneable handle over epoch-published immutable snapshots
    /// (see [`crate::publish`]): one consistent snapshot per scrape,
    /// resolved by readers with an atomic load plus an `Arc` clone — never
    /// touching the store. Publishing activates on the first call; state
    /// scraped before activation is published immediately.
    pub fn published_handle(&mut self) -> PublishedSnapshot {
        if self.publisher.is_none() {
            let mut publisher = SnapshotPublisher::new();
            if let Some(at) = self.last_scrape {
                let store = &self.store;
                let layout = self.layout.as_ref();
                let rate_window = self.config.rate_window;
                publisher.publish_with(|snap| match layout {
                    Some(layout) => layout.snapshot_into(store, at, rate_window, snap),
                    None => snap.assemble_from_store(store, at, rate_window),
                });
            }
            self.publisher = Some(publisher);
        }
        self.publisher.as_ref().expect("publisher active").handle()
    }

    /// Record a scrape at `now` and, when publishing is active, publish the
    /// next epoch's snapshot (copy-on-write over the previous epoch).
    fn publish_round(&mut self, now: SimTime) {
        self.last_scrape = Some(now);
        if let Some(publisher) = &mut self.publisher {
            let store = &self.store;
            let layout = self.layout.as_ref();
            let rate_window = self.config.rate_window;
            publisher.publish_with(|snap| match layout {
                Some(layout) => layout.snapshot_into(store, now, rate_window, snap),
                None => snap.assemble_from_store(store, now, rate_window),
            });
        }
    }

    /// The scrape configuration.
    pub fn config(&self) -> &ScrapeConfig {
        &self.config
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// The interned exporter layout, once the first scrape has built it.
    pub fn layout(&self) -> Option<&ExporterLayout> {
        self.layout.as_ref()
    }

    /// When the next scrape is due (immediately if never scraped).
    pub fn next_scrape_due(&self) -> SimTime {
        self.cadence.next_due()
    }

    /// Number of scrapes performed.
    pub fn scrape_count(&self) -> u64 {
        self.scrape_count
    }

    /// Run the exporters through the interned layout (building or rebuilding
    /// it if the cluster changed) and append into the store.
    fn scrape_inner(&mut self, cluster: &ClusterState, network: &Network, now: SimTime) {
        let rebuild = match &self.layout {
            Some(layout) => !layout.matches(cluster),
            None => true,
        };
        if rebuild {
            self.layout = Some(ExporterLayout::build(cluster, &mut self.store));
        }
        self.layout
            .as_ref()
            .expect("layout built above")
            .scrape_into(cluster, network, now, &mut self.store);
        self.scrape_count += 1;
    }

    /// Perform one explicit scrape of all exporters at time `now`,
    /// re-anchoring the periodic schedule grid at `now`.
    pub fn scrape(&mut self, cluster: &ClusterState, network: &Network, now: SimTime) {
        self.scrape_inner(cluster, network, now);
        self.publish_round(now);
        self.cadence.reanchor(now, self.config.interval);
    }

    /// Scrape only if the next grid-aligned due time has been reached.
    /// Returns `true` when a scrape happened. The next due time advances on
    /// the schedule grid (`due + k·interval`), so a delayed tick does not
    /// drift the due times of subsequent scrapes.
    pub fn scrape_if_due(
        &mut self,
        cluster: &ClusterState,
        network: &Network,
        now: SimTime,
    ) -> bool {
        if !self.cadence.is_due(now) {
            return false;
        }
        self.scrape_inner(cluster, network, now);
        self.publish_round(now);
        self.cadence.advance_on_grid(now, self.config.interval);
        true
    }

    /// Assemble the scheduler-facing snapshot at `at` into `snap`, reusing
    /// its storage. Uses the interned layout when available (the hot path —
    /// no name resolution, cost independent of retained history), falling
    /// back to the generic store walk before the first scrape.
    pub fn snapshot_into(&self, at: SimTime, rate_window: SimDuration, snap: &mut ClusterSnapshot) {
        match &self.layout {
            Some(layout) => layout.snapshot_into(&self.store, at, rate_window, snap),
            None => snap.assemble_from_store(&self.store, at, rate_window),
        }
    }

    /// Reference scrape path used by tests: append exporter-built samples
    /// without the interned layout (produces identical store contents).
    #[doc(hidden)]
    pub fn scrape_via_samples(&mut self, cluster: &ClusterState, network: &Network, now: SimTime) {
        self.store
            .append_all(node_exporter_samples(cluster, network, now));
        self.store
            .append_all(ping_mesh_samples(cluster, network, now));
        self.scrape_count += 1;
        self.publish_round(now);
        self.cadence.reanchor(now, self.config.interval);
    }
}

impl SnapshotSource for ScrapeManager {
    fn snapshot_into(&self, at: SimTime, rate_window: SimDuration, snap: &mut ClusterSnapshot) {
        ScrapeManager::snapshot_into(self, at, rate_window, snap);
    }

    fn published(&self) -> Option<PublishedEpoch> {
        self.publisher.as_ref().and_then(SnapshotPublisher::latest)
    }

    fn published_epoch(&self) -> Option<u64> {
        match self.publisher.as_ref().map_or(0, SnapshotPublisher::epoch) {
            0 => None,
            epoch => Some(epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{METRIC_NODE_LOAD1, METRIC_PING_RTT};
    use cluster::{Node, Resources};
    use simnet::{gbps, mbps, NodeId, TopologyBuilder};

    fn setup() -> (ClusterState, Network) {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("UCSD", SimDuration::from_micros(200), gbps(10.0));
        let s1 = b.add_site("FIU", SimDuration::from_micros(200), gbps(10.0));
        b.add_node("node-1", s0, gbps(1.0), gbps(1.0));
        b.add_node("node-2", s1, gbps(1.0), gbps(1.0));
        b.connect_sites(s0, s1, SimDuration::from_millis(10), mbps(500.0));
        let network = Network::new(b.build().unwrap());
        let mut cluster = ClusterState::new();
        cluster.add_node(Node::new(
            "node-1",
            NodeId(0),
            Resources::from_cores_and_gib(6, 8),
            "UCSD",
        ));
        cluster.add_node(Node::new(
            "node-2",
            NodeId(1),
            Resources::from_cores_and_gib(6, 8),
            "FIU",
        ));
        (cluster, network)
    }

    #[test]
    fn scrape_populates_store() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig::default());
        assert_eq!(mgr.scrape_count(), 0);
        assert!(mgr.layout().is_none());
        mgr.scrape(&cluster, &network, SimTime::from_secs(10));
        assert_eq!(mgr.scrape_count(), 1);
        assert!(mgr.layout().is_some());
        // 2 nodes x 4 node metrics + 2 ping pairs = 10 series.
        assert_eq!(mgr.store().series_count(), 10);
        assert_eq!(
            mgr.store()
                .instant_by_name(METRIC_NODE_LOAD1, SimTime::from_secs(20))
                .len(),
            2
        );
        assert_eq!(
            mgr.store()
                .instant_by_name(METRIC_PING_RTT, SimTime::from_secs(20))
                .len(),
            2
        );
    }

    #[test]
    fn scrape_if_due_respects_interval() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig {
            interval: SimDuration::from_secs(15),
            ..Default::default()
        });
        assert_eq!(mgr.next_scrape_due(), SimTime::ZERO);
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(0)));
        assert!(!mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(10)));
        assert_eq!(mgr.next_scrape_due(), SimTime::from_secs(15));
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(15)));
        assert_eq!(mgr.scrape_count(), 2);
    }

    #[test]
    fn delayed_tick_does_not_drift_the_grid() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig {
            interval: SimDuration::from_secs(15),
            ..Default::default()
        });
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(0)));
        // The t=15 tick arrives 3 s late: it scrapes, but the next due time
        // stays on the grid (30 s), not 18 + 15.
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(18)));
        assert_eq!(mgr.next_scrape_due(), SimTime::from_secs(30));
        assert!(!mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(29)));
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(30)));
        assert_eq!(mgr.next_scrape_due(), SimTime::from_secs(45));
        // A very late tick skips the missed grid points entirely (no burst of
        // catch-up scrapes) and lands on the next future grid point.
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(100)));
        assert_eq!(mgr.next_scrape_due(), SimTime::from_secs(105));
        assert_eq!(mgr.scrape_count(), 4);
    }

    #[test]
    fn explicit_scrape_reanchors_the_grid() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig {
            interval: SimDuration::from_secs(15),
            ..Default::default()
        });
        assert!(mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(0)));
        // An operator-style scrape at t=7 restarts the cadence from there.
        mgr.scrape(&cluster, &network, SimTime::from_secs(7));
        assert_eq!(mgr.next_scrape_due(), SimTime::from_secs(22));
    }

    #[test]
    fn repeated_scrapes_accumulate_points() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig::default());
        for i in 0..5u64 {
            mgr.scrape(&cluster, &network, SimTime::from_secs(i * 5));
        }
        assert_eq!(mgr.store().point_count(), 10 * 5);
        assert_eq!(mgr.config().rate_window, SimDuration::from_secs(30));
    }

    #[test]
    fn no_retention_config_is_supported() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig {
            retention: None,
            ..Default::default()
        });
        mgr.scrape(&cluster, &network, SimTime::from_secs(1));
        assert!(mgr.store().point_count() > 0);
    }

    #[test]
    fn snapshot_into_matches_generic_assembly() {
        let (cluster, network) = setup();
        let mut mgr = ScrapeManager::new(ScrapeConfig::default());
        // Before any scrape: the generic fallback yields an empty snapshot.
        let mut snap = ClusterSnapshot::default();
        mgr.snapshot_into(SimTime::from_secs(1), SimDuration::from_secs(30), &mut snap);
        assert!(snap.is_empty());

        for i in 0..8u64 {
            mgr.scrape_if_due(&cluster, &network, SimTime::from_secs(i * 5));
        }
        let at = SimTime::from_secs(36);
        let window = SimDuration::from_secs(30);
        mgr.snapshot_into(at, window, &mut snap);
        let generic = ClusterSnapshot::from_store(mgr.store(), at, window);
        assert_eq!(snap, generic);
        assert_eq!(snap.node_names(), vec!["node-1", "node-2"]);
    }

    #[test]
    fn sample_building_reference_path_matches_interned_scrapes() {
        let (cluster, network) = setup();
        let mut interned = ScrapeManager::new(ScrapeConfig::default());
        let mut reference = ScrapeManager::new(ScrapeConfig::default());
        for i in 0..4u64 {
            let t = SimTime::from_secs(i * 5);
            interned.scrape(&cluster, &network, t);
            reference.scrape_via_samples(&cluster, &network, t);
        }
        assert_eq!(interned.scrape_count(), reference.scrape_count());
        assert_eq!(
            interned.store().point_count(),
            reference.store().point_count()
        );
        let at = SimTime::from_secs(20);
        let w = SimDuration::from_secs(30);
        assert_eq!(
            ClusterSnapshot::from_store(interned.store(), at, w),
            ClusterSnapshot::from_store(reference.store(), at, w)
        );
    }
}
