//! Resource-sorted feasibility index over the cluster's node table.
//!
//! At paper scale (6–64 nodes) scanning every node per decision is free; at
//! 10k nodes the linear scan in front of the expensive ranking model starts to
//! dominate decision latency. [`FeasibilityIndex`] precomputes, per
//! [`ClusterState::generation`], which nodes are *eligible* for driver pods
//! (schedulable and free of untolerated `NoSchedule` taints — the
//! request-independent part of [`DefaultScheduler::filter`]) together with two
//! resource-sorted arrays over the eligible set. A query binary-searches the
//! sorted arrays to find the nodes with enough free CPU / memory, then walks
//! only the *smaller* of the two suffixes applying the exact
//! [`Resources::fits_within`] check — so the result is byte-identical to the
//! naive full scan, in ascending [`NodeId`] order, while the work is
//! proportional to the matching suffix rather than the node table.
//!
//! Driver pods carry no node selector, no affinity and no tolerations (see
//! [`crate::job::JobSpec::driver_pod`]), so eligibility plus the resource fit
//! is the complete filter for them. The index is *not* valid for pods with
//! selectors/affinity/tolerations; callers with such pods must use
//! [`DefaultScheduler::filter`] directly.

use crate::node::Node;
use crate::pod::PodSpec;
use crate::resources::Resources;
use crate::scheduler::{DefaultScheduler, FilterResult};
use crate::state::{ClusterState, NodeId};

/// Sorted per-resource feasibility index, cached against a cluster
/// [generation](ClusterState::generation).
///
/// Build with [`FeasibilityIndex::sync`], query with
/// [`FeasibilityIndex::query_into`]. `sync` is a no-op (single integer
/// compare) while the cluster generation is unchanged, which is what makes
/// the index shareable across decision bursts on the PR 6 held-epoch fast
/// path.
#[derive(Debug, Clone)]
pub struct FeasibilityIndex {
    /// Generation of the cluster this index was built against.
    generation: Option<u64>,
    /// How many times the index was actually rebuilt (not merely synced).
    rebuilds: u64,
    /// Free resources per node, dense by [`NodeId`] index. Only entries for
    /// eligible nodes are consulted by queries.
    available: Vec<Resources>,
    /// `(available cpu_millis, node index)` over eligible nodes, ascending.
    by_cpu: Vec<(u64, u32)>,
    /// `(available memory_bytes, node index)` over eligible nodes, ascending.
    by_memory: Vec<(u64, u32)>,
    /// Zero-request, selector-free, toleration-free probe pod the eligibility
    /// pass filters with. Held (rather than built per rebuild) so rebuilds
    /// stay allocation-free once the sorted arrays' capacity has warmed.
    probe: PodSpec,
}

impl Default for FeasibilityIndex {
    fn default() -> Self {
        FeasibilityIndex {
            generation: None,
            rebuilds: 0,
            available: Vec::new(),
            by_cpu: Vec::new(),
            by_memory: Vec::new(),
            // Built field-by-field (not via `PodSpec::new`, which allocates
            // its name/namespace strings) so index construction inside
            // `mem::take`-style scratch swaps stays heap-free. The filter
            // only reads requests, selector, affinity and tolerations, so
            // the empty name is irrelevant.
            probe: PodSpec {
                name: String::new(),
                namespace: String::new(),
                labels: std::collections::BTreeMap::new(),
                requests: Resources::ZERO,
                limits: Resources::ZERO,
                node_selector: std::collections::BTreeMap::new(),
                affinity: crate::NodeAffinity::none(),
                tolerations: Vec::new(),
                role: crate::pod::PodRole::Standalone,
            },
        }
    }
}

impl FeasibilityIndex {
    /// Create an empty, unsynced index.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `node` can host *some* driver pod: it is schedulable and has
    /// no untolerated `NoSchedule` taint. This is exactly
    /// [`DefaultScheduler::filter`] with a zero-request, selector-free,
    /// toleration-free probe pod, so it cannot drift from the scheduler's
    /// filter semantics.
    pub fn eligible(node: &Node) -> bool {
        let probe = PodSpec::new("feasibility-probe", Resources::ZERO);
        DefaultScheduler::filter(&probe, node) == FilterResult::Feasible
    }

    /// Bring the index up to date with `cluster`. Returns `true` when a
    /// rebuild actually happened, `false` when the cached generation matched
    /// and the call was a single compare. A rebuild is one pass over the
    /// node table plus two sorts, allocation-free at steady cluster size.
    pub fn sync(&mut self, cluster: &ClusterState) -> bool {
        if self.generation == Some(cluster.generation()) {
            return false;
        }
        let nodes = cluster.nodes();
        self.available.clear();
        self.available.reserve(nodes.len());
        self.by_cpu.clear();
        self.by_memory.clear();
        for (index, node) in nodes.iter().enumerate() {
            let free = node.available();
            self.available.push(free);
            if DefaultScheduler::filter(&self.probe, node) == FilterResult::Feasible {
                self.by_cpu.push((free.cpu_millis, index as u32));
                self.by_memory.push((free.memory_bytes, index as u32));
            }
        }
        self.by_cpu.sort_unstable();
        self.by_memory.sort_unstable();
        self.generation = Some(cluster.generation());
        self.rebuilds += 1;
        true
    }

    /// Number of eligible nodes in the index.
    pub fn eligible_count(&self) -> usize {
        self.by_cpu.len()
    }

    /// How many times [`sync`](Self::sync) actually rebuilt the index.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The cluster generation the index currently reflects, if any.
    pub fn generation(&self) -> Option<u64> {
        self.generation
    }

    /// Collect every eligible node whose free resources fit `requests`, in
    /// ascending [`NodeId`] order, into `out` (cleared first). Byte-identical
    /// to filtering every node with [`DefaultScheduler::filter`] for a
    /// selector-free, toleration-free pod with the same requests.
    pub fn query_into(&self, requests: &Resources, out: &mut Vec<NodeId>) {
        out.clear();
        // Nodes with at least `requests.cpu_millis` free CPU form a suffix of
        // `by_cpu`; likewise for memory. Scan whichever suffix is shorter and
        // apply the exact two-sided fit check.
        let cpu_start = self
            .by_cpu
            .partition_point(|&(c, _)| c < requests.cpu_millis);
        let mem_start = self
            .by_memory
            .partition_point(|&(m, _)| m < requests.memory_bytes);
        let cpu_suffix = &self.by_cpu[cpu_start..];
        let mem_suffix = &self.by_memory[mem_start..];
        let scan = if cpu_suffix.len() <= mem_suffix.len() {
            cpu_suffix
        } else {
            mem_suffix
        };
        for &(_, index) in scan {
            if requests.fits_within(&self.available[index as usize]) {
                out.push(NodeId(index));
            }
        }
        out.sort_unstable();
    }

    /// Convenience wrapper around [`query_into`](Self::query_into).
    pub fn query(&self, requests: &Resources) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.query_into(requests, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::{Taint, TaintEffect};
    use crate::pod::PodId;
    use simcore::rng::Rng;
    use simnet::NodeId as NetId;

    /// The reference implementation: filter every node with the real
    /// scheduler filter for a plain pod with the given requests.
    fn naive(cluster: &ClusterState, requests: &Resources) -> Vec<NodeId> {
        let pod = PodSpec::new("naive", *requests);
        cluster
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, node)| DefaultScheduler::filter(&pod, node) == FilterResult::Feasible)
            .map(|(index, _)| NodeId::from_index(index))
            .collect()
    }

    /// A varied world: mixed capacities, some cordoned, some tainted, some
    /// partially or fully loaded.
    fn varied_world(nodes: usize, seed: u64) -> ClusterState {
        let mut rng = Rng::seed_from_u64(seed);
        let mut cluster = ClusterState::new();
        for i in 0..nodes {
            let cores = 2 + rng.gen_range_usize(0, 7) as u64;
            let gib = 2 + rng.gen_range_usize(0, 15) as u64;
            let mut node = Node::new(
                format!("node-{i}"),
                NetId(i),
                Resources::from_cores_and_gib(cores, gib),
                "SITE",
            );
            match rng.gen_range_usize(0, 10) {
                0 => node.schedulable = false,
                1 => node.taints.push(Taint {
                    key: "dedicated".into(),
                    value: "infra".into(),
                    effect: TaintEffect::NoSchedule,
                }),
                2 => node.taints.push(Taint {
                    key: "flaky".into(),
                    value: "true".into(),
                    effect: TaintEffect::PreferNoSchedule,
                }),
                _ => {}
            }
            cluster.add_node(node);
        }
        // Load some nodes, a few to the brim.
        for i in 0..nodes {
            let load = rng.gen_range_usize(0, 4);
            if load == 0 {
                continue;
            }
            let node = cluster.node_by_id_mut(NodeId::from_index(i)).unwrap();
            let free = node.available();
            let req = if load == 1 {
                free // fill completely
            } else {
                Resources {
                    cpu_millis: free.cpu_millis / load as u64,
                    memory_bytes: free.memory_bytes / load as u64,
                }
            };
            node.bind(PodId(i as u64), req);
        }
        cluster
    }

    #[test]
    fn query_matches_naive_filter_on_varied_worlds() {
        for seed in 0..8 {
            let cluster = varied_world(40, seed);
            let mut index = FeasibilityIndex::new();
            assert!(index.sync(&cluster));
            for (cpu, gib) in [(0, 0), (1, 1), (2, 4), (4, 2), (6, 8), (9, 1), (1, 16)] {
                let req = Resources::from_cores_and_gib(cpu, gib);
                assert_eq!(
                    index.query(&req),
                    naive(&cluster, &req),
                    "seed {seed}, request {cpu}c/{gib}GiB"
                );
            }
        }
    }

    #[test]
    fn sync_is_generation_keyed() {
        let mut cluster = varied_world(10, 3);
        let mut index = FeasibilityIndex::new();
        assert!(index.sync(&cluster));
        assert_eq!(index.rebuilds(), 1);
        assert_eq!(index.generation(), Some(cluster.generation()));
        // Unchanged cluster: no rebuild.
        assert!(!index.sync(&cluster));
        assert!(!index.sync(&cluster));
        assert_eq!(index.rebuilds(), 1);
        // Any node mutation invalidates.
        cluster.node_by_id_mut(NodeId(0)).unwrap().schedulable = false;
        assert!(index.sync(&cluster));
        assert_eq!(index.rebuilds(), 2);
        let req = Resources::ZERO;
        assert_eq!(index.query(&req), naive(&cluster, &req));
    }

    #[test]
    fn stale_index_reflects_old_world_until_synced() {
        let mut cluster = ClusterState::new();
        cluster.add_node(Node::new(
            "only",
            NetId(0),
            Resources::from_cores_and_gib(4, 4),
            "SITE",
        ));
        let mut index = FeasibilityIndex::new();
        index.sync(&cluster);
        assert_eq!(index.eligible_count(), 1);
        cluster.node_mut("only").unwrap().schedulable = false;
        // Until synced, the index still answers from the old generation.
        assert_eq!(index.query(&Resources::ZERO).len(), 1);
        assert!(index.sync(&cluster));
        assert!(index.query(&Resources::ZERO).is_empty());
        assert_eq!(index.eligible_count(), 0);
    }

    #[test]
    fn empty_cluster_queries_are_empty() {
        let cluster = ClusterState::new();
        let mut index = FeasibilityIndex::new();
        assert!(index.sync(&cluster));
        assert!(index.query(&Resources::ZERO).is_empty());
        assert_eq!(index.eligible_count(), 0);
    }
}
