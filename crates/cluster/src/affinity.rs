//! Node selection constraints: selectors, affinity, taints and tolerations.
//!
//! The paper's Job Builder enforces placement by *"injecting nodeAffinity
//! rules into the generated specification"*. To support both that mechanism
//! and the default scheduler's filtering semantics, this module models the
//! subset of the Kubernetes node-affinity API the experiment exercises:
//! required (hard) and preferred (soft, weighted) node selector terms with
//! `In` / `NotIn` / `Exists` / `DoesNotExist` operators, plus taints and
//! tolerations.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Operator of a node selector requirement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeSelectorOp {
    /// The label value must be one of the listed values.
    #[default]
    In,
    /// The label value must not be any of the listed values.
    NotIn,
    /// The label key must exist (values ignored).
    Exists,
    /// The label key must not exist (values ignored).
    DoesNotExist,
}

/// A single `key <op> values` requirement. The default is an empty
/// `"" In []` requirement, useful as a reusable slot to reshape in place.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSelectorRequirement {
    /// Label key.
    pub key: String,
    /// Operator.
    pub op: NodeSelectorOp,
    /// Values (unused for Exists/DoesNotExist).
    pub values: Vec<String>,
}

impl NodeSelectorRequirement {
    /// Convenience constructor for the common `key In [value]` form.
    pub fn key_in(key: impl Into<String>, values: Vec<String>) -> Self {
        NodeSelectorRequirement {
            key: key.into(),
            op: NodeSelectorOp::In,
            values,
        }
    }

    /// Evaluate against a node's label map.
    pub fn matches(&self, labels: &BTreeMap<String, String>) -> bool {
        match self.op {
            NodeSelectorOp::In => labels
                .get(&self.key)
                .map(|v| self.values.iter().any(|x| x == v))
                .unwrap_or(false),
            NodeSelectorOp::NotIn => labels
                .get(&self.key)
                .map(|v| !self.values.iter().any(|x| x == v))
                .unwrap_or(true),
            NodeSelectorOp::Exists => labels.contains_key(&self.key),
            NodeSelectorOp::DoesNotExist => !labels.contains_key(&self.key),
        }
    }
}

/// A conjunction of requirements (all must match).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeSelectorTerm {
    /// The requirements; an empty term matches everything.
    pub requirements: Vec<NodeSelectorRequirement>,
}

impl NodeSelectorTerm {
    /// A term requiring `kubernetes.io/hostname In [hostname]` — this is what
    /// the Job Builder injects to pin a driver to a chosen node.
    pub fn hostname(hostname: impl Into<String>) -> Self {
        NodeSelectorTerm {
            requirements: vec![NodeSelectorRequirement::key_in(
                "kubernetes.io/hostname",
                vec![hostname.into()],
            )],
        }
    }

    /// Evaluate against a node's labels.
    pub fn matches(&self, labels: &BTreeMap<String, String>) -> bool {
        self.requirements.iter().all(|r| r.matches(labels))
    }
}

/// A preferred (soft) scheduling term with a weight in `1..=100`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreferredSchedulingTerm {
    /// Weight added to the node's score when the term matches.
    pub weight: u32,
    /// The term itself.
    pub term: NodeSelectorTerm,
}

/// Node affinity: required terms (OR of ANDs) and preferred weighted terms.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeAffinity {
    /// Hard requirement: at least one term must match (empty = no constraint).
    pub required_terms: Vec<NodeSelectorTerm>,
    /// Soft preferences contributing to the scoring phase.
    pub preferred_terms: Vec<PreferredSchedulingTerm>,
}

impl NodeAffinity {
    /// No affinity at all.
    pub fn none() -> Self {
        NodeAffinity::default()
    }

    /// Hard-pin to a single hostname (the Job Builder's injection).
    pub fn require_hostname(hostname: impl Into<String>) -> Self {
        NodeAffinity {
            required_terms: vec![NodeSelectorTerm::hostname(hostname)],
            preferred_terms: Vec::new(),
        }
    }

    /// In-place equivalent of [`NodeAffinity::require_hostname`]: reshape
    /// this affinity into the single required-hostname form, reusing the
    /// term, requirement and value allocations already held. Steady-state
    /// rebuilds of a pinned pod spec touch no heap.
    pub fn set_required_hostname(&mut self, hostname: &str) {
        self.preferred_terms.clear();
        self.required_terms
            .resize_with(1, NodeSelectorTerm::default);
        let term = &mut self.required_terms[0];
        term.requirements
            .resize_with(1, NodeSelectorRequirement::default);
        let req = &mut term.requirements[0];
        req.op = NodeSelectorOp::In;
        req.key.clear();
        req.key.push_str("kubernetes.io/hostname");
        req.values.resize_with(1, String::new);
        req.values[0].clear();
        req.values[0].push_str(hostname);
    }

    /// Drop every constraint in place, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.required_terms.clear();
        self.preferred_terms.clear();
    }

    /// True when the node's labels satisfy the *required* part.
    pub fn required_matches(&self, labels: &BTreeMap<String, String>) -> bool {
        if self.required_terms.is_empty() {
            return true;
        }
        self.required_terms.iter().any(|t| t.matches(labels))
    }

    /// Sum of the weights of matching preferred terms.
    pub fn preferred_score(&self, labels: &BTreeMap<String, String>) -> u32 {
        self.preferred_terms
            .iter()
            .filter(|p| p.term.matches(labels))
            .map(|p| p.weight.min(100))
            .sum()
    }

    /// Whether any constraint is present.
    pub fn is_empty(&self) -> bool {
        self.required_terms.is_empty() && self.preferred_terms.is_empty()
    }
}

/// Effect of a taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaintEffect {
    /// Pods that do not tolerate the taint are filtered out.
    NoSchedule,
    /// Scheduling avoids the node but may still use it (we treat it as a
    /// scoring penalty rather than a filter).
    PreferNoSchedule,
}

/// A node taint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Taint {
    /// Taint key.
    pub key: String,
    /// Taint value.
    pub value: String,
    /// Effect.
    pub effect: TaintEffect,
}

/// A pod toleration. `key == None` tolerates every taint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Toleration {
    /// Taint key to tolerate (`None` = wildcard).
    pub key: Option<String>,
    /// Taint value to tolerate (`None` = any value).
    pub value: Option<String>,
}

impl Toleration {
    /// Tolerate any taint.
    pub fn any() -> Self {
        Toleration {
            key: None,
            value: None,
        }
    }

    /// Tolerate taints with the given key (any value).
    pub fn for_key(key: impl Into<String>) -> Self {
        Toleration {
            key: Some(key.into()),
            value: None,
        }
    }

    /// Does this toleration cover `taint`?
    pub fn tolerates(&self, taint: &Taint) -> bool {
        match (&self.key, &self.value) {
            (None, _) => true,
            (Some(k), None) => k == &taint.key,
            (Some(k), Some(v)) => k == &taint.key && v == &taint.value,
        }
    }
}

/// True when every `NoSchedule` taint on the node is tolerated by the pod.
pub fn tolerates_all_no_schedule(taints: &[Taint], tolerations: &[Toleration]) -> bool {
    taints
        .iter()
        .filter(|t| t.effect == TaintEffect::NoSchedule)
        .all(|t| tolerations.iter().any(|tol| tol.tolerates(t)))
}

/// Count of untolerated `PreferNoSchedule` taints (used as a scoring penalty).
pub fn untolerated_soft_taints(taints: &[Taint], tolerations: &[Toleration]) -> usize {
    taints
        .iter()
        .filter(|t| t.effect == TaintEffect::PreferNoSchedule)
        .filter(|t| !tolerations.iter().any(|tol| tol.tolerates(t)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn requirement_operators() {
        let l = labels(&[("zone", "ucsd"), ("tier", "worker")]);
        assert!(NodeSelectorRequirement::key_in("zone", vec!["ucsd".into()]).matches(&l));
        assert!(!NodeSelectorRequirement::key_in("zone", vec!["fiu".into()]).matches(&l));
        assert!(!NodeSelectorRequirement::key_in("missing", vec!["x".into()]).matches(&l));
        let not_in = NodeSelectorRequirement {
            key: "zone".into(),
            op: NodeSelectorOp::NotIn,
            values: vec!["fiu".into()],
        };
        assert!(not_in.matches(&l));
        let not_in_missing = NodeSelectorRequirement {
            key: "missing".into(),
            op: NodeSelectorOp::NotIn,
            values: vec!["x".into()],
        };
        assert!(
            not_in_missing.matches(&l),
            "NotIn matches when the key is absent"
        );
        let exists = NodeSelectorRequirement {
            key: "tier".into(),
            op: NodeSelectorOp::Exists,
            values: vec![],
        };
        assert!(exists.matches(&l));
        let not_exists = NodeSelectorRequirement {
            key: "gpu".into(),
            op: NodeSelectorOp::DoesNotExist,
            values: vec![],
        };
        assert!(not_exists.matches(&l));
    }

    #[test]
    fn term_is_conjunction() {
        let l = labels(&[("zone", "ucsd"), ("tier", "worker")]);
        let term = NodeSelectorTerm {
            requirements: vec![
                NodeSelectorRequirement::key_in("zone", vec!["ucsd".into()]),
                NodeSelectorRequirement::key_in("tier", vec!["worker".into()]),
            ],
        };
        assert!(term.matches(&l));
        let term_fail = NodeSelectorTerm {
            requirements: vec![
                NodeSelectorRequirement::key_in("zone", vec!["ucsd".into()]),
                NodeSelectorRequirement::key_in("tier", vec!["driver".into()]),
            ],
        };
        assert!(!term_fail.matches(&l));
        assert!(
            NodeSelectorTerm::default().matches(&l),
            "empty term matches all"
        );
    }

    #[test]
    fn hostname_pinning() {
        let aff = NodeAffinity::require_hostname("node-3");
        assert!(aff.required_matches(&labels(&[("kubernetes.io/hostname", "node-3")])));
        assert!(!aff.required_matches(&labels(&[("kubernetes.io/hostname", "node-4")])));
        assert!(!aff.required_matches(&labels(&[])));
        assert!(!aff.is_empty());
        assert!(NodeAffinity::none().is_empty());
    }

    #[test]
    fn required_terms_are_disjunction() {
        let aff = NodeAffinity {
            required_terms: vec![
                NodeSelectorTerm::hostname("a"),
                NodeSelectorTerm::hostname("b"),
            ],
            preferred_terms: vec![],
        };
        assert!(aff.required_matches(&labels(&[("kubernetes.io/hostname", "a")])));
        assert!(aff.required_matches(&labels(&[("kubernetes.io/hostname", "b")])));
        assert!(!aff.required_matches(&labels(&[("kubernetes.io/hostname", "c")])));
        // No required terms at all -> everything matches.
        assert!(NodeAffinity::none().required_matches(&labels(&[])));
    }

    #[test]
    fn preferred_terms_accumulate_weight() {
        let aff = NodeAffinity {
            required_terms: vec![],
            preferred_terms: vec![
                PreferredSchedulingTerm {
                    weight: 40,
                    term: NodeSelectorTerm {
                        requirements: vec![NodeSelectorRequirement::key_in(
                            "zone",
                            vec!["ucsd".into()],
                        )],
                    },
                },
                PreferredSchedulingTerm {
                    weight: 10,
                    term: NodeSelectorTerm {
                        requirements: vec![NodeSelectorRequirement::key_in(
                            "ssd",
                            vec!["true".into()],
                        )],
                    },
                },
                PreferredSchedulingTerm {
                    weight: 500, // over the K8s max; clamped to 100
                    term: NodeSelectorTerm::default(),
                },
            ],
        };
        let l = labels(&[("zone", "ucsd"), ("ssd", "true")]);
        assert_eq!(aff.preferred_score(&l), 40 + 10 + 100);
        assert_eq!(aff.preferred_score(&labels(&[("zone", "fiu")])), 100);
    }

    #[test]
    fn taints_and_tolerations() {
        let taints = vec![
            Taint {
                key: "dedicated".into(),
                value: "gpu".into(),
                effect: TaintEffect::NoSchedule,
            },
            Taint {
                key: "flaky".into(),
                value: "true".into(),
                effect: TaintEffect::PreferNoSchedule,
            },
        ];
        assert!(!tolerates_all_no_schedule(&taints, &[]));
        assert!(tolerates_all_no_schedule(&taints, &[Toleration::any()]));
        assert!(tolerates_all_no_schedule(
            &taints,
            &[Toleration::for_key("dedicated")]
        ));
        let exact = Toleration {
            key: Some("dedicated".into()),
            value: Some("gpu".into()),
        };
        assert!(tolerates_all_no_schedule(
            &taints,
            std::slice::from_ref(&exact)
        ));
        let wrong_value = Toleration {
            key: Some("dedicated".into()),
            value: Some("fpga".into()),
        };
        assert!(!tolerates_all_no_schedule(&taints, &[wrong_value]));
        // Soft taints: counted only when untolerated.
        assert_eq!(untolerated_soft_taints(&taints, &[]), 1);
        assert_eq!(
            untolerated_soft_taints(&taints, &[Toleration::for_key("flaky")]),
            0
        );
        assert_eq!(untolerated_soft_taints(&taints, &[exact]), 1);
    }

    #[test]
    fn no_taints_always_tolerated() {
        assert!(tolerates_all_no_schedule(&[], &[]));
        assert_eq!(untolerated_soft_taints(&[], &[]), 0);
    }
}
