//! Compute resource quantities.
//!
//! Kubernetes expresses CPU in cores (with the `m` suffix for millicores) and
//! memory in bytes (with binary suffixes such as `Mi`/`Gi`). The default
//! scheduler's scoring functions operate on requested vs. allocatable amounts
//! of these two resources, so that is what we model.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A bundle of requested or allocatable compute resources.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Resources {
    /// CPU in millicores (1000 = one core).
    pub cpu_millis: u64,
    /// Memory in bytes.
    pub memory_bytes: u64,
}

/// Errors from parsing resource quantity strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseResourceError(pub String);

impl fmt::Display for ParseResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid resource quantity: {}", self.0)
    }
}

impl std::error::Error for ParseResourceError {}

impl Resources {
    /// No resources.
    pub const ZERO: Resources = Resources {
        cpu_millis: 0,
        memory_bytes: 0,
    };

    /// Construct from explicit quantities.
    pub const fn new(cpu_millis: u64, memory_bytes: u64) -> Self {
        Resources {
            cpu_millis,
            memory_bytes,
        }
    }

    /// Construct from whole cores and mebibytes.
    pub const fn from_cores_and_mib(cores: u64, mib: u64) -> Self {
        Resources {
            cpu_millis: cores * 1000,
            memory_bytes: mib * 1024 * 1024,
        }
    }

    /// Construct from whole cores and gibibytes.
    pub const fn from_cores_and_gib(cores: u64, gib: u64) -> Self {
        Resources {
            cpu_millis: cores * 1000,
            memory_bytes: gib * 1024 * 1024 * 1024,
        }
    }

    /// CPU expressed in cores.
    pub fn cpu_cores(&self) -> f64 {
        self.cpu_millis as f64 / 1000.0
    }

    /// Memory expressed in mebibytes.
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Memory expressed in gibibytes.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// True when both components of `self` fit inside `capacity`.
    pub fn fits_within(&self, capacity: &Resources) -> bool {
        self.cpu_millis <= capacity.cpu_millis && self.memory_bytes <= capacity.memory_bytes
    }

    /// Saturating subtraction per component.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis.saturating_sub(other.cpu_millis),
            memory_bytes: self.memory_bytes.saturating_sub(other.memory_bytes),
        }
    }

    /// Checked addition per component.
    pub fn checked_add(&self, other: &Resources) -> Option<Resources> {
        Some(Resources {
            cpu_millis: self.cpu_millis.checked_add(other.cpu_millis)?,
            memory_bytes: self.memory_bytes.checked_add(other.memory_bytes)?,
        })
    }

    /// Fraction of `capacity` used by `self`, per component, in `[0, 1]`
    /// (component-wise; 1.0 when the capacity component is zero and the
    /// request is non-zero).
    pub fn utilization_of(&self, capacity: &Resources) -> (f64, f64) {
        let frac = |used: u64, cap: u64| -> f64 {
            if cap == 0 {
                if used == 0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                (used as f64 / cap as f64).clamp(0.0, 1.0)
            }
        };
        (
            frac(self.cpu_millis, capacity.cpu_millis),
            frac(self.memory_bytes, capacity.memory_bytes),
        )
    }

    /// Parse a CPU quantity: `"2"` (cores), `"500m"` (millicores), `"1.5"`.
    pub fn parse_cpu(s: &str) -> Result<u64, ParseResourceError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseResourceError(s.to_string()));
        }
        if let Some(milli) = s.strip_suffix('m') {
            milli
                .parse::<u64>()
                .map_err(|_| ParseResourceError(s.to_string()))
        } else {
            let cores: f64 = s.parse().map_err(|_| ParseResourceError(s.to_string()))?;
            if cores < 0.0 || !cores.is_finite() {
                return Err(ParseResourceError(s.to_string()));
            }
            Ok((cores * 1000.0).round() as u64)
        }
    }

    /// Parse a memory quantity: `"512Mi"`, `"8Gi"`, `"1024Ki"`, `"100M"`, raw bytes.
    pub fn parse_memory(s: &str) -> Result<u64, ParseResourceError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseResourceError(s.to_string()));
        }
        let (digits, multiplier): (&str, f64) = if let Some(d) = s.strip_suffix("Ki") {
            (d, 1024.0)
        } else if let Some(d) = s.strip_suffix("Mi") {
            (d, 1024.0 * 1024.0)
        } else if let Some(d) = s.strip_suffix("Gi") {
            (d, 1024.0 * 1024.0 * 1024.0)
        } else if let Some(d) = s.strip_suffix("Ti") {
            (d, 1024.0f64.powi(4))
        } else if let Some(d) = s.strip_suffix('K') {
            (d, 1e3)
        } else if let Some(d) = s.strip_suffix('M') {
            (d, 1e6)
        } else if let Some(d) = s.strip_suffix('G') {
            (d, 1e9)
        } else {
            (s, 1.0)
        };
        let value: f64 = digits
            .trim()
            .parse()
            .map_err(|_| ParseResourceError(s.to_string()))?;
        if value < 0.0 || !value.is_finite() {
            return Err(ParseResourceError(s.to_string()));
        }
        Ok((value * multiplier).round() as u64)
    }

    /// Parse a `(cpu, memory)` pair, e.g. `("500m", "2Gi")`.
    pub fn parse(cpu: &str, memory: &str) -> Result<Resources, ParseResourceError> {
        Ok(Resources {
            cpu_millis: Self::parse_cpu(cpu)?,
            memory_bytes: Self::parse_memory(memory)?,
        })
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis + rhs.cpu_millis,
            memory_bytes: self.memory_bytes + rhs.memory_bytes,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.cpu_millis += rhs.cpu_millis;
        self.memory_bytes += rhs.memory_bytes;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        self.saturating_sub(&rhs)
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = self.saturating_sub(&rhs);
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cpu={}m, mem={:.0}Mi",
            self.cpu_millis,
            self.memory_mib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let r = Resources::from_cores_and_gib(6, 8);
        assert_eq!(r.cpu_millis, 6000);
        assert_eq!(r.cpu_cores(), 6.0);
        assert_eq!(r.memory_gib(), 8.0);
        assert_eq!(Resources::from_cores_and_mib(1, 512).memory_mib(), 512.0);
        assert_eq!(Resources::ZERO, Resources::default());
    }

    #[test]
    fn fits_within_checks_both_components() {
        let cap = Resources::from_cores_and_gib(6, 8);
        assert!(Resources::from_cores_and_gib(6, 8).fits_within(&cap));
        assert!(Resources::from_cores_and_gib(1, 1).fits_within(&cap));
        assert!(!Resources::from_cores_and_gib(7, 1).fits_within(&cap));
        assert!(!Resources::from_cores_and_gib(1, 9).fits_within(&cap));
        assert!(Resources::ZERO.fits_within(&Resources::ZERO));
    }

    #[test]
    fn arithmetic_saturates() {
        let a = Resources::new(1000, 100);
        let b = Resources::new(400, 150);
        assert_eq!(a + b, Resources::new(1400, 250));
        assert_eq!(a - b, Resources::new(600, 0));
        let mut c = a;
        c += b;
        c -= Resources::new(10_000, 10_000);
        assert_eq!(c, Resources::ZERO);
        assert_eq!(a.checked_add(&b), Some(Resources::new(1400, 250)));
        assert_eq!(
            Resources::new(u64::MAX, 0).checked_add(&Resources::new(1, 0)),
            None
        );
    }

    #[test]
    fn utilization_fractions() {
        let cap = Resources::new(1000, 1000);
        let used = Resources::new(250, 500);
        assert_eq!(used.utilization_of(&cap), (0.25, 0.5));
        assert_eq!(Resources::ZERO.utilization_of(&Resources::ZERO), (0.0, 0.0));
        assert_eq!(
            Resources::new(5, 5).utilization_of(&Resources::ZERO),
            (1.0, 1.0)
        );
        // Over-commit clamps to 1.
        assert_eq!(Resources::new(2000, 0).utilization_of(&cap).0, 1.0);
    }

    #[test]
    fn parse_cpu_quantities() {
        assert_eq!(Resources::parse_cpu("2").unwrap(), 2000);
        assert_eq!(Resources::parse_cpu("500m").unwrap(), 500);
        assert_eq!(Resources::parse_cpu("1.5").unwrap(), 1500);
        assert_eq!(Resources::parse_cpu(" 250m ").unwrap(), 250);
        assert!(Resources::parse_cpu("").is_err());
        assert!(Resources::parse_cpu("abc").is_err());
        assert!(Resources::parse_cpu("-1").is_err());
    }

    #[test]
    fn parse_memory_quantities() {
        assert_eq!(Resources::parse_memory("1024").unwrap(), 1024);
        assert_eq!(Resources::parse_memory("1Ki").unwrap(), 1024);
        assert_eq!(Resources::parse_memory("512Mi").unwrap(), 512 * 1024 * 1024);
        assert_eq!(
            Resources::parse_memory("8Gi").unwrap(),
            8 * 1024 * 1024 * 1024
        );
        assert_eq!(Resources::parse_memory("1Ti").unwrap(), 1024u64.pow(4));
        assert_eq!(Resources::parse_memory("100M").unwrap(), 100_000_000);
        assert_eq!(Resources::parse_memory("2G").unwrap(), 2_000_000_000);
        assert_eq!(Resources::parse_memory("3K").unwrap(), 3_000);
        assert!(Resources::parse_memory("").is_err());
        assert!(Resources::parse_memory("12Q").is_err());
        assert!(Resources::parse_memory("-5Mi").is_err());
    }

    #[test]
    fn parse_pair() {
        let r = Resources::parse("500m", "2Gi").unwrap();
        assert_eq!(r.cpu_millis, 500);
        assert_eq!(r.memory_gib(), 2.0);
        assert!(Resources::parse("x", "2Gi").is_err());
        assert!(Resources::parse("1", "y").is_err());
    }

    #[test]
    fn display_is_compact() {
        let r = Resources::from_cores_and_mib(2, 256);
        assert_eq!(format!("{r}"), "cpu=2000m, mem=256Mi");
        let e = ParseResourceError("zzz".into());
        assert!(format!("{e}").contains("zzz"));
    }
}
