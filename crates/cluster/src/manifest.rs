//! Declarative YAML manifest rendering.
//!
//! The paper's Job Builder *"renders a declarative YAML manifest that is
//! understood by Kubernetes for job launch. Node placement is enforced by
//! injecting nodeAffinity rules into the generated specification."* This
//! module reproduces that rendering step with a small, dependency-free YAML
//! emitter: given a [`PodSpec`] or a [`JobSpec`] plus a target node, it emits
//! the manifest text a real deployment would apply with `kubectl`.

use crate::affinity::{NodeAffinity, NodeSelectorOp};
use crate::job::JobSpec;
use crate::pod::PodSpec;
use std::fmt::Write as _;

/// Append a quantity of CPU millicores in Kubernetes notation.
fn write_cpu(out: &mut String, millis: u64) {
    if millis.is_multiple_of(1000) {
        let _ = write!(out, "{}", millis / 1000);
    } else {
        let _ = write!(out, "{millis}m");
    }
}

/// Append a memory quantity in Kubernetes notation (Mi granularity).
fn write_memory(out: &mut String, bytes: u64) {
    let _ = write!(out, "{}Mi", bytes / (1024 * 1024));
}

/// Append a YAML scalar, quoting and escaping when it is not a plain token.
fn write_yaml_escaped(out: &mut String, s: &str) {
    if s.chars()
        .all(|c| c.is_ascii_alphanumeric() || "-_./".contains(c))
        && !s.is_empty()
    {
        out.push_str(s);
    } else {
        out.push('"');
        for c in s.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Render a quantity of CPU millicores in Kubernetes notation.
fn cpu_str(millis: u64) -> String {
    let mut out = String::new();
    write_cpu(&mut out, millis);
    out
}

/// Render a memory quantity in Kubernetes notation (Mi granularity).
fn memory_str(bytes: u64) -> String {
    let mut out = String::new();
    write_memory(&mut out, bytes);
    out
}

fn yaml_escape(s: &str) -> String {
    let mut out = String::new();
    write_yaml_escaped(&mut out, s);
    out
}

/// Append the nodeAffinity block for a single required-hostname pin —
/// byte-identical to `render_affinity` over
/// [`NodeAffinity::require_hostname`], but without materializing the
/// affinity value (the job-manifest hot path stays allocation-free).
fn write_required_hostname_affinity(out: &mut String, node: &str, indent: &str) {
    let _ = writeln!(out, "{indent}affinity:");
    let _ = writeln!(out, "{indent}  nodeAffinity:");
    let _ = writeln!(
        out,
        "{indent}    requiredDuringSchedulingIgnoredDuringExecution:"
    );
    let _ = writeln!(out, "{indent}      nodeSelectorTerms:");
    let _ = writeln!(out, "{indent}      - matchExpressions:");
    let _ = writeln!(out, "{indent}        - key: kubernetes.io/hostname");
    let _ = writeln!(out, "{indent}          operator: In");
    let _ = writeln!(out, "{indent}          values:");
    let _ = write!(out, "{indent}          - ");
    write_yaml_escaped(out, node);
    out.push('\n');
}

fn render_affinity(out: &mut String, affinity: &NodeAffinity, indent: &str) {
    if affinity.is_empty() {
        return;
    }
    let _ = writeln!(out, "{indent}affinity:");
    let _ = writeln!(out, "{indent}  nodeAffinity:");
    if !affinity.required_terms.is_empty() {
        let _ = writeln!(
            out,
            "{indent}    requiredDuringSchedulingIgnoredDuringExecution:"
        );
        let _ = writeln!(out, "{indent}      nodeSelectorTerms:");
        for term in &affinity.required_terms {
            let _ = writeln!(out, "{indent}      - matchExpressions:");
            for req in &term.requirements {
                let op = match req.op {
                    NodeSelectorOp::In => "In",
                    NodeSelectorOp::NotIn => "NotIn",
                    NodeSelectorOp::Exists => "Exists",
                    NodeSelectorOp::DoesNotExist => "DoesNotExist",
                };
                let _ = writeln!(out, "{indent}        - key: {}", yaml_escape(&req.key));
                let _ = writeln!(out, "{indent}          operator: {op}");
                if !req.values.is_empty() {
                    let _ = writeln!(out, "{indent}          values:");
                    for v in &req.values {
                        let _ = writeln!(out, "{indent}          - {}", yaml_escape(v));
                    }
                }
            }
        }
    }
    if !affinity.preferred_terms.is_empty() {
        let _ = writeln!(
            out,
            "{indent}    preferredDuringSchedulingIgnoredDuringExecution:"
        );
        for pref in &affinity.preferred_terms {
            let _ = writeln!(out, "{indent}    - weight: {}", pref.weight);
            let _ = writeln!(out, "{indent}      preference:");
            let _ = writeln!(out, "{indent}        matchExpressions:");
            for req in &pref.term.requirements {
                let op = match req.op {
                    NodeSelectorOp::In => "In",
                    NodeSelectorOp::NotIn => "NotIn",
                    NodeSelectorOp::Exists => "Exists",
                    NodeSelectorOp::DoesNotExist => "DoesNotExist",
                };
                let _ = writeln!(out, "{indent}        - key: {}", yaml_escape(&req.key));
                let _ = writeln!(out, "{indent}          operator: {op}");
                if !req.values.is_empty() {
                    let _ = writeln!(out, "{indent}          values:");
                    for v in &req.values {
                        let _ = writeln!(out, "{indent}          - {}", yaml_escape(v));
                    }
                }
            }
        }
    }
}

/// Render a single pod manifest.
pub fn render_pod_manifest(spec: &PodSpec) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "apiVersion: v1");
    let _ = writeln!(out, "kind: Pod");
    let _ = writeln!(out, "metadata:");
    let _ = writeln!(out, "  name: {}", yaml_escape(&spec.name));
    let _ = writeln!(out, "  namespace: {}", yaml_escape(&spec.namespace));
    if !spec.labels.is_empty() {
        let _ = writeln!(out, "  labels:");
        for (k, v) in &spec.labels {
            let _ = writeln!(out, "    {}: {}", yaml_escape(k), yaml_escape(v));
        }
    }
    let _ = writeln!(out, "spec:");
    if !spec.node_selector.is_empty() {
        let _ = writeln!(out, "  nodeSelector:");
        for (k, v) in &spec.node_selector {
            let _ = writeln!(out, "    {}: {}", yaml_escape(k), yaml_escape(v));
        }
    }
    render_affinity(&mut out, &spec.affinity, "  ");
    if !spec.tolerations.is_empty() {
        let _ = writeln!(out, "  tolerations:");
        for tol in &spec.tolerations {
            match (&tol.key, &tol.value) {
                (None, _) => {
                    let _ = writeln!(out, "  - operator: Exists");
                }
                (Some(k), None) => {
                    let _ = writeln!(out, "  - key: {}", yaml_escape(k));
                    let _ = writeln!(out, "    operator: Exists");
                }
                (Some(k), Some(v)) => {
                    let _ = writeln!(out, "  - key: {}", yaml_escape(k));
                    let _ = writeln!(out, "    operator: Equal");
                    let _ = writeln!(out, "    value: {}", yaml_escape(v));
                }
            }
        }
    }
    let _ = writeln!(out, "  containers:");
    let _ = writeln!(out, "  - name: main");
    let _ = writeln!(out, "    image: spark:3.5");
    let _ = writeln!(out, "    resources:");
    let _ = writeln!(out, "      requests:");
    let _ = writeln!(out, "        cpu: {}", cpu_str(spec.requests.cpu_millis));
    let _ = writeln!(
        out,
        "        memory: {}",
        memory_str(spec.requests.memory_bytes)
    );
    let _ = writeln!(out, "      limits:");
    let _ = writeln!(out, "        cpu: {}", cpu_str(spec.limits.cpu_millis));
    let _ = writeln!(
        out,
        "        memory: {}",
        memory_str(spec.limits.memory_bytes)
    );
    out
}

/// Render a SparkApplication-style manifest for a job, pinning the driver to
/// `target_node` when given (the Job Builder's nodeAffinity injection).
pub fn render_job_manifest(spec: &JobSpec, target_node: Option<&str>) -> String {
    let mut out = String::with_capacity(2048);
    render_job_manifest_into(&mut out, spec, target_node);
    out
}

/// In-place variant of [`render_job_manifest`]: clear `out` and render the
/// manifest into it, reusing the string's allocation. The body goes through
/// non-allocating write helpers only, so steady-state re-rendering of
/// same-shaped jobs touches no heap.
pub fn render_job_manifest_into(out: &mut String, spec: &JobSpec, target_node: Option<&str>) {
    out.clear();
    let _ = writeln!(out, "apiVersion: sparkoperator.k8s.io/v1beta2");
    let _ = writeln!(out, "kind: SparkApplication");
    let _ = writeln!(out, "metadata:");
    let _ = write!(out, "  name: ");
    write_yaml_escaped(out, &spec.name);
    out.push('\n');
    let _ = writeln!(out, "  namespace: default");
    let _ = writeln!(out, "spec:");
    let _ = writeln!(out, "  type: Scala");
    let _ = writeln!(out, "  mode: cluster");
    let _ = write!(out, "  mainApplicationFile: local:///opt/spark/examples/");
    write_yaml_escaped(out, &spec.app_type);
    let _ = writeln!(out, ".jar");
    let _ = writeln!(out, "  arguments:");
    let _ = writeln!(out, "  - \"{}\"", spec.input_records);
    let _ = writeln!(out, "  - \"{}\"", spec.shuffle_partitions);
    let _ = writeln!(out, "  driver:");
    let _ = writeln!(
        out,
        "    cores: {}",
        (spec.driver_requests.cpu_millis / 1000).max(1)
    );
    let _ = write!(out, "    memory: ");
    write_memory(out, spec.driver_requests.memory_bytes);
    out.push('\n');
    let _ = writeln!(out, "    labels:");
    let _ = write!(out, "      app: ");
    write_yaml_escaped(out, &spec.app_type);
    out.push('\n');
    let _ = write!(out, "      job: ");
    write_yaml_escaped(out, &spec.name);
    out.push('\n');
    if let Some(node) = target_node {
        write_required_hostname_affinity(out, node, "    ");
    }
    let _ = writeln!(out, "  executor:");
    let _ = writeln!(out, "    instances: {}", spec.executor_count);
    let _ = writeln!(
        out,
        "    cores: {}",
        (spec.executor_requests.cpu_millis / 1000).max(1)
    );
    let _ = write!(out, "    memory: ");
    write_memory(out, spec.executor_requests.memory_bytes);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::Toleration;
    use crate::resources::Resources;

    #[test]
    fn cpu_and_memory_notation() {
        assert_eq!(cpu_str(2000), "2");
        assert_eq!(cpu_str(500), "500m");
        assert_eq!(memory_str(512 * 1024 * 1024), "512Mi");
        assert_eq!(memory_str(2 * 1024 * 1024 * 1024), "2048Mi");
    }

    #[test]
    fn escaping_quotes_odd_strings() {
        assert_eq!(yaml_escape("node-1"), "node-1");
        assert_eq!(
            yaml_escape("kubernetes.io/hostname"),
            "kubernetes.io/hostname"
        );
        assert_eq!(yaml_escape("has space"), "\"has space\"");
        assert_eq!(yaml_escape("quote\"inside"), "\"quote\\\"inside\"");
        assert_eq!(yaml_escape(""), "\"\"");
    }

    #[test]
    fn pod_manifest_contains_affinity_injection() {
        let spec = PodSpec::new("sort-driver", Resources::from_cores_and_gib(1, 2))
            .with_label("app", "sort")
            .pinned_to("node-3")
            .with_toleration(Toleration::for_key("dedicated"));
        let yaml = render_pod_manifest(&spec);
        assert!(yaml.contains("kind: Pod"));
        assert!(yaml.contains("name: sort-driver"));
        assert!(yaml.contains("requiredDuringSchedulingIgnoredDuringExecution"));
        assert!(yaml.contains("key: kubernetes.io/hostname"));
        assert!(yaml.contains("- node-3"));
        assert!(yaml.contains("cpu: 1"));
        assert!(yaml.contains("memory: 2048Mi"));
        assert!(yaml.contains("tolerations:"));
        assert!(yaml.contains("app: sort"));
    }

    #[test]
    fn pod_manifest_without_affinity_has_no_affinity_block() {
        let spec = PodSpec::new("plain", Resources::from_cores_and_gib(1, 1));
        let yaml = render_pod_manifest(&spec);
        assert!(!yaml.contains("affinity:"));
        assert!(!yaml.contains("tolerations:"));
        assert!(!yaml.contains("nodeSelector:"));
    }

    #[test]
    fn pod_manifest_renders_node_selector_and_preferred_affinity() {
        use crate::affinity::{NodeSelectorRequirement, NodeSelectorTerm, PreferredSchedulingTerm};
        let mut spec = PodSpec::new("p", Resources::from_cores_and_gib(1, 1))
            .with_node_selector("zone", "ucsd");
        spec.affinity.preferred_terms.push(PreferredSchedulingTerm {
            weight: 30,
            term: NodeSelectorTerm {
                requirements: vec![NodeSelectorRequirement::key_in("ssd", vec!["true".into()])],
            },
        });
        let yaml = render_pod_manifest(&spec);
        assert!(yaml.contains("nodeSelector:"));
        assert!(yaml.contains("zone: ucsd"));
        assert!(yaml.contains("preferredDuringSchedulingIgnoredDuringExecution"));
        assert!(yaml.contains("weight: 30"));
    }

    #[test]
    fn job_manifest_pins_driver_only_when_target_given() {
        let spec = JobSpec::new("sort-100k", "sort", 100_000)
            .with_executors(3)
            .with_driver_requests(Resources::from_cores_and_gib(1, 2))
            .with_executor_requests(Resources::from_cores_and_gib(1, 1));
        let pinned = render_job_manifest(&spec, Some("node-5"));
        assert!(pinned.contains("kind: SparkApplication"));
        assert!(pinned.contains("instances: 3"));
        assert!(pinned.contains("- node-5"));
        assert!(pinned.contains("requiredDuringSchedulingIgnoredDuringExecution"));
        let unpinned = render_job_manifest(&spec, None);
        assert!(!unpinned.contains("requiredDuringScheduling"));
        assert!(unpinned.contains("- \"100000\""));
    }
}
