//! # cluster — a miniature Kubernetes-style orchestrator
//!
//! The paper deploys its scheduler *outside* the Kubernetes control plane and
//! compares against the default `kube-scheduler`. To make that comparison
//! like-for-like in simulation, this crate reimplements the pieces of
//! Kubernetes the experiment touches:
//!
//! * [`resources`] — CPU (millicores) and memory (bytes) quantities with the
//!   usual request/limit semantics and `500m` / `2Gi` style parsing.
//! * [`pod`] — pod specifications (labels, resource requests, node selectors,
//!   affinity, tolerations) and pod lifecycle phases.
//! * [`node`] — cluster nodes with allocatable capacity, labels, taints and a
//!   live view of allocated resources / running pods.
//! * [`affinity`] — node selector terms, required/preferred node affinity and
//!   taint/toleration matching, mirroring the upstream semantics closely
//!   enough for scheduling decisions.
//! * [`scheduler`] — the default scheduler's two phases: **filtering**
//!   (resource fit, node selector/affinity, taints) and **scoring**
//!   (least-requested, balanced-allocation, preferred-affinity weights), with
//!   randomized tie-breaking among top-scoring nodes exactly because the
//!   default scheduler is blind to network state — that blindness is the
//!   baseline the paper quantifies.
//! * [`state`] — the cluster state: bind/evict pods, track allocations,
//!   record events.
//! * [`feasibility`] — a resource-sorted feasibility index over the node
//!   table so 10k-node worlds find the feasible set without scanning every
//!   node, cached against [`state::ClusterState::generation`].
//! * [`job`] — a Spark-application-shaped job object (driver + executors) and
//!   its lifecycle.
//! * [`manifest`] — declarative YAML rendering of pods/jobs, including the
//!   `nodeAffinity` injection the paper's Job Builder performs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod feasibility;
pub mod job;
pub mod manifest;
pub mod node;
pub mod pod;
pub mod resources;
pub mod scheduler;
pub mod state;

pub use affinity::{
    NodeAffinity, NodeSelectorOp, NodeSelectorRequirement, NodeSelectorTerm, Taint, TaintEffect,
    Toleration,
};
pub use feasibility::FeasibilityIndex;
pub use job::{Job, JobId, JobPhase, JobSpec};
pub use node::{Node, NodeName};
pub use pod::{Pod, PodId, PodPhase, PodSpec};
pub use resources::Resources;
pub use scheduler::{DefaultScheduler, FilterResult, ScheduleOutcome, Scheduler, ScoredNode};
pub use state::{ClusterError, ClusterEvent, ClusterState, NodeId};

/// Alias for [`state::NodeId`] that cannot be confused with `simnet::NodeId`
/// when both id spaces are in scope downstream (the simnet crate exports the
/// matching `SimNodeId` alias).
pub use state::NodeId as ClusterNodeId;
