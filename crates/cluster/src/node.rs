//! Cluster nodes.
//!
//! A node couples the orchestration view (allocatable resources, labels,
//! taints, running pods) with a handle into the network substrate (its
//! [`simnet::NodeId`]) and a simple host-load model: a base CPU load plus the
//! contributions of whatever runs on it, which is what node-exporter style
//! telemetry reports as the 1-minute load average and available memory.

use crate::affinity::Taint;
use crate::pod::PodId;
use crate::resources::Resources;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A node's name (`node-1` ... `node-6` in the paper's cluster).
pub type NodeName = String;

/// A cluster node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Node name (also used as the `kubernetes.io/hostname` label).
    pub name: NodeName,
    /// Handle into the network substrate.
    pub net_id: NodeId,
    /// Total allocatable resources.
    pub allocatable: Resources,
    /// Labels (hostname and site are always present).
    pub labels: BTreeMap<String, String>,
    /// Taints.
    pub taints: Vec<Taint>,
    /// Whether the node accepts new pods.
    pub schedulable: bool,
    /// Resources currently requested by bound pods.
    allocated: Resources,
    /// Pods currently bound to this node.
    bound_pods: BTreeSet<PodId>,
    /// Baseline CPU load (runnable processes) from system daemons.
    pub base_cpu_load: f64,
    /// Baseline memory used by the OS and daemons, in bytes.
    pub base_memory_used: f64,
    /// Extra CPU load injected by background contention pods.
    pub background_cpu_load: f64,
    /// Extra memory pinned by background contention pods, in bytes.
    pub background_memory_used: f64,
}

impl Node {
    /// Create a node with the given capacity, labelled with its hostname and site.
    pub fn new(
        name: impl Into<String>,
        net_id: NodeId,
        allocatable: Resources,
        site: impl Into<String>,
    ) -> Self {
        let name = name.into();
        let mut labels = BTreeMap::new();
        labels.insert("kubernetes.io/hostname".to_string(), name.clone());
        labels.insert("topology.kubernetes.io/zone".to_string(), site.into());
        Node {
            name,
            net_id,
            allocatable,
            labels,
            taints: Vec::new(),
            schedulable: true,
            allocated: Resources::ZERO,
            bound_pods: BTreeSet::new(),
            base_cpu_load: 0.15,
            base_memory_used: 600.0 * 1024.0 * 1024.0,
            background_cpu_load: 0.0,
            background_memory_used: 0.0,
        }
    }

    /// Builder-style: add a label.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Builder-style: add a taint.
    pub fn with_taint(mut self, taint: Taint) -> Self {
        self.taints.push(taint);
        self
    }

    /// Builder-style: set the baseline host load.
    pub fn with_base_load(mut self, cpu_load: f64, memory_used: f64) -> Self {
        self.base_cpu_load = cpu_load;
        self.base_memory_used = memory_used;
        self
    }

    /// Resources requested by currently bound pods.
    pub fn allocated(&self) -> Resources {
        self.allocated
    }

    /// Resources still available for new pods.
    pub fn available(&self) -> Resources {
        self.allocatable.saturating_sub(&self.allocated)
    }

    /// Pods currently bound to this node.
    pub fn bound_pods(&self) -> impl Iterator<Item = PodId> + '_ {
        self.bound_pods.iter().copied()
    }

    /// Number of bound pods.
    pub fn pod_count(&self) -> usize {
        self.bound_pods.len()
    }

    /// Would a pod with `requests` fit right now?
    pub fn fits(&self, requests: &Resources) -> bool {
        self.schedulable && requests.fits_within(&self.available())
    }

    /// Bind a pod, reserving its requested resources. Returns `false` (and
    /// changes nothing) if the pod does not fit or is already bound.
    pub fn bind(&mut self, pod: PodId, requests: Resources) -> bool {
        if !self.fits(&requests) || self.bound_pods.contains(&pod) {
            return false;
        }
        self.allocated += requests;
        self.bound_pods.insert(pod);
        true
    }

    /// Release a pod's resources. Returns `false` if the pod was not bound.
    pub fn release(&mut self, pod: PodId, requests: Resources) -> bool {
        if self.bound_pods.remove(&pod) {
            self.allocated -= requests;
            true
        } else {
            false
        }
    }

    /// Current CPU load average proxy: baseline + background + one runnable
    /// process per allocated core (a simple but monotone model of how busy
    /// the host looks to node-exporter).
    pub fn cpu_load(&self) -> f64 {
        self.base_cpu_load + self.background_cpu_load + self.allocated.cpu_cores()
    }

    /// Currently available memory in bytes, as node-exporter would report
    /// (`MemAvailable`): capacity minus the OS baseline, background pods and
    /// bound pods' requests.
    pub fn memory_available(&self) -> f64 {
        let used = self.base_memory_used
            + self.background_memory_used
            + self.allocated.memory_bytes as f64;
        (self.allocatable.memory_bytes as f64 - used).max(0.0)
    }

    /// Fraction of memory in use, in `[0, 1]`.
    pub fn memory_utilization(&self) -> f64 {
        let cap = self.allocatable.memory_bytes as f64;
        if cap <= 0.0 {
            return 1.0;
        }
        (1.0 - self.memory_available() / cap).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::TaintEffect;

    fn node() -> Node {
        Node::new(
            "node-1",
            NodeId(0),
            Resources::from_cores_and_gib(6, 8),
            "UCSD",
        )
    }

    #[test]
    fn labels_include_hostname_and_zone() {
        let n = node();
        assert_eq!(n.labels.get("kubernetes.io/hostname").unwrap(), "node-1");
        assert_eq!(n.labels.get("topology.kubernetes.io/zone").unwrap(), "UCSD");
        let n2 = node().with_label("disk", "ssd");
        assert_eq!(n2.labels.get("disk").unwrap(), "ssd");
    }

    #[test]
    fn bind_and_release_track_allocation() {
        let mut n = node();
        let req = Resources::from_cores_and_gib(2, 2);
        assert!(n.fits(&req));
        assert!(n.bind(PodId(1), req));
        assert_eq!(n.allocated(), req);
        assert_eq!(n.available(), Resources::from_cores_and_gib(4, 6));
        assert_eq!(n.pod_count(), 1);
        // Double bind of the same pod fails.
        assert!(!n.bind(PodId(1), req));
        assert!(n.bind(PodId(2), req));
        assert!(n.release(PodId(1), req));
        assert_eq!(n.allocated(), req);
        assert!(!n.release(PodId(1), req), "already released");
        assert!(n.release(PodId(2), req));
        assert_eq!(n.allocated(), Resources::ZERO);
    }

    #[test]
    fn overcommit_is_rejected() {
        let mut n = node();
        let big = Resources::from_cores_and_gib(5, 5);
        assert!(n.bind(PodId(1), big));
        assert!(!n.bind(PodId(2), big), "second pod exceeds capacity");
        assert!(!n.fits(&Resources::from_cores_and_gib(2, 1)));
        assert!(n.fits(&Resources::from_cores_and_gib(1, 1)));
    }

    #[test]
    fn unschedulable_node_rejects_pods() {
        let mut n = node();
        n.schedulable = false;
        assert!(!n.fits(&Resources::ZERO));
        assert!(!n.bind(PodId(1), Resources::ZERO));
    }

    #[test]
    fn cpu_load_and_memory_track_activity() {
        let mut n = node().with_base_load(0.2, 1024.0 * 1024.0 * 1024.0);
        let idle_load = n.cpu_load();
        assert!((idle_load - 0.2).abs() < 1e-9);
        let idle_mem = n.memory_available();
        assert!((idle_mem - 7.0 * 1024.0 * 1024.0 * 1024.0).abs() < 1.0);
        n.bind(PodId(1), Resources::from_cores_and_gib(2, 2));
        assert!(n.cpu_load() > idle_load);
        assert!(n.memory_available() < idle_mem);
        n.background_cpu_load = 0.8;
        n.background_memory_used = 512.0 * 1024.0 * 1024.0;
        assert!((n.cpu_load() - (0.2 + 0.8 + 2.0)).abs() < 1e-9);
        assert!(n.memory_utilization() > 0.0 && n.memory_utilization() <= 1.0);
    }

    #[test]
    fn memory_never_negative() {
        let mut n = Node::new(
            "tiny",
            NodeId(1),
            Resources::from_cores_and_mib(1, 256),
            "X",
        );
        n.base_memory_used = 1e12;
        assert_eq!(n.memory_available(), 0.0);
        assert_eq!(n.memory_utilization(), 1.0);
    }

    #[test]
    fn taints_builder() {
        let n = node().with_taint(Taint {
            key: "dedicated".into(),
            value: "infra".into(),
            effect: TaintEffect::NoSchedule,
        });
        assert_eq!(n.taints.len(), 1);
    }
}
