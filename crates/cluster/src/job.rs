//! Spark-application-shaped jobs.
//!
//! The paper submits Spark applications through the Spark Operator: each job
//! launches a **driver** pod (placed by the scheduler under evaluation) and a
//! set of **executor** pods (placed by the default scheduler). This module
//! models that job object and its lifecycle; the actual execution semantics
//! (stages, shuffles, completion time) live in the `sparksim` crate.

use crate::pod::{PodId, PodRole, PodSpec};
use crate::resources::Resources;
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::fmt;
use std::fmt::Write as _;

/// Overwrite a string slot in place, keeping its allocation.
fn set_str(slot: &mut String, value: &str) {
    slot.clear();
    slot.push_str(value);
}

/// Identifier of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Submitted, driver not yet placed.
    Pending,
    /// Driver and executors are running.
    Running,
    /// All work finished successfully.
    Succeeded,
    /// The job failed.
    Failed,
}

/// Desired state of a job: the driver template plus executor sizing.
///
/// The fields mirror the job-configuration features of Table 1 in the paper
/// (application type, input size, executor count, requested memory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name (e.g. `sort-100k-3ex`).
    pub name: String,
    /// Application type string (e.g. `sort`, `pagerank`, `join`).
    pub app_type: String,
    /// Input size in records.
    pub input_records: u64,
    /// Number of executor pods.
    pub executor_count: u32,
    /// Resources requested by the driver pod.
    pub driver_requests: Resources,
    /// Resources requested by each executor pod.
    pub executor_requests: Resources,
    /// Free-form extra configuration (shuffle partitions, etc.).
    pub shuffle_partitions: u32,
}

impl JobSpec {
    /// Create a job spec with sensible Spark-ish defaults.
    pub fn new(name: impl Into<String>, app_type: impl Into<String>, input_records: u64) -> Self {
        JobSpec {
            name: name.into(),
            app_type: app_type.into(),
            input_records,
            executor_count: 2,
            driver_requests: Resources::from_cores_and_gib(1, 1),
            executor_requests: Resources::from_cores_and_gib(1, 1),
            shuffle_partitions: 8,
        }
    }

    /// Builder-style: set executor count.
    pub fn with_executors(mut self, count: u32) -> Self {
        self.executor_count = count;
        self
    }

    /// Builder-style: set driver resources.
    pub fn with_driver_requests(mut self, requests: Resources) -> Self {
        self.driver_requests = requests;
        self
    }

    /// Builder-style: set per-executor resources.
    pub fn with_executor_requests(mut self, requests: Resources) -> Self {
        self.executor_requests = requests;
        self
    }

    /// Builder-style: set the shuffle partition count.
    pub fn with_shuffle_partitions(mut self, partitions: u32) -> Self {
        self.shuffle_partitions = partitions;
        self
    }

    /// The driver pod spec, optionally pinned to a specific node (this is the
    /// injection performed by the paper's Job Builder).
    pub fn driver_pod(&self, pinned_node: Option<&str>) -> PodSpec {
        let mut spec = PodSpec::new(String::new(), self.driver_requests);
        self.driver_pod_into(pinned_node, &mut spec);
        spec
    }

    /// In-place variant of [`JobSpec::driver_pod`]: rebuild `out` as this
    /// job's driver pod, reusing its name, label and affinity allocations.
    pub fn driver_pod_into(&self, pinned_node: Option<&str>, out: &mut PodSpec) {
        out.name.clear();
        let _ = write!(out.name, "{}-driver", self.name);
        set_str(&mut out.namespace, "default");
        out.labels
            .retain(|k, _| k == "app" || k == "spark-role" || k == "job");
        out.set_label("app", &self.app_type);
        out.set_label("spark-role", "driver");
        out.set_label("job", &self.name);
        out.requests = self.driver_requests;
        out.limits = self.driver_requests;
        out.node_selector.clear();
        out.tolerations.clear();
        out.role = PodRole::Driver;
        match pinned_node {
            Some(node) => out.affinity.set_required_hostname(node),
            None => out.affinity.clear(),
        }
    }

    /// The executor pod specs (placed by the default scheduler in the paper).
    pub fn executor_pods(&self) -> Vec<PodSpec> {
        let mut out = Vec::with_capacity(self.executor_count as usize);
        self.executor_pods_into(&mut out);
        out
    }

    /// In-place variant of [`JobSpec::executor_pods`]: rebuild `out` as this
    /// job's executor pod set, reusing the pod specs already in the vector.
    pub fn executor_pods_into(&self, out: &mut Vec<PodSpec>) {
        out.resize_with(self.executor_count as usize, || {
            PodSpec::new(String::new(), Resources::ZERO)
        });
        for (i, pod) in out.iter_mut().enumerate() {
            pod.name.clear();
            let _ = write!(pod.name, "{}-exec-{}", self.name, i + 1);
            set_str(&mut pod.namespace, "default");
            pod.labels
                .retain(|k, _| k == "app" || k == "spark-role" || k == "job");
            pod.set_label("app", &self.app_type);
            pod.set_label("spark-role", "executor");
            pod.set_label("job", &self.name);
            pod.requests = self.executor_requests;
            pod.limits = self.executor_requests;
            pod.node_selector.clear();
            pod.affinity.clear();
            pod.tolerations.clear();
            pod.role = PodRole::Executor;
        }
    }

    /// Total resources the whole application will request.
    pub fn total_requests(&self) -> Resources {
        let mut total = self.driver_requests;
        for _ in 0..self.executor_count {
            total += self.executor_requests;
        }
        total
    }
}

/// A job instance tracked by the control plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Desired state.
    pub spec: JobSpec,
    /// Current phase.
    pub phase: JobPhase,
    /// The node hosting the driver, once placed.
    pub driver_node: Option<String>,
    /// Driver pod id, once created.
    pub driver_pod: Option<PodId>,
    /// Executor pod ids, once created.
    pub executor_pods: Vec<PodId>,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time.
    pub finished_at: Option<SimTime>,
}

impl Job {
    /// Create a pending job.
    pub fn new(id: JobId, spec: JobSpec, now: SimTime) -> Self {
        Job {
            id,
            spec,
            phase: JobPhase::Pending,
            driver_node: None,
            driver_pod: None,
            executor_pods: Vec::new(),
            submitted_at: now,
            finished_at: None,
        }
    }

    /// Job completion time (submission to finish), if finished.
    pub fn completion_time(&self) -> Option<simcore::SimDuration> {
        self.finished_at.map(|f| f - self.submitted_at)
    }

    /// True when the job reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(self.phase, JobPhase::Succeeded | JobPhase::Failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders() {
        let spec = JobSpec::new("sort-1", "sort", 100_000)
            .with_executors(3)
            .with_driver_requests(Resources::from_cores_and_gib(1, 2))
            .with_executor_requests(Resources::from_cores_and_gib(2, 2))
            .with_shuffle_partitions(16);
        assert_eq!(spec.executor_count, 3);
        assert_eq!(spec.shuffle_partitions, 16);
        assert_eq!(
            spec.total_requests(),
            Resources::from_cores_and_gib(1 + 6, 2 + 6)
        );
    }

    #[test]
    fn driver_pod_is_pinned_when_requested() {
        let spec = JobSpec::new("sort-1", "sort", 100_000);
        let unpinned = spec.driver_pod(None);
        assert!(unpinned.affinity.is_empty());
        assert_eq!(unpinned.role, PodRole::Driver);
        assert_eq!(unpinned.labels.get("spark-role").unwrap(), "driver");
        let pinned = spec.driver_pod(Some("node-4"));
        assert!(!pinned.affinity.is_empty());
        let mut labels = std::collections::BTreeMap::new();
        labels.insert("kubernetes.io/hostname".to_string(), "node-4".to_string());
        assert!(pinned.affinity.required_matches(&labels));
    }

    #[test]
    fn executor_pods_are_enumerated() {
        let spec = JobSpec::new("join-2", "join", 50_000).with_executors(4);
        let execs = spec.executor_pods();
        assert_eq!(execs.len(), 4);
        assert_eq!(execs[0].name, "join-2-exec-1");
        assert_eq!(execs[3].name, "join-2-exec-4");
        assert!(execs.iter().all(|e| e.role == PodRole::Executor));
        assert!(execs
            .iter()
            .all(|e| e.labels.get("job").unwrap() == "join-2"));
    }

    #[test]
    fn job_lifecycle() {
        let mut job = Job::new(
            JobId(1),
            JobSpec::new("j", "sort", 1000),
            SimTime::from_secs(10),
        );
        assert_eq!(job.phase, JobPhase::Pending);
        assert!(!job.is_terminal());
        assert_eq!(job.completion_time(), None);
        job.phase = JobPhase::Succeeded;
        job.finished_at = Some(SimTime::from_secs(40));
        assert!(job.is_terminal());
        assert_eq!(job.completion_time().unwrap().as_secs_f64(), 30.0);
        assert_eq!(format!("{}", job.id), "job-1");
    }
}
