//! Cluster state: the API-server-ish view of nodes and pods.

use crate::node::Node;
use crate::pod::{Pod, PodId, PodPhase, PodSpec};
use serde::{Deserialize, Serialize};
use simcore::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Errors returned by cluster operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterError {
    /// The referenced node does not exist.
    NoSuchNode(String),
    /// The referenced pod does not exist.
    NoSuchPod(u64),
    /// The pod cannot be bound (does not fit, node cordoned, already bound...).
    BindFailed(String),
    /// The operation is invalid for the pod's current phase.
    InvalidPhase(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            ClusterError::NoSuchPod(id) => write!(f, "no such pod: pod-{id}"),
            ClusterError::BindFailed(msg) => write!(f, "bind failed: {msg}"),
            ClusterError::InvalidPhase(msg) => write!(f, "invalid phase: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A recorded cluster event (a simplified `corev1.Event`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Subject (pod or node name).
    pub subject: String,
    /// Short reason code (`Scheduled`, `Started`, `Completed`, ...).
    pub reason: String,
    /// Free-form message.
    pub message: String,
}

/// The cluster: nodes, pods and an event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterState {
    nodes: Vec<Node>,
    pods: BTreeMap<u64, Pod>,
    next_pod_id: u64,
    events: Vec<ClusterEvent>,
}

impl ClusterState {
    /// Create an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node to the cluster.
    pub fn add_node(&mut self, node: Node) {
        self.nodes.push(node);
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to all nodes (used to inject background load).
    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    /// Find a node by name.
    pub fn node(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Find a node by name (mutable).
    pub fn node_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.iter_mut().find(|n| n.name == name)
    }

    /// Names of all nodes in order.
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.iter().map(|n| n.name.clone()).collect()
    }

    /// Create a pod in the `Pending` phase and return its id.
    pub fn create_pod(&mut self, spec: PodSpec, now: SimTime) -> PodId {
        let id = PodId(self.next_pod_id);
        self.next_pod_id += 1;
        let name = spec.name.clone();
        self.pods.insert(id.0, Pod::new(id, spec, now));
        self.record(now, name, "Created", "pod created");
        id
    }

    /// Look up a pod.
    pub fn pod(&self, id: PodId) -> Option<&Pod> {
        self.pods.get(&id.0)
    }

    /// All pods (any phase), in id order.
    pub fn pods(&self) -> impl Iterator<Item = &Pod> {
        self.pods.values()
    }

    /// Pods currently bound to `node_name` and not yet terminal.
    pub fn pods_on_node(&self, node_name: &str) -> Vec<&Pod> {
        self.pods
            .values()
            .filter(|p| p.node.as_deref() == Some(node_name) && !p.is_terminal())
            .collect()
    }

    /// Bind a pending pod to a node, reserving resources.
    pub fn bind_pod(&mut self, id: PodId, node_name: &str, now: SimTime) -> Result<(), ClusterError> {
        let pod = self
            .pods
            .get(&id.0)
            .ok_or(ClusterError::NoSuchPod(id.0))?;
        if pod.phase != PodPhase::Pending {
            return Err(ClusterError::InvalidPhase(format!(
                "pod {} is {:?}, expected Pending",
                pod.spec.name, pod.phase
            )));
        }
        let requests = pod.spec.requests;
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.name == node_name)
            .ok_or_else(|| ClusterError::NoSuchNode(node_name.to_string()))?;
        if !node.bind(id, requests) {
            return Err(ClusterError::BindFailed(format!(
                "pod {} does not fit on {}",
                pod.spec.name, node_name
            )));
        }
        let pod = self.pods.get_mut(&id.0).expect("checked above");
        pod.node = Some(node_name.to_string());
        pod.phase = PodPhase::Running;
        pod.started_at = Some(now);
        let msg = format!("bound to {node_name}");
        let name = pod.spec.name.clone();
        self.record(now, name, "Scheduled", msg);
        Ok(())
    }

    /// Mark a running pod as finished, releasing its resources.
    pub fn complete_pod(&mut self, id: PodId, succeeded: bool, now: SimTime) -> Result<(), ClusterError> {
        let pod = self
            .pods
            .get_mut(&id.0)
            .ok_or(ClusterError::NoSuchPod(id.0))?;
        if pod.phase != PodPhase::Running {
            return Err(ClusterError::InvalidPhase(format!(
                "pod {} is {:?}, expected Running",
                pod.spec.name, pod.phase
            )));
        }
        pod.phase = if succeeded { PodPhase::Succeeded } else { PodPhase::Failed };
        pod.finished_at = Some(now);
        let requests = pod.spec.requests;
        let node_name = pod.node.clone().expect("running pod has a node");
        let pod_name = pod.spec.name.clone();
        if let Some(node) = self.nodes.iter_mut().find(|n| n.name == node_name) {
            node.release(id, requests);
        }
        self.record(
            now,
            pod_name,
            if succeeded { "Completed" } else { "Failed" },
            format!("released from {node_name}"),
        );
        Ok(())
    }

    /// Delete a pod in any phase, releasing resources if it was running.
    pub fn delete_pod(&mut self, id: PodId, now: SimTime) -> Result<(), ClusterError> {
        let pod = self.pods.remove(&id.0).ok_or(ClusterError::NoSuchPod(id.0))?;
        if pod.phase == PodPhase::Running {
            if let (Some(node_name), requests) = (pod.node.clone(), pod.spec.requests) {
                if let Some(node) = self.nodes.iter_mut().find(|n| n.name == node_name) {
                    node.release(id, requests);
                }
            }
        }
        self.record(now, pod.spec.name, "Deleted", "pod deleted");
        Ok(())
    }

    /// Record an event.
    pub fn record(
        &mut self,
        time: SimTime,
        subject: impl Into<String>,
        reason: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.events.push(ClusterEvent {
            time,
            subject: subject.into(),
            reason: reason.into(),
            message: message.into(),
        });
    }

    /// The event log.
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Total allocatable resources across all nodes.
    pub fn total_allocatable(&self) -> crate::resources::Resources {
        self.nodes
            .iter()
            .fold(crate::resources::Resources::ZERO, |acc, n| acc + n.allocatable)
    }

    /// Total requested resources across all nodes.
    pub fn total_allocated(&self) -> crate::resources::Resources {
        self.nodes
            .iter()
            .fold(crate::resources::Resources::ZERO, |acc, n| acc + n.allocated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::Resources;
    use simnet::NodeId;

    fn cluster() -> ClusterState {
        let mut c = ClusterState::new();
        for i in 0..3 {
            c.add_node(Node::new(
                format!("node-{}", i + 1),
                NodeId(i),
                Resources::from_cores_and_gib(6, 8),
                "SITE",
            ));
        }
        c
    }

    #[test]
    fn create_bind_complete_lifecycle() {
        let mut c = cluster();
        let t0 = SimTime::from_secs(1);
        let id = c.create_pod(PodSpec::new("driver", Resources::from_cores_and_gib(2, 2)), t0);
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Pending);
        c.bind_pod(id, "node-2", SimTime::from_secs(2)).unwrap();
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Running);
        assert_eq!(c.pod(id).unwrap().node.as_deref(), Some("node-2"));
        assert_eq!(c.node("node-2").unwrap().allocated(), Resources::from_cores_and_gib(2, 2));
        assert_eq!(c.pods_on_node("node-2").len(), 1);
        assert_eq!(c.pods_on_node("node-1").len(), 0);
        c.complete_pod(id, true, SimTime::from_secs(30)).unwrap();
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Succeeded);
        assert_eq!(c.node("node-2").unwrap().allocated(), Resources::ZERO);
        assert_eq!(c.pods_on_node("node-2").len(), 0);
        assert_eq!(c.pod(id).unwrap().run_duration().unwrap().as_secs_f64(), 28.0);
        // Events were recorded in order.
        let reasons: Vec<&str> = c.events().iter().map(|e| e.reason.as_str()).collect();
        assert_eq!(reasons, vec!["Created", "Scheduled", "Completed"]);
    }

    #[test]
    fn bind_errors() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(2, 2)), t);
        assert!(matches!(
            c.bind_pod(id, "nope", t),
            Err(ClusterError::NoSuchNode(_))
        ));
        let huge = c.create_pod(PodSpec::new("huge", Resources::from_cores_and_gib(64, 64)), t);
        assert!(matches!(
            c.bind_pod(huge, "node-1", t),
            Err(ClusterError::BindFailed(_))
        ));
        c.bind_pod(id, "node-1", t).unwrap();
        // Binding twice is an invalid phase.
        assert!(matches!(
            c.bind_pod(id, "node-1", t),
            Err(ClusterError::InvalidPhase(_))
        ));
        assert!(matches!(
            c.bind_pod(PodId(999), "node-1", t),
            Err(ClusterError::NoSuchPod(999))
        ));
    }

    #[test]
    fn complete_errors() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::ZERO), t);
        assert!(matches!(
            c.complete_pod(id, true, t),
            Err(ClusterError::InvalidPhase(_))
        ));
        assert!(matches!(
            c.complete_pod(PodId(42), true, t),
            Err(ClusterError::NoSuchPod(42))
        ));
    }

    #[test]
    fn failed_pod_releases_resources() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(1, 1)), t);
        c.bind_pod(id, "node-1", t).unwrap();
        c.complete_pod(id, false, SimTime::from_secs(5)).unwrap();
        assert_eq!(c.pod(id).unwrap().phase, PodPhase::Failed);
        assert_eq!(c.node("node-1").unwrap().allocated(), Resources::ZERO);
    }

    #[test]
    fn delete_running_pod_releases_resources() {
        let mut c = cluster();
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(1, 1)), t);
        c.bind_pod(id, "node-3", t).unwrap();
        c.delete_pod(id, SimTime::from_secs(1)).unwrap();
        assert!(c.pod(id).is_none());
        assert_eq!(c.node("node-3").unwrap().allocated(), Resources::ZERO);
        assert!(matches!(
            c.delete_pod(id, SimTime::from_secs(2)),
            Err(ClusterError::NoSuchPod(_))
        ));
    }

    #[test]
    fn totals_aggregate_over_nodes() {
        let mut c = cluster();
        assert_eq!(c.total_allocatable(), Resources::from_cores_and_gib(18, 24));
        let t = SimTime::ZERO;
        let id = c.create_pod(PodSpec::new("p", Resources::from_cores_and_gib(2, 2)), t);
        c.bind_pod(id, "node-1", t).unwrap();
        assert_eq!(c.total_allocated(), Resources::from_cores_and_gib(2, 2));
    }

    #[test]
    fn node_lookup_and_names() {
        let c = cluster();
        assert!(c.node("node-2").is_some());
        assert!(c.node("nope").is_none());
        assert_eq!(c.node_names(), vec!["node-1", "node-2", "node-3"]);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", ClusterError::NoSuchNode("x".into())).contains("x"));
        assert!(format!("{}", ClusterError::NoSuchPod(3)).contains("pod-3"));
        assert!(format!("{}", ClusterError::BindFailed("m".into())).contains("m"));
        assert!(format!("{}", ClusterError::InvalidPhase("p".into())).contains("p"));
    }
}
